//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *minimal* API surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`SeedableRng`], and the
//! [`Rng`] convenience methods `gen_range` / `gen_bool`. The generator
//! is a splitmix64 stream — statistically solid for workload synthesis,
//! not cryptographic, and deliberately stable across toolchains so
//! seeded simulations stay reproducible.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Produces the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `lo..hi` (`hi` exclusive; requires `lo < hi`).
    fn sample_below(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_below(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // Multiply-shift rejection-free mapping; bias is
                // negligible for the span sizes the workloads use.
                let r = rng();
                lo + ((r as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_below(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let r = rng();
                let off = ((r as u128 * span as u128) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    #[inline]
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> usize {
        let (lo, hi) = self.into_inner();
        usize::sample_below(rng, lo, hi.checked_add(1).expect("range overflow"))
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    #[inline]
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> u64 {
        let (lo, hi) = self.into_inner();
        u64::sample_below(rng, lo, hi.checked_add(1).expect("range overflow"))
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli sample with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of the stream give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}
