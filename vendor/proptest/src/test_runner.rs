//! Configuration and the deterministic case RNG.

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (splitmix64 seeded from the test
/// name and case index), so failures reproduce on rerun.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut seed: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        seed ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        TestRng { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_and_case_reproduce() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_diverge() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
