//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
