//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Values accepted as a `vec` length specification.
pub trait IntoSizeRange {
    /// `(min, max)` inclusive.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty vec length range");
        (lo, hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Generates vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
