//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small, dependency-free property-testing harness with the
//! subset of the proptest API its suites use:
//!
//! * the [`Strategy`] trait with `prop_map`, implemented for integer
//!   ranges, tuples, string patterns (a tiny regex subset), [`Just`],
//!   unions, and collections;
//! * `any::<bool>()` / `any::<uN>()`;
//! * `collection::vec`, `sample::select`;
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assume!`, and `prop_oneof!` macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Deliberate simplification: failing cases are **not shrunk** — the
//! harness reports the failing case number and the assertion message.
//! Case generation is deterministic per (test name, case index), so a
//! report is reproducible by rerunning the test.

// A shim keeps the upstream API's shapes verbatim, complex types and
// all, so the lint has nothing actionable here.
#![allow(clippy::type_complexity)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};

pub mod prelude {
    //! The customary glob import.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with a
/// message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        if a != b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        if a != b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), a, b
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        if a == b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} at {}:{}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                a
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::Union::arm($strat) ),+ ])
    };
}

/// Declares deterministic random-input tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, flip in any::<bool>()) {
///         prop_assert!(x < 10 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed:\n{}",
                            stringify!($name), case + 1, config.cases, msg
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5, z in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..5, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 10);
        }

        #[test]
        fn vec_respects_length_range(
            v in crate::collection::vec(0u8..4, 1..9),
            w in crate::collection::vec(any::<u8>(), 3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn oneof_and_select_pick_listed_values(
            a in prop_oneof![Just(1), Just(2), Just(3)],
            s in crate::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!((1..=3).contains(&a));
            prop_assert!(s == "x" || s == "y");
        }

        #[test]
        fn string_patterns_generate_matching_ascii(src in "[ -~\n]{0,30}") {
            prop_assert!(src.len() <= 30);
            prop_assert!(src.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_discards_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case 1/8"), "{msg}");
        assert!(msg.contains("x was"), "{msg}");
    }
}
