//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// --- Integer ranges -----------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// --- Tuples -------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --- Unions (prop_oneof!) -----------------------------------------------

/// Uniform choice among boxed generator arms of one value type.
pub struct Union<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Union<T> {
    /// Builds a union from pre-boxed arms (used by `prop_oneof!`).
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy as a union arm.
    pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Fn(&mut TestRng) -> T> {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

// --- String patterns ----------------------------------------------------

/// One atom of the supported pattern subset.
enum PatAtom {
    /// Literal character.
    Lit(char),
    /// Character class: concrete choices expanded from `[...]`.
    Class(Vec<char>),
}

/// A parsed pattern: atoms with repetition counts.
struct Pattern {
    parts: Vec<(PatAtom, u32, u32)>,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses the regex subset used as string strategies: literals,
/// `[...]` classes (with ranges and `\`-escapes), and `{m}` / `{m,n}`
/// repetitions. Anything else is a hard error — these patterns are
/// test-author input, not user input.
fn parse_pattern(src: &str) -> Pattern {
    let mut chars = src.chars().peekable();
    let mut parts: Vec<(PatAtom, u32, u32)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set: Vec<char> = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {src:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = unescape(chars.next().expect("escape"));
                            if let Some(p) = pending.take() {
                                set.push(p);
                            }
                            pending = Some(e);
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let lo = pending.take().unwrap();
                            let hi = match chars.next().expect("range end") {
                                '\\' => unescape(chars.next().expect("escape")),
                                other => other,
                            };
                            assert!(lo <= hi, "bad range in pattern {src:?}");
                            set.extend(lo..=hi);
                        }
                        other => {
                            if let Some(p) = pending.take() {
                                set.push(p);
                            }
                            pending = Some(other);
                        }
                    }
                }
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty class in pattern {src:?}");
                PatAtom::Class(set)
            }
            '\\' => PatAtom::Lit(unescape(chars.next().expect("escape"))),
            other => PatAtom::Lit(other),
        };
        // Optional repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut lo: Option<u32> = None;
            loop {
                match chars.next().expect("unterminated repetition") {
                    '}' => break,
                    ',' => {
                        lo = Some(digits.parse().expect("repetition count"));
                        digits.clear();
                    }
                    d => digits.push(d),
                }
            }
            let last: u32 = if digits.is_empty() {
                u32::MAX
            } else {
                digits.parse().expect("repetition count")
            };
            match lo {
                Some(l) => (l, last),
                None => (last, last),
            }
        } else {
            (1, 1)
        };
        parts.push((atom, lo, hi));
    }
    Pattern { parts }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pat.parts {
            let count = if lo == hi {
                *lo
            } else {
                lo + rng.below((*hi - *lo + 1) as u64) as u32
            };
            for _ in 0..count {
                match atom {
                    PatAtom::Lit(c) => out.push(*c),
                    PatAtom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_with_class_range_and_counts() {
        let mut rng = TestRng::for_case("pat", 0);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn pattern_with_escapes_and_literals() {
        let mut rng = TestRng::for_case("pat", 1);
        let s = "ab\\n[x\\]]{1}".generate(&mut rng);
        assert!(s.starts_with("ab\n"), "{s:?}");
        assert!(s.ends_with('x') || s.ends_with(']'), "{s:?}");
    }

    #[test]
    fn union_draws_every_arm_eventually() {
        let u = Union::new(vec![Union::arm(Just(0)), Union::arm(Just(1))]);
        let mut rng = TestRng::for_case("u", 0);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[u.generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
