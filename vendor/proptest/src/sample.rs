//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly among an owned list of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Uniform choice among `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
