//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the panic-free `parking_lot`
//! locking API (no `Result` from `lock`): a poisoned lock is recovered
//! rather than propagated, matching `parking_lot`'s semantics of not
//! poisoning at all.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking; `None` when the
    /// lock is held elsewhere. Recovers from poisoning.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
