//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, throughput annotation and
//! `Bencher::iter` — over a simple wall-clock measurement loop:
//! a short warm-up, then batched timing until a time budget is spent,
//! reporting the median ns/iteration. `--test` (as passed by
//! `cargo bench -- --test`) runs every benchmark exactly once, which
//! is what CI uses as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings shared by a run.
#[derive(Clone, Debug)]
pub struct Criterion {
    /// Run each closure once, skip measurement (`--test`).
    test_mode: bool,
    /// Per-benchmark time budget.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            test_mode: args.iter().any(|a| a == "--test"),
            budget: Duration::from_millis(300),
        }
    }
}

/// Throughput annotation (recorded for the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterised benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    settings: &'a Criterion,
    /// Median ns/iter of the last `iter` call (None in test mode).
    last_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.settings.test_mode {
            std::hint::black_box(routine());
            self.last_ns = None;
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ~1ms, so Instant overhead is amortised.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measure batches until the budget is spent; keep per-iter medians.
        let mut samples: Vec<f64> = Vec::new();
        let started = Instant::now();
        while started.elapsed() < self.settings.budget || samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = Some(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    settings: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    fn report(&self, id: &str, ns: Option<f64>) {
        match ns {
            None => println!("test {}/{} ... ok (test mode)", self.name, id),
            Some(ns) => {
                let mut line = format!("bench {}/{:<32} {:>12.0} ns/iter", self.name, id, ns);
                if let Some(Throughput::Elements(n)) = self.throughput {
                    let per_sec = n as f64 / (ns / 1e9);
                    line.push_str(&format!("  ({:.2} Melem/s)", per_sec / 1e6));
                }
                if let Some(Throughput::Bytes(n)) = self.throughput {
                    let per_sec = n as f64 / (ns / 1e9);
                    line.push_str(&format!("  ({:.2} MiB/s)", per_sec / (1024.0 * 1024.0)));
                }
                println!("{line}");
            }
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_id();
        let mut b = Bencher {
            settings: self.settings,
            last_ns: None,
        };
        f(&mut b);
        self.report(&id, b.last_ns);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            settings: self.settings,
            last_ns: None,
        };
        f(&mut b, input);
        self.report(&id, b.last_ns);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            settings: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = BenchmarkGroup {
            settings: self,
            name: "bench".to_string(),
            throughput: None,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching criterion's `black_box` (benches here use
/// `std::hint::black_box` directly, but the symbol is part of the API).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let settings = Criterion {
            test_mode: true,
            budget: Duration::from_millis(1),
        };
        let mut count = 0;
        let mut b = Bencher {
            settings: &settings,
            last_ns: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.last_ns.is_none());
    }

    #[test]
    fn measurement_produces_a_sample() {
        let settings = Criterion {
            test_mode: false,
            budget: Duration::from_millis(5),
        };
        let mut b = Bencher {
            settings: &settings,
            last_ns: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.last_ns.unwrap() > 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
