//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::thread::scope` API the parallel engine
//! uses, implemented over `std::thread::scope` (stable since 1.63).
//! Semantic differences from real crossbeam are confined to panic
//! propagation: a panicking worker that was *not* joined aborts the
//! scope with a panic instead of surfacing through the outer `Result`.
//! The workspace joins every handle, so the difference is unobservable.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure and to every
    /// spawned worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the
        /// scope itself, so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed data can be shared with
    /// spawned threads; all workers are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_share_borrowed_data() {
        let data = [1usize, 2, 3, 4];
        let total: usize = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<usize>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_an_err() {
        crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
