//! E7 — Theorem 1: completeness of the essential states.
//!
//! For every protocol and `n = 1..=6` caches, enumerate the explicit
//! reachable set (with full data augmentation) and check that every
//! concrete state is covered by some symbolic essential state. The
//! paper proves this (Theorem 1); this harness *measures* it on both
//! implementations simultaneously, so a bug in either engine shows up
//! as an uncovered state.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_theorem1 [max_n]`

use ccv_bench::Table;
use ccv_core::{run_expansion, Options};
use ccv_enum::crosscheck;
use ccv_model::protocols::all_correct;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    println!("== E7: Theorem 1 cross-validation (symbolic covers explicit) ==\n");
    let mut table = Table::new(vec![
        "protocol",
        "essential",
        "n",
        "concrete states",
        "covered",
        "complete",
    ]);

    let mut all_ok = true;
    for spec in all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let essential = exp.essential_states();
        for n in 1..=max_n {
            let cc = crosscheck(&spec, n, &essential, 1 << 24);
            all_ok &= cc.complete();
            table.row(vec![
                spec.name().to_string(),
                essential.len().to_string(),
                n.to_string(),
                cc.total_concrete.to_string(),
                cc.covered.to_string(),
                if cc.complete() {
                    "yes".to_string()
                } else {
                    format!("NO: {:?}", cc.uncovered_examples)
                },
            ]);
        }
    }

    println!("{}", table.render());
    if all_ok {
        println!("Theorem 1 holds on every protocol and cache count tested.");
    } else {
        println!("COVERAGE GAP FOUND — one of the engines is wrong.");
        std::process::exit(1);
    }
}
