//! E0 — Figure 1 of the paper: the Illinois transition diagram from
//! the perspective of one cache.
//!
//! Prints the local FSM's edge list (processor edges with their
//! sharing-detection context, snoop edges per bus transaction) and the
//! Figure-1-style DOT rendering, then checks the paper's edges are all
//! present.
//!
//! Run: `cargo run --release -p ccv-bench --bin fig1_local_fsm [protocol]`

use ccv_model::local_graph::{local_dot, local_edges, EdgeKind};
use ccv_model::protocols;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "illinois".into());
    let spec = protocols::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown protocol '{name}'");
        std::process::exit(2);
    });

    println!(
        "== Figure 1: the {} transition diagram (per-cache) ==\n",
        spec.name()
    );
    let edges = local_edges(&spec);
    println!("processor-induced (solid):");
    for e in edges.iter().filter(|e| e.kind == EdgeKind::Processor) {
        println!(
            "  {:>7} --{:<10}--> {}",
            spec.state(e.from).short,
            e.label,
            spec.state(e.to).short
        );
    }
    println!("\nbus-induced (dashed):");
    for e in edges.iter().filter(|e| e.kind == EdgeKind::Snoop) {
        println!(
            "  {:>7} --{:<10}--> {}",
            spec.state(e.from).short,
            e.label,
            spec.state(e.to).short
        );
    }

    if spec.name() == "Illinois" {
        // The paper's Fig. 1 edge set, spot-checked.
        let expect = [
            ("Inv", "R(alone)", "V-Ex"),
            ("Inv", "R(shared)", "Shared"),
            ("Inv", "W", "Dirty"),
            ("V-Ex", "W", "Dirty"),
            ("Shared", "W", "Dirty"),
            ("V-Ex", "BusRd", "Shared"),
            ("Dirty", "BusRd", "Shared"),
            ("Shared", "BusUpgr", "Inv"),
            ("V-Ex", "BusRdX", "Inv"),
            ("Dirty", "BusRdX", "Inv"),
        ];
        let ok = expect.iter().all(|(f, l, t)| {
            edges.iter().any(|e| {
                spec.state(e.from).short == *f && e.label == *l && spec.state(e.to).short == *t
            })
        });
        println!(
            "\npaper comparison: {}",
            if ok {
                "all Figure 1 edges present — EXACT MATCH"
            } else {
                "MISSING EDGES"
            }
        );
        if !ok {
            std::process::exit(1);
        }
    }

    println!("\n-- graphviz --\n{}", local_dot(&spec));
}
