//! E8 — operational sanity: verified specifications execute coherently.
//!
//! Runs every correct protocol and every buggy mutant over the classic
//! sharing workloads on a simulated 4-processor machine (100 000
//! accesses per workload by default). Verified protocols must finish
//! with **zero** latest-value-oracle violations on every workload;
//! each mutant must trip the oracle on at least one workload. The
//! table also reports the protocol-comparison metrics (miss ratio, bus
//! transactions per access, invalidations/updates) that motivated
//! Archibald & Baer's original study.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_simulation [accesses]`

use ccv_bench::Table;
use ccv_model::protocols::{all_buggy, all_correct};
use ccv_sim::{all_workloads, CostModel, Machine, MachineConfig, WorkloadParams};

fn main() {
    let accesses: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let procs = 4;
    let mut params = WorkloadParams::new(procs);
    params.accesses = accesses;
    params.blocks = 64;

    println!("== E8: trace simulation, {procs} processors, {accesses} accesses/workload ==\n");

    let cost = CostModel::default();
    let mut table = Table::new(vec![
        "protocol",
        "workload",
        "miss%",
        "bus/acc",
        "words/acc",
        "inval",
        "upd",
        "c2c",
        "wb",
        "violations",
    ]);

    let mut correct_ok = true;
    for spec in all_correct() {
        for trace in all_workloads(&params) {
            let mut m = Machine::new(spec.clone(), MachineConfig::small(procs));
            let r = m.run(&trace);
            correct_ok &= r.is_coherent();
            table.row(vec![
                spec.name().to_string(),
                trace.name.clone(),
                format!("{:.2}", 100.0 * r.stats.miss_ratio()),
                format!("{:.3}", r.stats.bus_per_access()),
                format!("{:.2}", cost.words_per_access(&r.stats)),
                r.stats.invalidations.to_string(),
                r.stats.updates_received.to_string(),
                r.stats.cache_supplies.to_string(),
                r.stats.writebacks.to_string(),
                r.violations.len().to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    // The mutants: at least one (workload, machine) must trip the
    // oracle. Replacement bugs (lost write-backs) need eviction
    // pressure, so a tiny conflict-prone cache is tried as well.
    println!("mutants (first violating workload):");
    let mut mutants_ok = true;
    // Split-transaction mutants are skipped: the simulator's bus is
    // atomic, so their interleaving bugs are not executable here.
    for (spec, why) in all_buggy().into_iter().filter(|(s, _)| !s.has_transients()) {
        let mut tripped: Option<(String, usize)> = None;
        'search: for (cfg, cfg_name) in [
            (MachineConfig::small(procs), "small"),
            (MachineConfig::tiny(procs), "tiny"),
        ] {
            for trace in all_workloads(&params) {
                let mut m = Machine::new(spec.clone(), cfg.clone());
                let r = m.run(&trace);
                if !r.is_coherent() {
                    tripped = Some((
                        format!("{} ({cfg_name} cache)", trace.name),
                        r.violations.len(),
                    ));
                    break 'search;
                }
            }
        }
        match tripped {
            Some((wl, count)) => println!(
                "  {:<36} tripped on '{}' ({} stale reads)  [{}]",
                spec.name(),
                wl,
                count,
                why
            ),
            None => {
                println!("  {:<36} NOT DETECTED on any workload", spec.name());
                mutants_ok = false;
            }
        }
    }

    println!();
    if correct_ok {
        println!("all verified protocols ran coherently on every workload.");
    } else {
        println!("A VERIFIED PROTOCOL VIOLATED THE ORACLE — model/simulator mismatch.");
        std::process::exit(1);
    }
    if !mutants_ok {
        println!("note: some mutants escaped these particular traces (bugs can need specific interleavings; the model checker still rejects them).");
    }
}
