//! E5 — the methodology applied to every protocol of Archibald &
//! Baer's study (the results the paper defers to tech report \[12\]),
//! plus MSI and MOESI.
//!
//! For each protocol: verdict, number of essential states, state
//! visits, the essential states themselves, and the explicit-state
//! count for 4 caches as a scale reference.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_all_protocols`

use ccv_bench::Table;
use ccv_core::verify;
use ccv_enum::{enumerate, EnumOptions};
use ccv_model::protocols::all_correct;
use std::time::Instant;

fn main() {
    println!("== E5: symbolic verification of the full protocol suite ==\n");
    let mut table = Table::new(vec![
        "protocol",
        "|Q|",
        "F",
        "verdict",
        "essential",
        "visits",
        "explicit n=4",
        "time",
    ]);

    let mut details = String::new();
    for spec in all_correct() {
        let t0 = Instant::now();
        let v = verify(&spec);
        let elapsed = t0.elapsed();
        let explicit = enumerate(&spec, &EnumOptions::new(4).exact());
        table.row(vec![
            spec.name().to_string(),
            spec.num_states().to_string(),
            if spec.uses_sharing_detection() {
                "sharing".into()
            } else {
                "null".into()
            },
            v.verdict.to_string(),
            v.num_essential().to_string(),
            v.visits().to_string(),
            explicit.distinct.to_string(),
            format!("{elapsed:.2?}"),
        ]);
        details.push_str(&format!("\n{}:\n", spec.name()));
        for (i, s) in v.graph.states.iter().enumerate() {
            details.push_str(&format!("  s{i}: {}\n", s.render(&spec)));
        }
    }

    println!("{}", table.render());
    println!("essential states per protocol:{details}");
}
