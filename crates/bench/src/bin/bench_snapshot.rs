//! Performance snapshot of the verification engines.
//!
//! Runs a fixed matrix of enumeration workloads — protocol × machine
//! size × thread count — and writes a machine-readable JSON snapshot
//! with throughput (states/s and visits/s), peak pending-work depth
//! and the `ccv-observe` phase wall time per configuration. Since the
//! interned-arena refactor the snapshot also carries a `symbolic`
//! section: one row per protocol through a warm batch session, plus
//! the Illinois single-mutant sweep measured twice — through the
//! batch API (`sym-sweep/batch`) and through the retained naive
//! reference engine (`sym-sweep/reference`) — so the batch speedup is
//! computable from a single snapshot on a single machine. Schema v3
//! adds a `serve` section measured against a loopback `ccv serve`
//! daemon over real TCP: cached vs uncached request latency, and
//! uncached throughput at 1, 4 and 8 concurrent clients. Schema v4
//! adds `sym-par/t{1,2,4}` rows (the mutant sweep through the
//! fork-join symbolic engine at fixed worker counts) and a `spill`
//! row (Illinois n=12 through the spill-backed visited table). The
//! checked-in `BENCH_PR7.json` at the repository root is the current
//! reference snapshot (`BENCH_PR6.json` is the previous one).
//!
//! Because absolute rates vary wildly across machines, every snapshot
//! also measures a *reference workload* (sequential Illinois `n = 12`,
//! exact dedup) in the same process. `--check` compares rates
//! *normalised by the reference rate*, so a slower CI runner does not
//! trip the gate — only a change in the engine's relative performance
//! does.
//!
//! ```text
//! bench_snapshot [--out FILE] [--reduced] [--heavy] [--threads A,B,..]
//!                [--check BASELINE [--tolerance F]]
//!                [--min-sweep-speedup F]
//! ```
//!
//! * `--out FILE` — write the snapshot JSON (default: stdout only).
//! * `--reduced` — CI matrix: the two heaviest protocols at one size.
//! * `--heavy` — add `n ∈ {12, 14}` rows to the full matrix.
//! * `--threads` — override the thread counts (default `1` and one
//!   per available core).
//! * `--check BASELINE` — compare against a previous snapshot; exit 1
//!   if any config's normalised rate regressed by more than
//!   `--tolerance` (default 0.30). Only configs present in both
//!   snapshots are compared.
//! * `--min-sweep-speedup F` — exit 1 unless the batch mutation sweep
//!   beats the naive reference engine by at least `F`× *in this run*
//!   (same process, same machine — no normalisation needed).

use ccv_core::{reference_expand, run_expansion, Batch, Options};
use ccv_enum::{enumerate, enumerate_parallel, EnumOptions, EnumResult, SpillConfig};
use ccv_model::mutate::single_mutants;
use ccv_model::{protocols, ProtocolSpec};
use ccv_observe::{EventSink, Gauge, Json, Metrics, Phase};
use std::sync::Arc;
use std::time::Instant;

/// Keep timing a workload until it has consumed at least this much
/// wall time, so small state spaces still give stable rates.
const MIN_SAMPLE_MS: u128 = 250;

/// Hard cap on repetitions for tiny workloads.
const MAX_REPS: u32 = 2_000;

#[derive(Clone)]
struct Config {
    protocol: &'static str,
    n: usize,
    threads: usize,
}

impl Config {
    /// Stable identity used to match rows across snapshots.
    fn key(&self) -> String {
        format!("{}/n{}/t{}", self.protocol, self.n, self.threads)
    }
}

struct Row {
    key: String,
    config: Config,
    reps: u32,
    distinct: usize,
    visits: usize,
    wall_ms: f64,
    states_per_sec: f64,
    visits_per_sec: f64,
    peak_pending: u64,
    phase_wall_ms: f64,
}

fn spec_of(name: &str) -> ProtocolSpec {
    match name {
        "illinois" => protocols::illinois(),
        "dragon" => protocols::dragon(),
        "berkeley" => protocols::berkeley(),
        other => panic!("unknown benchmark protocol {other}"),
    }
}

fn run_once(spec: &ProtocolSpec, opts: &EnumOptions, threads: usize) -> EnumResult {
    if threads > 1 {
        enumerate_parallel(spec, opts, threads)
    } else {
        enumerate(spec, opts)
    }
}

/// Times one configuration: repeat until [`MIN_SAMPLE_MS`] of wall
/// time, then one instrumented run for the observe-side numbers.
fn measure(config: &Config) -> Row {
    let opts = EnumOptions::new(config.n).exact();
    measure_with(config.key(), config, opts)
}

/// Illinois n=12 through the spill-backed visited table, at a
/// threshold low enough that segments are actually written. The key
/// rides the same normalised CI gate as the in-RAM rows, so an
/// accidental slowdown of the out-of-core path is caught.
fn measure_spill() -> Row {
    let dir = std::env::temp_dir().join(format!("ccv-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = Config {
        protocol: "illinois",
        n: 12,
        threads: 1,
    };
    let opts = EnumOptions::new(12)
        .exact()
        .spill(SpillConfig::new(&dir, Some(256 * 1024)));
    let row = measure_with("spill".to_string(), &config, opts);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

fn measure_with(key: String, config: &Config, opts: EnumOptions) -> Row {
    let spec = spec_of(config.protocol);

    let mut reps = 0u32;
    let t0 = Instant::now();
    let mut result = None;
    while t0.elapsed().as_millis() < MIN_SAMPLE_MS && reps < MAX_REPS {
        result = Some(run_once(&spec, &opts, config.threads));
        reps += 1;
    }
    let wall = t0.elapsed();
    let result = result.expect("at least one repetition");
    assert!(result.is_clean(), "{key}: benchmark protocol violated");

    let metrics = Arc::new(Metrics::new());
    let instrumented = opts.clone().sink(metrics.clone() as Arc<dyn EventSink>);
    let check = run_once(&spec, &instrumented, config.threads);
    assert_eq!(check.distinct, result.distinct);
    let snap = metrics.snapshot();

    let secs = wall.as_secs_f64();
    let per_rep = secs / reps as f64;
    Row {
        key,
        config: config.clone(),
        reps,
        distinct: result.distinct,
        visits: result.visits,
        wall_ms: per_rep * 1e3,
        states_per_sec: result.distinct as f64 / per_rep,
        visits_per_sec: result.visits as f64 / per_rep,
        peak_pending: snap.gauge(Gauge::PeakPending).unwrap_or(0),
        phase_wall_ms: snap.phase_nanos(Phase::Enumerate) as f64 / 1e6,
    }
}

/// One symbolic-engine measurement: a protocol (or the mutation
/// sweep) run to a verdict, repeatedly, through a warm session.
struct SymRow {
    key: String,
    reps: u32,
    essential: usize,
    visits: usize,
    wall_ms: f64,
    visits_per_sec: f64,
}

/// Times `work` (which returns (essential, visits) per repetition)
/// until [`MIN_SAMPLE_MS`] of wall time has accrued.
fn time_symbolic(key: &str, mut work: impl FnMut() -> (usize, usize)) -> SymRow {
    // One untimed pass warms scratch buffers, index buckets and the
    // arena pool, so the row measures the steady state.
    let (essential, visits) = work();

    let mut reps = 0u32;
    let t0 = Instant::now();
    while t0.elapsed().as_millis() < MIN_SAMPLE_MS && reps < MAX_REPS {
        let (e, v) = work();
        assert_eq!((e, v), (essential, visits), "{key}: unstable result");
        reps += 1;
    }
    let per_rep = t0.elapsed().as_secs_f64() / reps as f64;
    SymRow {
        key: key.to_string(),
        reps,
        essential,
        visits,
        wall_ms: per_rep * 1e3,
        visits_per_sec: visits as f64 / per_rep,
    }
}

/// The symbolic rows: every protocol through one warm batch session,
/// then the Illinois single-mutant sweep through the batch API and
/// through the naive reference engine. The two sweep rows share the
/// workload, so their rate ratio is the batch/refactor speedup.
fn measure_symbolic() -> (Vec<SymRow>, f64) {
    let mut rows = Vec::new();

    let mut batch = Batch::new();
    for spec in protocols::all_correct() {
        let key = format!("sym/{}", spec.name());
        rows.push(time_symbolic(&key, || {
            let s = batch.summarize(&spec);
            (s.essential, s.visits)
        }));
    }

    let opts = Options::default().max_visits(100_000);
    let mutants = single_mutants(&protocols::illinois());
    let mut batch = Batch::with_options(opts.clone());
    let sweep = time_symbolic("sym-sweep/batch", || {
        let mut visits = 0;
        for m in &mutants {
            visits += batch.summarize(&m.spec).visits;
        }
        (mutants.len(), visits)
    });
    let reference = time_symbolic("sym-sweep/reference", || {
        let mut visits = 0;
        for m in &mutants {
            visits += reference_expand(&m.spec, &opts).visits;
        }
        (mutants.len(), visits)
    });
    let speedup = sweep.visits_per_sec / reference.visits_per_sec;
    rows.push(sweep);
    rows.push(reference);

    // The same mutant sweep through the fork-join engine at fixed
    // worker counts. Results are bit-identical across t (the engine's
    // contract), so the unstable-result assertion inside
    // `time_symbolic` doubles as a determinism check.
    for t in [1usize, 2, 4] {
        let key = format!("sym-par/t{t}");
        let par_opts = opts.clone().threads(t);
        rows.push(time_symbolic(&key, || {
            let mut visits = 0;
            for m in &mutants {
                visits += run_expansion(&m.spec, &par_opts).visits;
            }
            (mutants.len(), visits)
        }));
    }
    (rows, speedup)
}

/// One `ccv serve` measurement: requests pushed through a loopback
/// daemon over real TCP, NDJSON framing.
struct ServeRow {
    key: String,
    clients: usize,
    requests: u32,
    wall_ms_per_request: f64,
    requests_per_sec: f64,
}

/// Sends one NDJSON request line to `addr` and reads to the response
/// envelope; returns true if it was served from the verdict cache.
fn serve_round_trip(addr: std::net::SocketAddr, line: &str) -> bool {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to bench server");
    stream.write_all(line.as_bytes()).expect("send request");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf).expect("read event");
        assert!(n > 0, "server closed before responding");
        if let Some(rest) = buf.strip_prefix("{\"ev\":\"response\",\"cached\":") {
            assert!(
                buf.contains("\"truncated\":false") && !buf.contains("\"error\""),
                "bench request failed: {buf}"
            );
            return rest.starts_with("true");
        }
    }
}

/// An enumeration request heavy enough (~tens of ms of engine time)
/// that serving it from the verdict cache is visibly cheaper than
/// recomputing it. Distinct `budget` values (all far above the real
/// visit count, and part of the semantic key) give distinct cache
/// keys, so `bust != 0` defeats the cache without changing the work.
fn serve_request(bust: usize) -> String {
    use ccv_core::{ProtocolSource, Request};
    let mut req = Request::enumerate(ProtocolSource::Spec(protocols::illinois()), 12);
    req.options.exact = true;
    if bust != 0 {
        req.options.budget = Some(10_000_000 + bust);
    }
    req.to_json().render_compact()
}

/// The daemon rows: cached and uncached single-client latency, then
/// uncached throughput at 1, 4 and 8 concurrent clients.
fn measure_serve() -> Vec<ServeRow> {
    use ccv_serve::{Server, ServerConfig};
    let mut config = ServerConfig::loopback();
    config.workers = 8;
    config.queue_depth = 32;
    config.cache_capacity = 1 << 14;
    // The workload is enumerate illinois n=12; keep each request on
    // one engine thread so the concurrency scaling measured here is
    // the daemon's, not the engine's.
    config.max_n = 12;
    config.max_threads = 1;
    let server = Server::bind(config)
        .expect("bind loopback bench server")
        .spawn();
    let addr = server.addr();

    let mut rows = Vec::new();
    let mut bust = 0usize;
    let mut next_bust = || {
        bust += 1;
        bust
    };

    // Warm the runner pool and the cached entry.
    serve_round_trip(addr, &serve_request(0));

    for (key, cached) in [
        ("serve/latency/cached", true),
        ("serve/latency/uncached", false),
    ] {
        let mut reps = 0u32;
        let t0 = Instant::now();
        while t0.elapsed().as_millis() < MIN_SAMPLE_MS && reps < MAX_REPS {
            let line = if cached {
                serve_request(0)
            } else {
                serve_request(next_bust())
            };
            assert_eq!(serve_round_trip(addr, &line), cached, "{key}");
            reps += 1;
        }
        let per_req = t0.elapsed().as_secs_f64() / reps as f64;
        rows.push(ServeRow {
            key: key.to_string(),
            clients: 1,
            requests: reps,
            wall_ms_per_request: per_req * 1e3,
            requests_per_sec: 1.0 / per_req,
        });
    }

    for clients in [1usize, 4, 8] {
        // A fixed uncached batch per client keeps the comparison
        // apples-to-apples across concurrency levels.
        const PER_CLIENT: u32 = 24;
        let batches: Vec<Vec<String>> = (0..clients)
            .map(|_| {
                (0..PER_CLIENT)
                    .map(|_| serve_request(next_bust()))
                    .collect()
            })
            .collect();
        let t0 = Instant::now();
        let joins: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                std::thread::spawn(move || {
                    for line in &batch {
                        assert!(!serve_round_trip(addr, line), "bench request cached");
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().expect("bench client");
        }
        let secs = t0.elapsed().as_secs_f64();
        let total = PER_CLIENT * clients as u32;
        rows.push(ServeRow {
            key: format!("serve/throughput/c{clients}"),
            clients,
            requests: total,
            wall_ms_per_request: secs * 1e3 / total as f64,
            requests_per_sec: total as f64 / secs,
        });
    }
    server.shutdown();
    rows
}

fn matrix(reduced: bool, heavy: bool, threads: &[usize]) -> Vec<Config> {
    let mut configs = Vec::new();
    if reduced {
        for protocol in ["illinois", "dragon"] {
            for &t in threads {
                configs.push(Config {
                    protocol,
                    n: 12,
                    threads: t,
                });
            }
        }
        return configs;
    }
    for protocol in ["illinois", "dragon", "berkeley"] {
        let mut sizes = vec![4usize, 5, 6, 7, 8];
        if heavy {
            sizes.extend([12, 14]);
        }
        for n in sizes {
            for &t in threads {
                configs.push(Config {
                    protocol,
                    n,
                    threads: t,
                });
            }
        }
    }
    configs
}

/// The machine-speed reference: sequential Illinois n=12, exact dedup.
fn reference_rate() -> f64 {
    let spec = protocols::illinois();
    let opts = EnumOptions::new(12).exact();
    // One warm-up, then time a single run (large enough to be stable).
    let _ = enumerate(&spec, &opts);
    let t0 = Instant::now();
    let r = enumerate(&spec, &opts);
    r.visits as f64 / t0.elapsed().as_secs_f64()
}

fn to_json(
    rows: &[Row],
    sym_rows: &[SymRow],
    serve_rows: &[ServeRow],
    sweep_speedup: f64,
    reference: f64,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("ccv-bench-snapshot-v4")),
        (
            "reference".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::str("illinois n=12 exact sequential"),
                ),
                ("visits_per_sec".into(), Json::Num(reference)),
            ]),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("key".into(), Json::str(r.key.as_str())),
                            ("protocol".into(), Json::str(r.config.protocol)),
                            ("n".into(), Json::int(r.config.n as u64)),
                            ("threads".into(), Json::int(r.config.threads as u64)),
                            ("reps".into(), Json::int(r.reps as u64)),
                            ("distinct".into(), Json::int(r.distinct as u64)),
                            ("visits".into(), Json::int(r.visits as u64)),
                            ("wall_ms".into(), Json::Num(r.wall_ms)),
                            ("states_per_sec".into(), Json::Num(r.states_per_sec)),
                            ("visits_per_sec".into(), Json::Num(r.visits_per_sec)),
                            ("peak_pending".into(), Json::int(r.peak_pending)),
                            ("phase_wall_ms".into(), Json::Num(r.phase_wall_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "symbolic".into(),
            Json::Obj(vec![
                (
                    "rows".into(),
                    Json::Arr(
                        sym_rows
                            .iter()
                            .map(|r| {
                                Json::Obj(vec![
                                    ("key".into(), Json::str(r.key.as_str())),
                                    ("reps".into(), Json::int(r.reps as u64)),
                                    ("essential".into(), Json::int(r.essential as u64)),
                                    ("visits".into(), Json::int(r.visits as u64)),
                                    ("wall_ms".into(), Json::Num(r.wall_ms)),
                                    ("visits_per_sec".into(), Json::Num(r.visits_per_sec)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("sweep_speedup".into(), Json::Num(sweep_speedup)),
            ]),
        ),
        (
            "serve".into(),
            Json::Obj(vec![(
                "rows".into(),
                Json::Arr(
                    serve_rows
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("key".into(), Json::str(r.key.as_str())),
                                ("clients".into(), Json::int(r.clients as u64)),
                                ("requests".into(), Json::int(r.requests as u64)),
                                (
                                    "wall_ms_per_request".into(),
                                    Json::Num(r.wall_ms_per_request),
                                ),
                                ("requests_per_sec".into(), Json::Num(r.requests_per_sec)),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ),
    ])
}

/// Extracts `key -> visits_per_sec / reference` from a snapshot JSON.
/// Symbolic rows (schema v2) are included when present, so the CI
/// gate covers the symbolic engine with the same normalisation.
fn normalised_rates(doc: &Json) -> Vec<(String, f64)> {
    let reference = doc
        .get("reference")
        .and_then(|r| r.get("visits_per_sec"))
        .and_then(Json::as_f64)
        .expect("snapshot has a reference rate");
    let mut rows: Vec<&Json> = doc
        .get("rows")
        .and_then(Json::as_arr)
        .expect("snapshot has rows")
        .iter()
        .collect();
    if let Some(sym) = doc.get("symbolic").and_then(|s| s.get("rows")) {
        rows.extend(sym.as_arr().expect("symbolic rows").iter());
    }
    rows.iter()
        .map(|row| {
            let key = row
                .get("key")
                .and_then(Json::as_str)
                .expect("row key")
                .to_string();
            let rate = row
                .get("visits_per_sec")
                .and_then(Json::as_f64)
                .expect("row rate");
            (key, rate / reference)
        })
        // The naive engine is a deliberately unoptimised oracle whose
        // absolute speed is not a target — it is in the snapshot only
        // so `sweep_speedup` is computable. Don't gate on it.
        .filter(|(key, _)| key != "sym-sweep/reference")
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut min_sweep_speedup: Option<f64> = None;
    let mut reduced = false;
    let mut heavy = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--check" => {
                check = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" => {
                tolerance = args[i + 1].parse().expect("--tolerance takes a fraction");
                i += 2;
            }
            "--min-sweep-speedup" => {
                min_sweep_speedup = Some(
                    args[i + 1]
                        .parse()
                        .expect("--min-sweep-speedup takes a factor"),
                );
                i += 2;
            }
            "--threads" => {
                threads = Some(
                    args[i + 1]
                        .split(',')
                        .map(|t| t.parse().expect("--threads takes a comma list"))
                        .collect(),
                );
                i += 2;
            }
            "--reduced" => {
                reduced = true;
                i += 1;
            }
            "--heavy" => {
                heavy = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = threads.unwrap_or_else(|| if cores > 1 { vec![1, cores] } else { vec![1] });

    eprintln!("measuring reference workload...");
    let reference = reference_rate();
    eprintln!("reference: {:.0} visits/s", reference);

    let configs = matrix(reduced, heavy, &threads);
    let mut rows = Vec::with_capacity(configs.len() + 1);
    for config in &configs {
        let row = measure(config);
        eprintln!(
            "{:<22} {:>9} distinct {:>10} visits  {:>9.1} ms  {:>11.0} visits/s  peak {}",
            row.key, row.distinct, row.visits, row.wall_ms, row.visits_per_sec, row.peak_pending
        );
        rows.push(row);
    }

    eprintln!("measuring spill workload (out-of-core visited table)...");
    let spill = measure_spill();
    eprintln!(
        "{:<22} {:>9} distinct {:>10} visits  {:>9.1} ms  {:>11.0} visits/s",
        spill.key, spill.distinct, spill.visits, spill.wall_ms, spill.visits_per_sec
    );
    rows.push(spill);

    eprintln!("measuring symbolic workloads...");
    let (sym_rows, sweep_speedup) = measure_symbolic();
    for r in &sym_rows {
        eprintln!(
            "{:<22} {:>9} essential {:>10} visits  {:>9.3} ms  {:>11.0} visits/s",
            r.key, r.essential, r.visits, r.wall_ms, r.visits_per_sec
        );
    }
    eprintln!("mutation-sweep batch speedup over the naive reference: {sweep_speedup:.2}x");
    if let Some(floor) = min_sweep_speedup {
        if sweep_speedup < floor {
            eprintln!("FAIL: batch sweep speedup {sweep_speedup:.2}x below the {floor:.2}x floor");
            std::process::exit(1);
        }
    }

    eprintln!("measuring serve workloads (loopback daemon)...");
    let serve_rows = measure_serve();
    for r in &serve_rows {
        eprintln!(
            "{:<24} {:>2} clients {:>6} requests  {:>9.3} ms/req  {:>9.1} req/s",
            r.key, r.clients, r.requests, r.wall_ms_per_request, r.requests_per_sec
        );
    }

    let doc = to_json(&rows, &sym_rows, &serve_rows, sweep_speedup, reference);
    let rendered = doc.render();
    match &out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n")).expect("write snapshot");
            eprintln!("snapshot written to {path}");
        }
        None => println!("{rendered}"),
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline parses");
        let base_rates = normalised_rates(&baseline);
        let current: Vec<(String, f64)> = normalised_rates(&doc);
        let mut failed = false;
        let mut compared = 0usize;
        for (key, base) in &base_rates {
            let Some((_, now)) = current.iter().find(|(k, _)| k == key) else {
                continue;
            };
            compared += 1;
            let ratio = now / base;
            let verdict = if ratio < 1.0 - tolerance {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            eprintln!(
                "check {key:<22} baseline {base:>7.3} now {now:>7.3} ratio {ratio:>5.2}  {verdict}"
            );
        }
        assert!(compared > 0, "no overlapping configs with {baseline_path}");
        if failed {
            eprintln!(
                "FAIL: normalised throughput regressed more than {:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: {compared} configs within {:.0}%",
            tolerance * 100.0
        );
    }
}
