//! E9 — ablation: what containment pruning buys.
//!
//! The paper's efficiency comes from two ingredients layered on top of
//! plain enumeration: symmetry (composite states) and **containment
//! pruning** (Definition 9 + monotonicity). This harness runs the
//! symbolic engine with
//!
//! * full containment pruning (the paper's Figure 3), and
//! * equality pruning only (composite states deduplicated exactly —
//!   symmetry without containment),
//!
//! and reports visits, states expanded, and surviving states for every
//! protocol, plus the counting-equivalence explicit engine at `n = 6`
//! as the non-symbolic reference point.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_ablation`

use ccv_bench::Table;
use ccv_core::{run_expansion, Options, Pruning};
use ccv_enum::{enumerate, EnumOptions};
use ccv_model::protocols::all_correct;
use std::time::Instant;

fn main() {
    println!("== E9: ablation — containment pruning vs equality pruning ==\n");
    let mut table = Table::new(vec![
        "protocol",
        "engine",
        "surviving",
        "visits",
        "expanded",
        "time",
    ]);

    for spec in all_correct() {
        let t0 = Instant::now();
        let full = run_expansion(&spec, &Options::default());
        let t_full = t0.elapsed();
        table.row(vec![
            spec.name().to_string(),
            "containment (Fig. 3)".into(),
            full.essential.len().to_string(),
            full.visits.to_string(),
            full.expanded.to_string(),
            format!("{t_full:.2?}"),
        ]);

        let t0 = Instant::now();
        let eq = run_expansion(&spec, &Options::default().pruning(Pruning::Equality));
        let t_eq = t0.elapsed();
        table.row(vec![
            spec.name().to_string(),
            "equality only".into(),
            eq.essential.len().to_string(),
            eq.visits.to_string(),
            eq.expanded.to_string(),
            format!("{t_eq:.2?}"),
        ]);

        let t0 = Instant::now();
        let cnt = enumerate(&spec, &EnumOptions::new(6));
        let t_cnt = t0.elapsed();
        table.row(vec![
            spec.name().to_string(),
            "counting equiv, n=6".into(),
            cnt.distinct.to_string(),
            cnt.visits.to_string(),
            "-".into(),
            format!("{t_cnt:.2?}"),
        ]);

        assert!(full.is_clean() && eq.is_clean() && cnt.is_clean());
        assert!(
            full.visits <= eq.visits,
            "{}: containment pruning must not cost visits",
            spec.name()
        );
    }

    println!("{}", table.render());
    println!("containment pruning dominates equality pruning on every protocol,");
    println!("and both are independent of n, unlike the explicit reference rows.");
}
