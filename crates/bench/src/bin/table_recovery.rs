//! E12 — recovery analysis: how brittle is each protocol?
//!
//! Enumerates every structurally permissible global configuration of
//! each protocol and asks whether the protocol, started there, can
//! ever reach a data-consistency violation. Three buckets:
//!
//! * reachable & safe — the protocol's normal operating region;
//! * unreachable & safe — tolerated slack (the protocol would recover
//!   from these even though it never enters them);
//! * unreachable & **unsafe** — the *invariant gap*: configurations
//!   the §2.1 structural checks accept but the protocol actually
//!   relies on never entering (almost always "clean copies over stale
//!   memory").
//!
//! Run: `cargo run --release -p ccv-bench --bin table_recovery`

use ccv_bench::Table;
use ccv_core::{analyze_recovery, Tolerance};
use ccv_model::protocols;

fn main() {
    println!("== E12: recovery analysis / invariant strength ==\n");
    let mut table = Table::new(vec![
        "protocol",
        "permissible starts",
        "safe (reachable)",
        "safe (slack)",
        "unsafe (gap)",
    ]);
    let mut gap_report = String::new();

    for spec in protocols::all_correct() {
        let report = analyze_recovery(&spec, 200_000);
        let reachable_safe = report
            .cases
            .iter()
            .filter(|c| c.tolerance == Tolerance::Safe && c.reachable)
            .count();
        let slack = report.tolerated_slack().count();
        let gap = report.count(Tolerance::Unsafe);
        assert_eq!(report.count(Tolerance::Unknown), 0);
        table.row(vec![
            spec.name().to_string(),
            report.cases.len().to_string(),
            reachable_safe.to_string(),
            slack.to_string(),
            gap.to_string(),
        ]);
        let examples: Vec<String> = report
            .invariant_gap()
            .take(4)
            .map(|c| format!("{}·m={}", c.start.render(&spec), c.start.mdata))
            .collect();
        if !examples.is_empty() {
            gap_report.push_str(&format!("  {}: {}\n", spec.name(), examples.join(",  ")));
        }
    }

    println!("{}", table.render());
    println!("invariant-gap examples (permissible but not tolerated):");
    print!("{gap_report}");
    println!("\nthe gap is the protocol's true inductive invariant beyond §2.1's checks —");
    println!("typically: no clean-only configurations over stale memory.");
}
