//! E10 — exhaustive single-mutation sweep: mutation testing of the
//! verifier, and a probe of the protocols' design slack.
//!
//! Every "stroke-of-the-pen" edit of every protocol (redirected
//! transition, toggled snoop flag, dropped bus transaction or
//! write-back) is generated and verified. Three outcomes:
//!
//! * `ERRONEOUS` — the verifier catches the edit (the vast majority);
//! * `VERIFIED`  — the edit is *benign*: the mutated protocol is a
//!   different but still coherent design (e.g. removing cache-to-cache
//!   supply of clean blocks, or adding an extra flush);
//! * anything else (panic, divergence) — a verifier bug. None allowed.
//!
//! The surviving (benign) mutants are listed: they are the free design
//! choices within each protocol's structure.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_mutation_sweep [protocol]`

use ccv_bench::Table;
use ccv_core::{verify_with, Options, Verdict};
use ccv_model::mutate::single_mutants;
use ccv_model::protocols;

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    println!("== E10: exhaustive single-mutation sweep ==\n");

    let mut table = Table::new(vec![
        "protocol",
        "mutants",
        "caught",
        "benign",
        "inconclusive",
        "catch rate",
    ]);
    let mut benign_report = String::new();

    let opts = Options::default().max_visits(100_000);

    for spec in protocols::all_correct() {
        if let Some(ref name) = only {
            if !spec.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let mutants = single_mutants(&spec);
        let mut caught = 0usize;
        let mut benign = 0usize;
        let mut inconclusive = 0usize;
        let mut benign_lines: Vec<String> = Vec::new();
        for m in &mutants {
            let v = verify_with(&m.spec, &opts);
            match v.verdict {
                Verdict::Erroneous => caught += 1,
                Verdict::Verified => {
                    benign += 1;
                    benign_lines.push(format!(
                        "    {} ({} essential states)",
                        m.description,
                        v.num_essential()
                    ));
                }
                Verdict::Inconclusive => inconclusive += 1,
            }
        }
        table.row(vec![
            spec.name().to_string(),
            mutants.len().to_string(),
            caught.to_string(),
            benign.to_string(),
            inconclusive.to_string(),
            format!(
                "{:.1}%",
                100.0 * caught as f64 / mutants.len().max(1) as f64
            ),
        ]);
        if !benign_lines.is_empty() {
            benign_report.push_str(&format!(
                "\n  {} — {} benign edits:\n{}\n",
                spec.name(),
                benign_lines.len(),
                benign_lines.join("\n")
            ));
        }
    }

    println!("{}", table.render());
    println!("benign (still-coherent) edits — the protocols' design slack:{benign_report}");
}
