//! E3 — Appendix A.2 of the paper: the intermediate steps of the
//! Illinois symbolic expansion.
//!
//! The paper reports "after 22 state visits, five essential states are
//! reported" and lists the 22 transitions. Our engine replaces the
//! explicit N-step rules by interval arithmetic with category
//! splitting (DESIGN.md §3.2); a split firing counts as a single
//! visit, so the visit count matches the paper's 22 while the raw
//! successor count may be higher. This harness prints our full trace,
//! then checks that **every one of the paper's 22 transitions**
//! appears in our reachable transition relation with the same source,
//! label and target.
//!
//! Run: `cargo run --release -p ccv-bench --bin appendix_a2_trace`

use ccv_bench::APPENDIX_A2;
use ccv_core::{global_graph, run_expansion, Options};
use ccv_model::protocols;

fn main() {
    let spec = protocols::illinois();
    let opts = Options::default().record_trace(true);
    let exp = run_expansion(&spec, &opts);

    println!("== Appendix A.2: expansion steps for the Illinois protocol ==\n");
    for (i, v) in exp.trace.iter().enumerate() {
        println!(
            "{:>3}. {} --{}--> {}   [{:?}]",
            i + 1,
            v.from.render(&spec),
            v.label.render(&spec),
            v.to.render(&spec),
            v.disposition
        );
    }
    println!(
        "\nour engine: {} state visits ({} raw successors), {} states expanded, {} essential states",
        exp.visits,
        exp.successors,
        exp.expanded,
        exp.essential.len()
    );
    println!("paper:      22 state visits (N-step rules fold repetitions), 5 essential states");

    // The reachable transition relation over essential states.
    let graph = global_graph(&spec, &exp);
    let render = |i: usize| graph.states[i].render(&spec);
    let mut missing = 0usize;
    println!("\nchecking the paper's 22 published transitions:");
    for (from, label, to) in APPENDIX_A2 {
        // The paper lists raw generated successors (before containment
        // pruning), so accept a match in either the expansion trace or
        // the essential-state graph.
        let found = graph
            .edges
            .iter()
            .any(|e| render(e.from) == *from && e.label == *label && render(e.to) == *to)
            || exp.trace.iter().any(|v| {
                v.from.render(&spec) == *from
                    && v.label.render(&spec) == *label
                    && v.to.render(&spec) == *to
            });
        println!(
            "  {:<18} --{:<9}--> {:<18} {}",
            from,
            label,
            to,
            if found { "ok" } else { "MISSING" }
        );
        if !found {
            missing += 1;
        }
    }
    if missing == 0 {
        println!("\nall 22 paper transitions reproduced.");
    } else {
        println!("\n{missing} paper transitions missing — INVESTIGATE.");
        std::process::exit(1);
    }
}
