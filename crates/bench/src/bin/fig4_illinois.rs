//! E1 + E2 — Figure 4 of the paper: the Illinois global transition
//! diagram over essential states, and the context-variable table
//! (sharing-detection value, `cdata`, `mdata` per state).
//!
//! Run: `cargo run --release -p ccv-bench --bin fig4_illinois`

use ccv_bench::{Table, FIG4_TABLE};
use ccv_core::{run_expansion, verify, FVal, Options};
use ccv_model::{protocols, CData};

fn main() {
    let spec = protocols::illinois();
    let report = verify(&spec);
    println!("== Figure 4: the global transition diagram for the Illinois protocol ==\n");
    println!(
        "verdict: {}   essential states: {}   state visits: {}\n",
        report.verdict,
        report.num_essential(),
        report.visits()
    );

    // --- Vertices -------------------------------------------------------
    println!("essential states:");
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("  s{i}: {}", s.render(&spec));
    }
    println!();

    // --- Edges (grouped, paper-style labels) -----------------------------
    println!("transitions:");
    for (from, to, labels) in report.graph.grouped_edges() {
        println!("  s{from} --[{}]--> s{to}", labels.join(", "));
    }
    println!();

    // --- The Fig. 4 context-variable table -------------------------------
    let mut table = Table::new(vec!["state", "sharing(F)", "cdata", "mdata"]);
    for s in &report.graph.states {
        let f = match s.f {
            FVal::Null => "-".to_string(),
            other => other.to_string(),
        };
        // Valid classes first (their cdata), then the invalid class's
        // `nodata`, matching the paper's per-class listing.
        let mut cdatas: Vec<&str> = s
            .classes()
            .iter()
            .filter(|(k, _)| !k.state.is_invalid())
            .map(|(k, _)| k.cdata.label())
            .collect();
        if s.classes().iter().any(|(k, _)| k.state.is_invalid()) {
            cdatas.push(CData::NoData.label());
        }
        table.row(vec![
            s.render(&spec),
            f,
            format!("({})", cdatas.join(", ")),
            s.mdata.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- Check against the paper's published rows -------------------------
    let expansion = run_expansion(&spec, &Options::default());
    let rendered: Vec<String> = expansion
        .essential_states()
        .iter()
        .map(|c| c.render(&spec))
        .collect();
    let mut ok = true;
    for (state, f, cdata, mdata) in FIG4_TABLE {
        if !rendered.contains(&state.to_string()) {
            println!("MISSING paper state {state}");
            ok = false;
            continue;
        }
        let s = expansion
            .essential_states()
            .into_iter()
            .find(|c| c.render(&spec) == *state)
            .unwrap()
            .clone();
        let f_ok = s.f.to_string() == *f;
        let m_ok = s.mdata.to_string() == *mdata;
        let c_ok = s
            .classes()
            .iter()
            .filter(|(k, _)| !k.state.is_invalid())
            .all(|(k, _)| cdata.contains(k.cdata.label()));
        if !(f_ok && m_ok && c_ok) {
            println!("MISMATCH at {state}: F/cdata/mdata differ from the paper");
            ok = false;
        }
    }
    println!(
        "paper comparison: {} (5 essential states, F values, cdata and mdata all {})",
        if ok { "EXACT MATCH" } else { "MISMATCH" },
        if ok { "as published" } else { "differ" },
    );

    // --- DOT output -------------------------------------------------------
    println!("\n-- graphviz --\n{}", report.graph.to_dot(&spec));
}
