//! E11 — sensitivity of the update/invalidate trade-off to the line
//! size.
//!
//! The protocol-comparison crossover (E8) depends on how expensive a
//! block transfer is relative to a one-word update broadcast. This
//! harness sweeps the cost model's line size and reports, per
//! workload, the cheapest invalidate protocol vs the cheapest update
//! protocol in words/access — showing where the crossover falls.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_cost_sweep [accesses]`

use ccv_bench::Table;
use ccv_model::protocols::all_correct;
use ccv_sim::{all_workloads, CostModel, Machine, MachineConfig, Stats, WorkloadParams};

fn main() {
    let accesses: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let procs = 4;
    let mut params = WorkloadParams::new(procs);
    params.accesses = accesses;

    println!("== E11: line-size sensitivity of the update/invalidate trade-off ==\n");

    // Run each (protocol, workload) once; cost models are applied to
    // the recorded stats afterwards.
    let mut runs: Vec<(String, String, Stats)> = Vec::new();
    for spec in all_correct() {
        for trace in all_workloads(&params) {
            let mut m = Machine::new(spec.clone(), MachineConfig::small(procs));
            let r = m.run(&trace);
            assert!(r.is_coherent(), "{}", spec.name());
            runs.push((spec.name().to_string(), trace.name.clone(), r.stats));
        }
    }

    let update_family = ["Firefly", "Dragon"];
    let mut table = Table::new(vec![
        "workload",
        "block words",
        "best invalidate",
        "w/acc",
        "best update",
        "w/acc",
        "winner",
    ]);

    let workloads: Vec<String> = {
        let mut w: Vec<String> = Vec::new();
        for (_, t, _) in &runs {
            if !w.contains(t) {
                w.push(t.clone());
            }
        }
        w
    };
    for workload in &workloads {
        for block_words in [4u64, 8, 16, 32, 64] {
            let cost = CostModel {
                block_words,
                ctrl_words: 1,
            };
            let best = |update: bool| -> (String, f64) {
                runs.iter()
                    .filter(|(p, t, _)| {
                        t == workload && update_family.contains(&p.as_str()) == update
                    })
                    .map(|(p, _, s)| (p.clone(), cost.words_per_access(s)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("runs exist")
            };
            let (inv_name, inv_cost) = best(false);
            let (upd_name, upd_cost) = best(true);
            table.row(vec![
                workload.clone(),
                block_words.to_string(),
                inv_name,
                format!("{inv_cost:.3}"),
                upd_name,
                format!("{upd_cost:.3}"),
                if inv_cost <= upd_cost {
                    "invalidate".to_string()
                } else {
                    "update".to_string()
                },
            ]);
        }
    }

    println!("{}", table.render());
    println!("larger lines penalise re-fetch (helping update protocols on read-sharing)");
    println!("and penalise nothing for word-sized updates — the crossovers move accordingly.");
}
