//! E6 — error detection: every seeded protocol bug is rejected.
//!
//! The point of a verifier is the protocols it *rejects*. Each mutant
//! in the library models one plausible implementation bug (a dropped
//! invalidation, a forgotten write-back, a mis-wired SharedLine, …).
//! For each: the symbolic verdict, the kind of violation detected
//! (structural contradiction vs pure data inconsistency), the length
//! of the counterexample, and the counterexample path itself.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_bug_detection`

use ccv_bench::Table;
use ccv_core::verify;
use ccv_model::protocols::all_buggy;

fn main() {
    println!("== E6: seeded-bug detection ==\n");
    let mut table = Table::new(vec![
        "mutant",
        "seeded bug",
        "verdict",
        "findings",
        "path len",
    ]);
    let mut paths = String::new();

    let mut all_rejected = true;
    for (spec, why) in all_buggy() {
        let v = verify(&spec);
        let rejected = v.verdict == ccv_core::Verdict::Erroneous;
        all_rejected &= rejected;
        let first = v.reports.first();
        let path_len = first.map(|r| r.path.matches("-->").count()).unwrap_or(0);
        table.row(vec![
            spec.name().to_string(),
            why.to_string(),
            v.verdict.to_string(),
            first
                .map(|r| r.descriptions.join("; "))
                .unwrap_or_else(|| "-".into()),
            path_len.to_string(),
        ]);
        if let Some(r) = first {
            paths.push_str(&format!("\n{}:\n  {}\n", spec.name(), r.path));
        }
    }

    println!("{}", table.render());
    println!("counterexamples:{paths}");
    if all_rejected {
        println!("all mutants rejected — no false negatives.");
    } else {
        println!("A MUTANT SLIPPED THROUGH — verifier unsound for that case.");
        std::process::exit(1);
    }
}
