//! E4 — the state-space explosion of §3.1 versus the symbolic method.
//!
//! §3.1 of the paper argues that exhaustive enumeration needs at least
//! roughly `n · k · mⁿ` state visits, growing exponentially in the
//! number of caches, while the symbolic expansion "only takes a few
//! steps" independent of `n`. This harness sweeps `n` for the Illinois
//! protocol and reports, per engine: distinct states, state visits and
//! wall time — for (a) exact-duplicate exhaustive search (Fig. 2),
//! (b) counting-equivalence search (Def. 5), (c) the parallel frontier
//! search, against (d) the symbolic expansion, whose single row covers
//! *every* `n` at once.
//!
//! Run: `cargo run --release -p ccv-bench --bin table_explosion [max_n]`

use ccv_bench::Table;
use ccv_core::{run_expansion, Options};
use ccv_enum::{enumerate, enumerate_parallel, naive_visit_estimate, EnumOptions};
use ccv_model::protocols;
use std::time::Instant;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let spec = protocols::illinois();

    println!("== E4: state-space explosion (Illinois, m=4 states, k=3 events) ==\n");
    let mut table = Table::new(vec!["n", "engine", "distinct", "visits", "n*k*m^n", "time"]);

    for n in 1..=max_n {
        let estimate = naive_visit_estimate(&spec, n);

        let t0 = Instant::now();
        let exact = enumerate(&spec, &EnumOptions::new(n).exact());
        let t_exact = t0.elapsed();
        table.row(vec![
            n.to_string(),
            "exhaustive (Fig. 2)".into(),
            exact.distinct.to_string(),
            exact.visits.to_string(),
            estimate.to_string(),
            format!("{t_exact:.2?}"),
        ]);

        let t0 = Instant::now();
        let counting = enumerate(&spec, &EnumOptions::new(n));
        let t_counting = t0.elapsed();
        table.row(vec![
            n.to_string(),
            "counting equiv (Def. 5)".into(),
            counting.distinct.to_string(),
            counting.visits.to_string(),
            "-".into(),
            format!("{t_counting:.2?}"),
        ]);

        let threads = std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(4);
        let t0 = Instant::now();
        let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), threads);
        let t_par = t0.elapsed();
        table.row(vec![
            n.to_string(),
            format!("parallel x{threads} (exact)"),
            par.distinct.to_string(),
            par.visits.to_string(),
            "-".into(),
            format!("{t_par:.2?}"),
        ]);
        assert_eq!(par.distinct, exact.distinct, "parallel must agree");
    }

    // The symbolic row: one run, any number of caches.
    let t0 = Instant::now();
    let sym = run_expansion(&spec, &Options::default());
    let t_sym = t0.elapsed();
    table.row(vec![
        "any".to_string(),
        "symbolic (this paper)".into(),
        sym.essential.len().to_string(),
        sym.visits.to_string(),
        "-".into(),
        format!("{t_sym:.2?}"),
    ]);

    println!("{}", table.render());
    println!(
        "symbolic: {} essential states / {} visits for ANY n — the paper's headline claim.",
        sym.essential.len(),
        sym.visits
    );
}
