//! # ccv-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (and
//! the companion experiments listed in `DESIGN.md` §4). Each
//! experiment is a binary under `src/bin/` that prints the artifact:
//!
//! | binary | experiment | paper artifact |
//! |--------|-----------|----------------|
//! | `fig4_illinois` | E1, E2 | Fig. 4 — Illinois global transition diagram + context-variable table |
//! | `appendix_a2_trace` | E3 | Appendix A.2 — the symbolic expansion trace |
//! | `table_explosion` | E4 | §3.1 — state-space explosion vs the symbolic method |
//! | `table_all_protocols` | E5 | TR \[12\] — essential states for every protocol of Archibald & Baer |
//! | `table_bug_detection` | E6 | Def. 3 — every seeded mutant is rejected with a counterexample |
//! | `table_theorem1` | E7 | Theorem 1 — symbolic completeness vs explicit enumeration |
//! | `table_simulation` | E8 | operational sanity — verified specs run coherently |
//! | `table_ablation` | E9 | ablation — containment pruning vs equality pruning |
//! | `fig1_local_fsm` | E0 | Fig. 1 — the per-cache transition diagram |
//! | `table_mutation_sweep` | E10 | mutation testing of the verifier / design slack |
//! | `table_cost_sweep` | E11 | line-size sensitivity of the E8 comparison |
//! | `table_recovery` | E12 | recovery analysis / invariant strength |
//!
//! Criterion micro-benchmarks live under `benches/`.
//!
//! This library crate holds the small shared helpers: an aligned text
//! table printer and the paper's reference data (the 22 transitions of
//! Appendix A.2, the Fig. 4 table rows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, "{}{}", c, " ".repeat(pad));
                if i + 1 < cells.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(r, &width, &mut out);
        }
        out
    }
}

/// A transition of the paper's Appendix A.2 expansion listing:
/// `(from, label, to)` in the rendering produced by
/// `Composite::render` / `Label::render` for the Illinois protocol.
/// `R^n`/`Rep^n` superscripts are dropped — the interval engine folds
/// N-step rules into single steps (DESIGN.md §3.2).
pub const APPENDIX_A2: &[(&str, &str, &str)] = &[
    ("(Inv+)", "W_inv", "(Dirty, Inv*)"),
    ("(Inv+)", "R_inv", "(V-Ex, Inv*)"),
    ("(Dirty, Inv*)", "Z_dirty", "(Inv+)"),
    ("(Dirty, Inv*)", "R_dirty", "(Dirty, Inv*)"),
    ("(Dirty, Inv*)", "W_dirty", "(Dirty, Inv*)"),
    ("(Dirty, Inv*)", "W_inv", "(Dirty, Inv*)"),
    ("(Dirty, Inv*)", "R_inv", "(Shared+, Inv*)"),
    ("(V-Ex, Inv*)", "Z_v-ex", "(Inv+)"),
    ("(V-Ex, Inv*)", "R_v-ex", "(V-Ex, Inv*)"),
    ("(V-Ex, Inv*)", "W_v-ex", "(Dirty, Inv*)"),
    ("(V-Ex, Inv*)", "W_inv", "(Dirty, Inv*)"),
    ("(V-Ex, Inv*)", "R_inv", "(Shared+, Inv*)"),
    ("(Shared+, Inv*)", "Z_shared", "(Shared, Inv+)"),
    ("(Shared+, Inv*)", "W_shared", "(Dirty, Inv*)"),
    ("(Shared+, Inv*)", "R_shared", "(Shared+, Inv*)"),
    ("(Shared+, Inv*)", "W_inv", "(Dirty, Inv*)"),
    ("(Shared+, Inv*)", "R_inv", "(Shared+, Inv*)"),
    ("(Shared, Inv+)", "Z_shared", "(Inv+)"),
    ("(Shared, Inv+)", "W_shared", "(Dirty, Inv*)"),
    ("(Shared, Inv+)", "R_shared", "(Shared, Inv+)"),
    ("(Shared, Inv+)", "W_inv", "(Dirty, Inv+)"),
    ("(Shared, Inv+)", "R_inv", "(Shared+, Inv*)"),
];

/// The five rows of the Figure 4 table: state, sharing-detection value
/// (in the paper's v1/v2/v3 summary), `cdata` of the valid class, and
/// `mdata`.
pub const FIG4_TABLE: &[(&str, &str, &str, &str)] = &[
    ("(Inv+)", "v1", "(nodata)", "fresh"),
    ("(V-Ex, Inv*)", "v2", "(fresh, nodata)", "fresh"),
    ("(Dirty, Inv*)", "v2", "(fresh, nodata)", "obsolete"),
    ("(Shared+, Inv*)", "v3", "(fresh, nodata)", "fresh"),
    ("(Shared, Inv+)", "v2", "(fresh, nodata)", "fresh"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["illinois", "5"]);
        t.row(vec!["a", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.render().lines().count(), 3);
    }

    #[test]
    fn appendix_has_twenty_two_transitions() {
        assert_eq!(APPENDIX_A2.len(), 22);
    }

    #[test]
    fn fig4_has_five_rows() {
        assert_eq!(FIG4_TABLE.len(), 5);
    }
}
