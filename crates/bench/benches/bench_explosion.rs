//! Criterion bench: explicit-state enumeration cost as a function of
//! the number of caches (E4), against the constant-cost symbolic run.
//!
//! Reproduces the *shape* of §3.1's complexity argument: exhaustive
//! search work grows exponentially in `n`; counting equivalence tames
//! it to polynomial; the symbolic method does not depend on `n` at
//! all.

use ccv_core::{run_expansion, Options};
use ccv_enum::{enumerate, enumerate_parallel, EnumOptions};
use ccv_model::protocols::illinois;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exhaustive(c: &mut Criterion) {
    let spec = illinois();
    let mut group = c.benchmark_group("enumerate_exact");
    for n in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let opts = EnumOptions::new(n).exact();
            b.iter(|| black_box(enumerate(&spec, &opts).distinct))
        });
    }
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let spec = illinois();
    let mut group = c.benchmark_group("enumerate_counting");
    for n in [2usize, 4, 6, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let opts = EnumOptions::new(n);
            b.iter(|| black_box(enumerate(&spec, &opts).distinct))
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let spec = illinois();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let mut group = c.benchmark_group("enumerate_parallel");
    for n in [6usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let opts = EnumOptions::new(n).exact();
            b.iter(|| black_box(enumerate_parallel(&spec, &opts, threads).distinct))
        });
    }
    group.finish();
}

fn bench_symbolic_constant(c: &mut Criterion) {
    let spec = illinois();
    let opts = Options::default();
    c.bench_function("symbolic_any_n", |b| {
        b.iter(|| black_box(run_expansion(&spec, &opts).visits))
    });
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_counting,
    bench_parallel,
    bench_symbolic_constant
);
criterion_main!(benches);
