//! Criterion bench: the two pruning disciplines of the symbolic
//! engine (E9), plus the error-detection latency on a buggy mutant.

use ccv_core::{run_expansion, verify_with, Options, Pruning};
use ccv_model::protocols::{dragon, illinois, illinois_missing_invalidation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning");
    for (name, spec) in [("illinois", illinois()), ("dragon", dragon())] {
        group.bench_function(format!("{name}/containment"), |b| {
            let opts = Options::default();
            b.iter(|| black_box(run_expansion(&spec, &opts).visits))
        });
        group.bench_function(format!("{name}/equality"), |b| {
            let opts = Options::default().pruning(Pruning::Equality);
            b.iter(|| black_box(run_expansion(&spec, &opts).visits))
        });
    }
    group.finish();
}

fn bench_bug_detection_latency(c: &mut Criterion) {
    let spec = illinois_missing_invalidation();
    let mut group = c.benchmark_group("bug_detection");
    group.bench_function("full_exploration", |b| {
        let opts = Options::default();
        b.iter(|| {
            let v = verify_with(&spec, &opts);
            assert_eq!(v.verdict, ccv_core::Verdict::Erroneous);
            black_box(v.reports.len())
        })
    });
    group.bench_function("stop_at_first_error", |b| {
        let opts = Options::default().stop_at_first_error(true);
        b.iter(|| {
            let v = verify_with(&spec, &opts);
            assert_eq!(v.verdict, ccv_core::Verdict::Erroneous);
            black_box(v.reports.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_bug_detection_latency);
criterion_main!(benches);
