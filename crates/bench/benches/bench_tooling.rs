//! Criterion bench: the tooling around the verifier — `.ccv` parsing
//! and printing, concrete witness search, protocol comparison, and
//! the exhaustive mutation sweep.

use ccv_core::compare_protocols;
use ccv_enum::find_violation_witness;
use ccv_model::dsl::{parse_protocol, to_dsl};
use ccv_model::mutate::single_mutants;
use ccv_model::protocols;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dsl(c: &mut Criterion) {
    let spec = protocols::dragon();
    let text = to_dsl(&spec);
    let mut group = c.benchmark_group("dsl");
    group.bench_function("print_dragon", |b| {
        b.iter(|| black_box(to_dsl(&spec).len()))
    });
    group.bench_function("parse_dragon", |b| {
        b.iter(|| black_box(parse_protocol(&text).unwrap().num_states()))
    });
    group.bench_function("roundtrip_all", |b| {
        b.iter(|| {
            for spec in protocols::all_correct() {
                let t = to_dsl(&spec);
                black_box(parse_protocol(&t).unwrap().num_states());
            }
        })
    });
    group.finish();
}

fn bench_witness(c: &mut Criterion) {
    let shallow = protocols::illinois_missing_invalidation();
    let deep = protocols::berkeley_owner_dropped();
    let mut group = c.benchmark_group("witness");
    group.bench_function("shallow_bug", |b| {
        b.iter(|| {
            black_box(
                find_violation_witness(&shallow, 3, 1 << 20)
                    .unwrap()
                    .steps
                    .len(),
            )
        })
    });
    group.bench_function("deep_bug", |b| {
        b.iter(|| {
            black_box(
                find_violation_witness(&deep, 3, 1 << 20)
                    .unwrap()
                    .steps
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let a = protocols::dragon();
    let b2 = protocols::moesi();
    c.bench_function("compare_dragon_moesi", |b| {
        b.iter(|| black_box(compare_protocols(&a, &b2).common_states.len()))
    });
}

fn bench_mutation_generation(c: &mut Criterion) {
    let spec = protocols::moesi();
    c.bench_function("single_mutants_moesi", |b| {
        b.iter(|| black_box(single_mutants(&spec).len()))
    });
}

criterion_group!(
    benches,
    bench_dsl,
    bench_witness,
    bench_compare,
    bench_mutation_generation
);
criterion_main!(benches);
