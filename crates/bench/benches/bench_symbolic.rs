//! Criterion bench: symbolic verification cost per protocol (E1/E5).
//!
//! The paper's headline property is that symbolic verification is a
//! small constant amount of work regardless of the number of caches.
//! This bench measures that constant for every protocol in the suite:
//! a full `verify` run (expansion + permissibility checks + global
//! graph construction).

use ccv_core::{run_expansion, verify, Options};
use ccv_model::protocols::all_correct;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_verify");
    for spec in all_correct() {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                let v = verify(black_box(&spec));
                assert_eq!(v.verdict, ccv_core::Verdict::Verified);
                black_box(v.num_essential())
            })
        });
    }
    group.finish();
}

fn bench_expansion_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_expansion");
    let opts = Options::default();
    for spec in all_correct() {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                let e = run_expansion(black_box(&spec), &opts);
                black_box(e.visits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify, bench_expansion_only);
criterion_main!(benches);
