//! Criterion bench: trace-simulation throughput per protocol (E8).
//!
//! Measures accesses/second of the simulated 4-processor machine for
//! each protocol on the hot-block workload — the protocol-comparison
//! configuration of the E8 table.

use ccv_model::protocols::all_correct;
use ccv_sim::{workload, Machine, MachineConfig, WorkloadParams};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let procs = 4;
    let mut params = WorkloadParams::new(procs);
    params.accesses = 10_000;
    let trace = workload::hot_block(&params);

    let mut group = c.benchmark_group("sim_hot_block");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for spec in all_correct() {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(spec.clone(), MachineConfig::small(procs));
                let r = m.run(black_box(&trace));
                assert!(r.is_coherent());
                black_box(r.stats.bus_total())
            })
        });
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let procs = 4;
    let mut params = WorkloadParams::new(procs);
    params.accesses = 10_000;
    let spec = ccv_model::protocols::illinois();

    let mut group = c.benchmark_group("sim_illinois_workloads");
    for trace in ccv_sim::all_workloads(&params) {
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_function(trace.name.clone(), |b| {
            b.iter(|| {
                let mut m = Machine::new(spec.clone(), MachineConfig::small(procs));
                black_box(m.run(&trace).stats.accesses)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_workloads);
criterion_main!(benches);
