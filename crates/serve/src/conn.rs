//! Per-connection wire handling: protocol sniffing, the NDJSON line
//! protocol, a minimal HTTP/1.1 subset, and disconnect detection.
//!
//! One connection carries one request. The first byte decides the
//! dialect: `{` is an NDJSON request line, anything else is parsed as
//! HTTP. Every engine run gets a watchdog thread probing the client
//! socket; a reset connection (or, for NDJSON, a failed heartbeat
//! write) trips the run's [`CancelToken`] via `request_cancel`, which
//! the governor reports as the `disconnected` stop cause.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ccv_core::api::{ApiError, ErrorCode, Request, RunContext};
use ccv_observe::{CancelToken, FaultKind, NdjsonSink, SinkHandle};

use crate::Service;

/// Applies the `serve.response` fault site just before response bytes
/// go out. `true` means drop the connection without responding — an
/// injected mid-response disconnect, which clients must survive by
/// retrying. A slow fault delays the response instead.
fn response_fault(service: &Service) -> bool {
    let fault = &service.config().fault;
    match fault.fire("serve.response") {
        Some(FaultKind::Disconnect | FaultKind::IoError) => true,
        Some(FaultKind::SlowRead) => {
            if let Some(inj) = fault.injector() {
                std::thread::sleep(Duration::from_millis(inj.slow_millis()));
            }
            false
        }
        _ => false,
    }
}

/// The serialized write side of one connection. Progress lines, ping
/// heartbeats and the final response all pass through one mutex so
/// lines never interleave; a failed write before the response is done
/// trips the cancel token.
struct WireWriter {
    out: Mutex<TcpStream>,
    cancel: CancelToken,
    done: AtomicBool,
}

impl WireWriter {
    fn new(out: TcpStream, cancel: CancelToken) -> WireWriter {
        WireWriter {
            out: Mutex::new(out),
            cancel,
            done: AtomicBool::new(false),
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Flags the client as gone and cancels the run.
    fn disconnected(&self) {
        if !self.is_done() {
            self.cancel.request_cancel();
        }
    }

    /// Writes one NDJSON line (heartbeats, progress events). A write
    /// failure means the client is gone: the run is cancelled. Lines
    /// offered after the response are dropped.
    fn write_line(&self, line: &str) -> bool {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        if self.done.load(Ordering::Acquire) {
            return false;
        }
        let r = out
            .write_all(line.as_bytes())
            .and_then(|_| out.write_all(b"\n"))
            .and_then(|_| out.flush());
        if r.is_err() {
            self.cancel.request_cancel();
        }
        r.is_ok()
    }

    /// Writes the final bytes of the connection and marks it done, in
    /// one critical section — no heartbeat can trail the response.
    fn finish(&self, bytes: &[u8]) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        self.done.store(true, Ordering::Release);
        let _ = out.write_all(bytes).and_then(|_| out.flush());
    }

    /// Abandons the connection without a response (injected
    /// `serve.response` fault): marks it done so the watchdog stops
    /// heartbeating and shuts the socket, so the client sees EOF
    /// mid-stream instead of an answer.
    fn abort(&self) {
        let out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        self.done.store(true, Ordering::Release);
        let _ = out.shutdown(std::net::Shutdown::Both);
    }
}

/// `Write` adapter feeding an [`NdjsonSink`]'s output through the
/// shared [`WireWriter`] a whole line at a time, so progress events
/// and heartbeats never interleave mid-line.
struct SinkWriter {
    wire: Arc<WireWriter>,
    buf: Vec<u8>,
}

impl Write for SinkWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if let Ok(text) = std::str::from_utf8(&line[..line.len() - 1]) {
                self.wire.write_line(text);
            }
        }
        Ok(())
    }
}

/// Probes the client socket while the engine runs. A connection
/// reset cancels the run. `heartbeat` (NDJSON mode) additionally
/// writes `{"ev":"ping"}` every interval — the write doubles as a
/// liveness probe for clients that half-closed their send side (for
/// example `nc` after stdin EOF), whose sockets read as clean EOF
/// here while staying perfectly able to receive.
fn watchdog(mut probe: TcpStream, wire: Arc<WireWriter>, interval: Duration, heartbeat: bool) {
    let _ = probe.set_read_timeout(Some(interval));
    let mut sink = [0u8; 256];
    loop {
        if wire.is_done() {
            return;
        }
        match probe.read(&mut sink) {
            // EOF: for HTTP a vanished client; for NDJSON a legal
            // half-close — the heartbeat decides from here on.
            Ok(0) if !heartbeat => {
                wire.disconnected();
                return;
            }
            Ok(0) => std::thread::sleep(interval),
            // Stray extra input; this protocol is one request per
            // connection, so ignore it.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                wire.disconnected();
                return;
            }
        }
        if wire.is_done() {
            return;
        }
        if heartbeat && !wire.write_line("{\"ev\":\"ping\"}") {
            return;
        }
    }
}

/// Entry point for one accepted connection: sniff the dialect off the
/// first byte and dispatch.
pub(crate) fn handle_connection(service: Arc<Service>, stream: TcpStream) {
    // Blocking I/O with a generous idle timeout: a client that
    // connects and never sends a parseable request gets dropped.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(1) if first[0] == b'{' => handle_ndjson(&service, stream),
        Ok(1) => handle_http(&service, stream),
        _ => {}
    }
}

/// Reads one `\n`-terminated line, bounded at `max` bytes.
fn read_request_line(stream: &TcpStream, max: usize) -> Result<String, ApiError> {
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => return Err(ApiError::internal(format!("socket: {e}"))),
    };
    let mut line = String::new();
    let mut limited = BufReader::new(reader).take(max as u64);
    match limited.read_line(&mut line) {
        Ok(0) => Err(ApiError::bad_request("empty request")),
        Ok(_) if !line.ends_with('\n') && line.len() >= max => Err(ApiError::bad_request(format!(
            "request exceeds {max} bytes"
        ))),
        Ok(_) => Ok(line),
        Err(e) => Err(ApiError::bad_request(format!("reading request: {e}"))),
    }
}

/// One NDJSON request: request line in, event stream + response
/// envelope out.
fn handle_ndjson(service: &Arc<Service>, stream: TcpStream) {
    let cfg = service.config();
    let cancel = CancelToken::new();
    let write_side = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let wire = Arc::new(WireWriter::new(write_side, cancel.clone()));

    let outcome = match read_request_line(&stream, cfg.max_request_bytes) {
        Err(e) => service.process_text_error(e),
        Ok(line) => {
            // The request is fully read: from here the client is
            // expected to stay silent, so hand the read side to the
            // disconnect watchdog.
            let wd_wire = Arc::clone(&wire);
            let interval = cfg.ping_interval;
            std::thread::spawn(move || watchdog(stream, wd_wire, interval, true));
            match Request::parse(line.trim()) {
                Err(e) => service.process_text_error(e),
                Ok(req) => {
                    let sink = if req.stream {
                        SinkHandle::new(Arc::new(NdjsonSink::new(SinkWriter {
                            wire: Arc::clone(&wire),
                            buf: Vec::new(),
                        })))
                    } else {
                        SinkHandle::disabled()
                    };
                    let ctx = RunContext::new(cancel.clone(), sink);
                    service.process(&req, &ctx)
                }
            }
        }
    };
    let envelope = format!(
        "{{\"ev\":\"response\",\"cached\":{},\"body\":{}}}\n",
        outcome.cached, outcome.body
    );
    if response_fault(service) {
        wire.abort(); // dropped mid-response: the client sees EOF, not a reply
        return;
    }
    wire.finish(envelope.as_bytes());
}

/// HTTP status line for an outcome.
fn http_status(code: Option<ErrorCode>) -> (u16, &'static str) {
    match code {
        None => (200, "OK"),
        Some(ErrorCode::BadRequest) => (400, "Bad Request"),
        Some(ErrorCode::BadProtocol) => (422, "Unprocessable Entity"),
        Some(ErrorCode::Unsupported) => (501, "Not Implemented"),
        Some(ErrorCode::Busy) => (429, "Too Many Requests"),
        Some(ErrorCode::Internal) => (500, "Internal Server Error"),
    }
}

/// Renders a full HTTP/1.1 response.
fn http_response(status: (u16, &'static str), extra: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        status.0,
        status.1,
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads the request head (start line + headers) and returns it with
/// whatever body bytes were read past the blank line.
fn read_head(stream: &mut TcpStream, max: usize) -> io::Result<(String, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_blank_line(&buf) {
            let head = String::from_utf8_lossy(&buf[..pos]).into_owned();
            return Ok((head, buf[pos + 4..].to_vec()));
        }
        if buf.len() > max {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One HTTP exchange: `POST /v1/requests`, `GET /v1/metrics`,
/// `GET /v1/healthz`.
fn handle_http(service: &Arc<Service>, mut stream: TcpStream) {
    let cfg = service.config();
    let Ok((head, mut body)) = read_head(&mut stream, cfg.max_request_bytes) else {
        return;
    };
    let mut lines = head.lines();
    let start = lines.next().unwrap_or_default();
    let mut parts = start.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    let response = match (method.as_str(), path.as_str()) {
        ("GET", "/v1/healthz") => http_response((200, "OK"), &[], "{\"ok\":true}"),
        ("GET", "/v1/metrics") => http_response(
            (200, "OK"),
            &[],
            &service.metrics_json().render_compact(),
        ),
        ("POST", "/v1/requests") => {
            if content_length > cfg.max_request_bytes {
                let out = service.process_text_error(ApiError::bad_request(format!(
                    "request exceeds {} bytes",
                    cfg.max_request_bytes
                )));
                http_response(http_status(out.code), &[("x-ccv-cache", "miss")], &out.body)
            } else {
                while body.len() < content_length {
                    let mut chunk = vec![0u8; content_length - body.len()];
                    match stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => body.extend_from_slice(&chunk[..n]),
                        Err(_) => break,
                    }
                }
                let text = String::from_utf8_lossy(&body).into_owned();
                let cancel = CancelToken::new();
                let wire = match stream.try_clone() {
                    Ok(write_side) => {
                        let wire = Arc::new(WireWriter::new(write_side, cancel.clone()));
                        let probe = stream.try_clone();
                        if let Ok(probe) = probe {
                            let wd_wire = Arc::clone(&wire);
                            let interval = cfg.ping_interval;
                            // HTTP clients never half-close: any EOF
                            // or error on the probe is a disconnect.
                            std::thread::spawn(move || watchdog(probe, wd_wire, interval, false));
                        }
                        Some(wire)
                    }
                    Err(_) => None,
                };
                let ctx = RunContext::new(cancel, SinkHandle::disabled());
                let out = service.process_text(&text, &ctx);
                let cache_state = if out.cached { "hit" } else { "miss" };
                // HTTP carries the busy hint as a standard
                // `retry-after` header (whole seconds, rounded up).
                let retry_secs = out
                    .retry_after_ms
                    .map(|ms| ms.div_ceil(1000).max(1).to_string());
                let mut headers: Vec<(&str, &str)> = vec![("x-ccv-cache", cache_state)];
                if let Some(secs) = retry_secs.as_deref() {
                    headers.push(("retry-after", secs));
                }
                let bytes = http_response(http_status(out.code), &headers, &out.body);
                if response_fault(service) {
                    if let Some(wire) = wire {
                        wire.abort();
                    }
                    return;
                }
                if let Some(wire) = wire {
                    wire.finish(&bytes);
                    return;
                }
                bytes
            }
        }
        _ => http_response(
            (404, "Not Found"),
            &[],
            &format!(
                "{{\"error\":{{\"code\":\"bad_request\",\"message\":\"no such endpoint: {} {}\"}}}}",
                method, path
            ),
        ),
    };
    let _ = stream.write_all(&response).and_then(|_| stream.flush());
}
