//! Sharded verdict cache: canonical request fingerprint → rendered
//! response body.
//!
//! The key is the [`Request::semantic_key`] string — action, the
//! semantically relevant options and the protocol's canonical DSL
//! rendering — hashed with the same `FxHasher` the checkpoint format
//! uses for protocol fingerprints. Because the key is derived from the
//! *resolved* spec, a protocol submitted by name and the same protocol
//! submitted as DSL text hit the same entry.
//!
//! Entries store the compact-rendered response body verbatim, so a
//! cache hit replays byte-identical output. Each shard evicts FIFO at
//! capacity; hit/miss/insertion/eviction counters feed the server's
//! `/v1/metrics` endpoint.
//!
//! [`Request::semantic_key`]: ccv_core::api::Request::semantic_key

use std::collections::VecDeque;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ccv_enum::{FxHashMap, FxHasher};

/// Hashes a semantic-key string to the cache's 64-bit key space.
pub fn key_hash(seed: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(seed.as_bytes());
    h.finish()
}

#[derive(Default)]
struct Shard {
    /// hash → (full key, stored body). The full key is kept so a
    /// 64-bit collision degrades to a miss, never to a wrong body.
    entries: FxHashMap<u64, (String, String)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// A sharded, bounded map from request fingerprints to response
/// bodies.
pub struct VerdictCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl VerdictCache {
    /// A cache of at most `capacity` entries spread over `shards`
    /// shards (both floored at 1).
    pub fn new(shards: usize, capacity: usize) -> VerdictCache {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        VerdictCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Returns the stored body for `seed`, counting a hit or a miss.
    pub fn lookup(&self, seed: &str) -> Option<String> {
        let hash = key_hash(seed);
        let shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        match shard.entries.get(&hash) {
            Some((key, body)) if key == seed => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `seed`, evicting the oldest entry of the
    /// shard when it is full.
    pub fn insert(&self, seed: &str, body: String) {
        let hash = key_hash(seed);
        let mut shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        if shard
            .entries
            .insert(hash, (seed.to_string(), body))
            .is_none()
        {
            shard.order.push_back(hash);
            if shard.order.len() > self.per_shard {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.entries.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently stored across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a live entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or a collided key).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bodies stored.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_insert_returns_identical_body() {
        let cache = VerdictCache::new(4, 16);
        assert_eq!(cache.lookup("k1"), None);
        cache.insert("k1", "{\"x\":1}".into());
        assert_eq!(cache.lookup("k1").as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn capacity_evicts_fifo_per_shard() {
        // One shard, capacity 2: the third insert evicts the first.
        let cache = VerdictCache::new(1, 2);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("c", "3".into());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a"), None);
        assert_eq!(cache.lookup("c").as_deref(), Some("3"));
    }

    #[test]
    fn reinsert_updates_in_place_without_growing() {
        let cache = VerdictCache::new(1, 4);
        cache.insert("a", "old".into());
        cache.insert("a", "new".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup("a").as_deref(), Some("new"));
        assert_eq!(cache.evictions(), 0);
    }
}
