//! Sharded verdict cache: canonical request fingerprint → rendered
//! response body.
//!
//! The key is the [`Request::semantic_key`] string — action, the
//! semantically relevant options and the protocol's canonical DSL
//! rendering — hashed with the same `FxHasher` the checkpoint format
//! uses for protocol fingerprints. Because the key is derived from the
//! *resolved* spec, a protocol submitted by name and the same protocol
//! submitted as DSL text hit the same entry.
//!
//! Entries store the compact-rendered response body verbatim, so a
//! cache hit replays byte-identical output. Each shard evicts FIFO at
//! capacity; hit/miss/insertion/eviction counters feed the server's
//! `/v1/metrics` endpoint.
//!
//! With [`VerdictCache::attach_dir`] the cache also persists: every
//! insertion writes one `ccv-cache-entry-v1` file (`<hash>.ccvc`,
//! written atomically and fsynced), and construction reloads the
//! directory, quarantining any entry whose integrity digest does not
//! match as `<file>.corrupt` instead of trusting it. A server restart
//! therefore replays warm verdicts byte-identically.
//!
//! [`Request::semantic_key`]: ccv_core::api::Request::semantic_key

use std::collections::VecDeque;
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ccv_enum::{FxHashMap, FxHasher};
use ccv_observe::{persist, FaultHandle, Json};

/// Schema tag of one persisted cache entry file.
pub const CACHE_ENTRY_SCHEMA: &str = "ccv-cache-entry-v1";

/// Extension of persisted cache entry files.
pub const CACHE_ENTRY_EXT: &str = "ccvc";

/// Hashes a semantic-key string to the cache's 64-bit key space.
pub fn key_hash(seed: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(seed.as_bytes());
    h.finish()
}

/// The integrity digest stored inside one entry file: covers the key,
/// a separator and the body, so any single-bit corruption of either
/// is detected at reload.
fn entry_digest(key: &str, body: &str) -> u64 {
    let mut buf = Vec::with_capacity(key.len() + 1 + body.len());
    buf.extend_from_slice(key.as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(body.as_bytes());
    ccv_enum::fxhash::integrity_digest(&buf)
}

/// Renders one persisted cache entry: a single JSON line carrying the
/// schema tag, the integrity digest, the full semantic key and the
/// response body verbatim.
fn encode_entry(key: &str, body: &str) -> String {
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str(CACHE_ENTRY_SCHEMA)),
        (
            "digest".into(),
            Json::str(format!("{:016x}", entry_digest(key, body))),
        ),
        ("key".into(), Json::str(key)),
        ("body".into(), Json::str(body)),
    ]);
    let mut text = doc.render_compact();
    text.push('\n');
    text
}

/// Parses and verifies one persisted cache entry. Any malformation —
/// bad JSON, wrong schema, missing field, digest mismatch — is an
/// error; the caller quarantines the file.
fn decode_entry(text: &str) -> Result<(String, String), String> {
    let doc = Json::parse(text).map_err(|e| format!("entry is not JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(CACHE_ENTRY_SCHEMA) => {}
        other => return Err(format!("bad entry schema {other:?}")),
    }
    let digest = doc
        .get("digest")
        .and_then(Json::as_str)
        .ok_or("missing digest")?;
    let key = doc.get("key").and_then(Json::as_str).ok_or("missing key")?;
    let body = doc
        .get("body")
        .and_then(Json::as_str)
        .ok_or("missing body")?;
    let expect = format!("{:016x}", entry_digest(key, body));
    if digest != expect {
        return Err(format!("digest mismatch: {digest} != {expect}"));
    }
    Ok((key.to_string(), body.to_string()))
}

#[derive(Default)]
struct Shard {
    /// hash → (full key, stored body). The full key is kept so a
    /// 64-bit collision degrades to a miss, never to a wrong body.
    entries: FxHashMap<u64, (String, String)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// What reloading a persisted cache directory found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirReport {
    /// Entries restored into the in-memory cache.
    pub loaded: usize,
    /// Torn or tampered entry files renamed to `<file>.corrupt`.
    pub quarantined: usize,
}

/// A sharded, bounded map from request fingerprints to response
/// bodies.
pub struct VerdictCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    dir: Option<PathBuf>,
    fault: FaultHandle,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    persist_errors: AtomicU64,
}

impl VerdictCache {
    /// A cache of at most `capacity` entries spread over `shards`
    /// shards (both floored at 1).
    pub fn new(shards: usize, capacity: usize) -> VerdictCache {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        VerdictCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            dir: None,
            fault: FaultHandle::disabled(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        }
    }

    /// Backs the cache with `dir`: every future insertion is written
    /// as one atomic entry file, and any entries already in `dir` are
    /// reloaded now. Entries whose integrity digest does not verify
    /// are quarantined as `<file>.corrupt`, never trusted. `fault`
    /// names the handle whose `cache.write` site exercises the write
    /// path under injection.
    pub fn attach_dir(&mut self, dir: &Path, fault: FaultHandle) -> io::Result<DirReport> {
        std::fs::create_dir_all(dir)?;
        let mut report = DirReport::default();
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == CACHE_ENTRY_EXT))
            .collect();
        names.sort(); // deterministic load order
        for path in names {
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| decode_entry(&text))
            {
                Ok((key, body)) => {
                    self.store(&key, body);
                    report.loaded += 1;
                }
                Err(_) => {
                    // Torn, truncated or tampered: move it aside so it
                    // is never trusted and never re-read.
                    let _ = persist::quarantine(&path);
                    report.quarantined += 1;
                }
            }
        }
        self.dir = Some(dir.to_path_buf());
        self.fault = fault;
        Ok(report)
    }

    /// Entry-file writes that failed (disk trouble or injected
    /// faults); the entry stays served from memory.
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors.load(Ordering::Relaxed)
    }

    fn entry_path(&self, hash: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{hash:016x}.{CACHE_ENTRY_EXT}")))
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Returns the stored body for `seed`, counting a hit or a miss.
    pub fn lookup(&self, seed: &str) -> Option<String> {
        let hash = key_hash(seed);
        let shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        match shard.entries.get(&hash) {
            Some((key, body)) if key == seed => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `seed`, evicting the oldest entry of the
    /// shard when it is full. With a directory attached the entry is
    /// also written as one atomic, fsynced file; a failed write (disk
    /// trouble, injected fault) degrades to memory-only — it never
    /// fails the request that produced the body.
    pub fn insert(&self, seed: &str, body: String) {
        let (hash, evicted) = self.store(seed, body.clone());
        if let Some(path) = self.entry_path(hash) {
            let text = encode_entry(seed, &body);
            if persist::write_atomic(&path, text.as_bytes(), &self.fault, "cache.write").is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(old) = evicted.and_then(|h| self.entry_path(h)) {
            let _ = std::fs::remove_file(old);
        }
    }

    /// The in-memory half of [`VerdictCache::insert`]: returns the
    /// entry's hash and the hash of any entry FIFO-evicted to make
    /// room.
    fn store(&self, seed: &str, body: String) -> (u64, Option<u64>) {
        let hash = key_hash(seed);
        let mut evicted = None;
        let mut shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        if shard
            .entries
            .insert(hash, (seed.to_string(), body))
            .is_none()
        {
            shard.order.push_back(hash);
            if shard.order.len() > self.per_shard {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.entries.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted = Some(oldest);
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        (hash, evicted)
    }

    /// Entries currently stored across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a live entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or a collided key).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bodies stored.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_insert_returns_identical_body() {
        let cache = VerdictCache::new(4, 16);
        assert_eq!(cache.lookup("k1"), None);
        cache.insert("k1", "{\"x\":1}".into());
        assert_eq!(cache.lookup("k1").as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn capacity_evicts_fifo_per_shard() {
        // One shard, capacity 2: the third insert evicts the first.
        let cache = VerdictCache::new(1, 2);
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("c", "3".into());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a"), None);
        assert_eq!(cache.lookup("c").as_deref(), Some("3"));
    }

    #[test]
    fn attach_dir_persists_and_reloads_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ccv-cache-reload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = VerdictCache::new(2, 8);
            let r = cache.attach_dir(&dir, FaultHandle::disabled()).unwrap();
            assert_eq!(r, DirReport::default());
            cache.insert("verify|illinois", "{\"verdict\":\"VERIFIED\"}".into());
            cache.insert("verify|dragon", "{\"verdict\":\"VERIFIED\",\"n\":2}".into());
        }
        let mut fresh = VerdictCache::new(2, 8);
        let r = fresh.attach_dir(&dir, FaultHandle::disabled()).unwrap();
        assert_eq!((r.loaded, r.quarantined), (2, 0));
        assert_eq!(
            fresh.lookup("verify|illinois").as_deref(),
            Some("{\"verdict\":\"VERIFIED\"}")
        );
        assert_eq!(
            fresh.lookup("verify|dragon").as_deref(),
            Some("{\"verdict\":\"VERIFIED\",\"n\":2}")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_entry_files_are_quarantined_not_trusted() {
        let dir = std::env::temp_dir().join(format!("ccv-cache-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = VerdictCache::new(1, 8);
            cache.attach_dir(&dir, FaultHandle::disabled()).unwrap();
            cache.insert("k", "{\"verdict\":\"VERIFIED\"}".into());
        }
        // Tear the entry file mid-body, then flip one body byte of a
        // second, full-length copy: both must be rejected.
        let path = dir.join(format!("{:016x}.{CACHE_ENTRY_EXT}", key_hash("k")));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut torn = VerdictCache::new(1, 8);
        let r = torn.attach_dir(&dir, FaultHandle::disabled()).unwrap();
        assert_eq!((r.loaded, r.quarantined), (0, 1));
        assert_eq!(torn.lookup("k"), None);
        assert!(path.with_extension("ccvc.corrupt").exists());

        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let mut tampered = VerdictCache::new(1, 8);
        let r = tampered.attach_dir(&dir, FaultHandle::disabled()).unwrap();
        assert_eq!(r.loaded, 0, "tampered entry must not load");
        assert_eq!(tampered.lookup("k"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_degrades_to_memory_only() {
        let dir = std::env::temp_dir().join(format!("ccv-cache-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fault = FaultHandle::from_spec("cache.write:io").unwrap();
        let mut cache = VerdictCache::new(1, 8);
        cache.attach_dir(&dir, fault).unwrap();
        cache.insert("k", "body".into());
        assert_eq!(cache.persist_errors(), 1);
        // The entry is still served from memory...
        assert_eq!(cache.lookup("k").as_deref(), Some("body"));
        // ...but was never written, so a reload starts empty.
        let mut fresh = VerdictCache::new(1, 8);
        let r = fresh.attach_dir(&dir, FaultHandle::disabled()).unwrap();
        assert_eq!(r.loaded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_removes_the_entry_file() {
        let dir = std::env::temp_dir().join(format!("ccv-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = VerdictCache::new(1, 2);
        cache.attach_dir(&dir, FaultHandle::disabled()).unwrap();
        cache.insert("a", "1".into());
        cache.insert("b", "2".into());
        cache.insert("c", "3".into());
        assert_eq!(cache.evictions(), 1);
        let count = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == CACHE_ENTRY_EXT))
            .count();
        assert_eq!(count, 2, "evicted entry file must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinsert_updates_in_place_without_growing() {
        let cache = VerdictCache::new(1, 4);
        cache.insert("a", "old".into());
        cache.insert("a", "new".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup("a").as_deref(), Some("new"));
        assert_eq!(cache.evictions(), 0);
    }
}
