//! Bounded admission: a fixed worker pool plus a bounded wait queue.
//!
//! At most `workers` requests hold a permit (and therefore an engine)
//! at once; up to `queue` more block waiting for one. Anything beyond
//! that is turned away immediately with a BUSY error — the daemon
//! sheds load instead of accumulating unbounded engine state, which is
//! what "never OOM under a flood of requests" comes down to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

#[derive(Default)]
struct Counts {
    /// Permits handed out.
    active: usize,
    /// Callers blocked waiting for a permit.
    waiting: usize,
}

/// The admission gate. Acquire a [`Permit`] before running an engine;
/// drop it to hand the slot to the next waiter.
pub struct Admission {
    counts: Mutex<Counts>,
    freed: Condvar,
    workers: usize,
    queue: usize,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
}

/// An admission slot; releases on drop.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Admission {
    /// A gate with `workers` concurrent slots and a wait queue of
    /// `queue` (workers floored at 1).
    pub fn new(workers: usize, queue: usize) -> Admission {
        Admission {
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
            workers: workers.max(1),
            queue,
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Acquires a permit, blocking in the queue if the pool is full.
    /// Returns `None` — immediately, without blocking — when the queue
    /// is full too.
    pub fn acquire(&self) -> Option<Permit<'_>> {
        let mut counts = self.counts.lock().unwrap_or_else(|p| p.into_inner());
        if counts.active >= self.workers {
            if counts.waiting >= self.queue {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            counts.waiting += 1;
            self.queued.fetch_add(1, Ordering::Relaxed);
            while counts.active >= self.workers {
                counts = self.freed.wait(counts).unwrap_or_else(|p| p.into_inner());
            }
            counts.waiting -= 1;
        }
        counts.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Some(Permit { gate: self })
    }

    /// Permits currently held.
    pub fn active(&self) -> usize {
        self.counts.lock().unwrap_or_else(|p| p.into_inner()).active
    }

    /// Requests admitted (immediately or after queueing).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests that had to wait for a permit.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Requests turned away because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut counts = self.gate.counts.lock().unwrap_or_else(|p| p.into_inner());
        counts.active -= 1;
        drop(counts);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn serial_acquire_release_never_blocks() {
        let gate = Admission::new(2, 0);
        for _ in 0..10 {
            let p = gate.acquire().expect("free pool admits");
            drop(p);
        }
        assert_eq!(gate.admitted(), 10);
        assert_eq!(gate.rejected(), 0);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn overflow_beyond_workers_plus_queue_is_rejected() {
        let gate = Arc::new(Admission::new(1, 1));
        let held = gate.acquire().expect("first in");
        // Pool full; one slot in the queue. A second waiter would
        // block, so claim the queue slot from another thread and give
        // it a moment to park.
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let _p = g2.acquire().expect("queued then admitted");
        });
        while gate.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue now full: an extra caller bounces without blocking.
        assert!(gate.acquire().is_none());
        assert_eq!(gate.rejected(), 1);
        drop(held);
        waiter.join().unwrap();
        assert_eq!(gate.admitted(), 2);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn queued_waiters_all_complete() {
        let gate = Arc::new(Admission::new(2, 8));
        let mut joins = Vec::new();
        for _ in 0..10 {
            let gate = Arc::clone(&gate);
            joins.push(std::thread::spawn(move || {
                let _p = gate.acquire().expect("within workers+queue");
                std::thread::sleep(Duration::from_millis(2));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(gate.admitted(), 10);
        assert_eq!(gate.active(), 0);
    }
}
