//! # ccv-serve — verification as a service
//!
//! A small, dependency-free daemon that exposes the unified session
//! API of [`ccv_core::api`] over TCP: clients submit
//! `ccv-request-v1` documents (protocol DSL or a library name, plus
//! engine options) and receive `ccv-response-v1` bodies, exactly the
//! schema the `ccv` CLI subcommands use internally. Two wire
//! protocols share one port, distinguished by the first byte of the
//! connection:
//!
//! * **NDJSON** (first byte `{`): one request per line, one
//!   connection per request. The server streams `{"ev":...}` progress
//!   events (when the request sets `"stream": true`), periodic
//!   `{"ev":"ping"}` heartbeats, and finally one
//!   `{"ev":"response","cached":bool,"body":{...}}` envelope. Made
//!   for `nc`.
//! * **HTTP/1.1** (anything else): `POST /v1/requests` with the
//!   request as body, plus `GET /v1/metrics` and `GET /v1/healthz`.
//!   Responses carry `X-Ccv-Cache: hit|miss`. Made for `curl`.
//!
//! The daemon is built to survive hostile input and overload:
//!
//! * every request runs under its own [`Governor`] budget — the
//!   server clamps deadlines, state budgets and memory caps to
//!   configured maxima, so one heavy request ends in an INCONCLUSIVE
//!   verdict instead of wedging the process;
//! * admission is a bounded worker pool plus a bounded queue
//!   ([`admission::Admission`]); excess load is shed with a `busy`
//!   error (HTTP 429), never buffered without bound;
//! * a client that disappears mid-run is detected (failed heartbeat
//!   write or reset connection) and its engine run is cancelled
//!   through [`CancelToken::request_cancel`], recorded as the
//!   `disconnected` stop cause;
//! * conclusive responses are cached in a sharded verdict cache
//!   ([`cache::VerdictCache`]) keyed by the canonical request
//!   fingerprint, so repeated submissions of the same protocol replay
//!   byte-identical bodies without re-running the engine;
//! * malformed requests — up to and including fuzzed garbage — always
//!   produce a well-formed error body, never a panic (the engines'
//!   panic paths are themselves governed).
//!
//! ```
//! use ccv_serve::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let handle = Server::bind(ServerConfig::loopback()).unwrap().spawn();
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! writeln!(
//!     conn,
//!     r#"{{"schema":"ccv-request-v1","action":"verify","protocol":{{"name":"illinois"}}}}"#
//! )
//! .unwrap();
//! for line in BufReader::new(conn).lines() {
//!     let line = line.unwrap();
//!     if line.contains("\"ev\":\"response\"") {
//!         assert!(line.contains("\"verdict\":\"VERIFIED\""));
//!         break;
//!     }
//! }
//! handle.shutdown();
//! ```
//!
//! [`Governor`]: ccv_observe::Governor
//! [`CancelToken::request_cancel`]: ccv_observe::CancelToken::request_cancel

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod cache;
mod conn;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ccv_core::api::{
    Action, ApiError, ErrorCode, Request, RunContext, SessionRunner, RESPONSE_SCHEMA,
};
use ccv_observe::{CancelToken, FaultHandle, FaultKind, Json};

use admission::Admission;
use cache::VerdictCache;

/// Tunables of one server instance. [`ServerConfig::default`] is the
/// production shape; [`ServerConfig::loopback`] binds an ephemeral
/// port for tests.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` binds an
    /// ephemeral port (see [`Server::local_addr`]).
    pub addr: String,
    /// Engine runs allowed to execute concurrently.
    pub workers: usize,
    /// Requests allowed to wait for a worker before new arrivals are
    /// turned away with `busy`.
    pub queue_depth: usize,
    /// Total verdict-cache entries (split across shards).
    pub cache_capacity: usize,
    /// Verdict-cache shard count.
    pub cache_shards: usize,
    /// Largest accepted cache count `n`; larger requests are rejected
    /// (`bad_request`), because explicit state spaces grow
    /// exponentially in `n`.
    pub max_n: usize,
    /// Per-request worker-thread clamp. Requests asking for more (or
    /// for auto-detection via `threads: 0`) get exactly this many —
    /// except spill-backed runs, where auto stays auto so the engine
    /// can resolve it to the sequential 1 it requires.
    pub max_threads: usize,
    /// Deadline applied to requests that specify none.
    pub default_deadline: Duration,
    /// Upper clamp for client-supplied deadlines.
    pub max_deadline: Duration,
    /// Upper clamp (and default) for the enumeration state budget.
    pub max_states_cap: usize,
    /// Upper clamp (and default) for the per-run memory budget.
    pub max_bytes_cap: u64,
    /// Upper clamp for the symbolic visit budget.
    pub max_budget: usize,
    /// Largest accepted request document, in bytes.
    pub max_request_bytes: usize,
    /// Heartbeat / disconnect-probe interval for NDJSON connections.
    pub ping_interval: Duration,
    /// Allow requests that touch server-side files
    /// (`checkpoint_out` / `resume`). Off by default.
    pub allow_files: bool,
    /// Directory backing the verdict cache across restarts. `None`
    /// (the default) keeps the cache memory-only. Entries in the
    /// directory are reloaded at startup; torn ones are quarantined.
    pub cache_dir: Option<PathBuf>,
    /// The `retry-after` hint attached to BUSY rejections: how long a
    /// well-behaved client should back off before resubmitting.
    pub retry_after: Duration,
    /// Server-side fault injection (tests and drills): drives the
    /// `serve.accept`, `serve.response` and `cache.write` sites.
    /// Disabled by default — the handle is a no-op.
    pub fault: FaultHandle,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 8,
            cache_capacity: 256,
            cache_shards: 8,
            max_n: 8,
            max_threads: 4,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(120),
            max_states_cap: 1 << 22,
            max_bytes_cap: 256 << 20,
            max_budget: 1 << 24,
            max_request_bytes: 1 << 20,
            ping_interval: Duration::from_millis(200),
            allow_files: false,
            cache_dir: None,
            retry_after: Duration::from_millis(500),
            fault: FaultHandle::disabled(),
        }
    }
}

impl ServerConfig {
    /// A config bound to `127.0.0.1:0` (ephemeral port) — what tests
    /// want.
    pub fn loopback() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        }
    }

    /// Validates a request against the server's caps and returns the
    /// effective request that will actually run: unspecified budgets
    /// filled with server defaults, client budgets clamped to server
    /// maxima. Clamping happens *before* the cache fingerprint is
    /// computed, so equal submissions stay equal after it.
    pub fn admit(&self, req: &Request) -> Result<Request, ApiError> {
        let mut r = req.clone();
        let o = &mut r.options;
        if o.touches_files() && !self.allow_files {
            return Err(ApiError::unsupported(
                "checkpoint_out/resume/spill_dir touch server-side files and are \
                 disabled (start the server with --allow-files to enable them)",
            ));
        }
        if o.n > self.max_n {
            return Err(ApiError::bad_request(format!(
                "n={} exceeds this server's cap of {}",
                o.n, self.max_n
            )));
        }
        if o.spill_dir.is_some() {
            // Spill-backed runs are sequential; inflating an auto
            // thread request to `max_threads` here would turn it into
            // an explicit spill×threads conflict downstream. Leave 0
            // (auto) alone and let the engine resolve it to 1 — an
            // explicit `threads > 1` still reaches the engine and
            // comes back `bad_request`.
            o.threads = o.threads.min(self.max_threads);
        } else if o.threads == 0 || o.threads > self.max_threads {
            o.threads = self.max_threads;
        }
        o.deadline = Some(
            o.deadline
                .map_or(self.default_deadline, |d| d.min(self.max_deadline)),
        );
        o.max_states = Some(
            o.max_states
                .map_or(self.max_states_cap, |s| s.min(self.max_states_cap)),
        );
        o.max_bytes = Some(
            o.max_bytes
                .map_or(self.max_bytes_cap, |b| b.min(self.max_bytes_cap)),
        );
        if let Some(b) = o.budget {
            o.budget = Some(b.min(self.max_budget));
        }
        Ok(r)
    }
}

/// What one request produced: the rendered response body plus the
/// transport-relevant facts about how it was produced.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Compact-rendered `ccv-response-v1` body. For cache hits this is
    /// the stored string, byte for byte.
    pub body: String,
    /// Served from the verdict cache without running an engine.
    pub cached: bool,
    /// `None` for a successful payload, the error class otherwise.
    pub code: Option<ErrorCode>,
    /// The run was cut short because the client went away.
    pub disconnected: bool,
    /// For BUSY rejections: how many milliseconds the client should
    /// wait before retrying (the HTTP front end renders this as a
    /// `retry-after` header).
    pub retry_after_ms: Option<u64>,
}

/// The protocol-independent server core: parses and validates
/// requests, consults the verdict cache, runs engines under
/// admission control, and keeps the counters `/v1/metrics` reports.
///
/// [`Server`] adds the TCP front end; tests and the fuzz harness call
/// [`Service::process_text`] directly.
pub struct Service {
    config: ServerConfig,
    cache: VerdictCache,
    cache_recovery: Option<cache::DirReport>,
    cache_degraded: Option<String>,
    admission: Admission,
    runners: Mutex<Vec<SessionRunner>>,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    disconnects: AtomicU64,
}

impl Service {
    /// A service with the given tunables. Installs the explicit-state
    /// backend so enumerate/crosscheck requests are servable. When
    /// `cache_dir` is set, persisted verdicts are reloaded here; a
    /// directory that cannot be used degrades the cache to memory-only
    /// (see [`Service::cache_degraded`]) instead of failing startup.
    pub fn new(config: ServerConfig) -> Arc<Service> {
        ccv_enum::install_api_backend();
        let mut cache = VerdictCache::new(config.cache_shards, config.cache_capacity);
        let mut cache_recovery = None;
        let mut cache_degraded = None;
        if let Some(dir) = &config.cache_dir {
            match cache.attach_dir(dir, config.fault.clone()) {
                Ok(report) => cache_recovery = Some(report),
                Err(e) => {
                    cache_degraded = Some(format!(
                        "cache directory {} unusable ({e}); verdict cache is memory-only",
                        dir.display()
                    ));
                }
            }
        }
        Arc::new(Service {
            cache,
            cache_recovery,
            cache_degraded,
            admission: Admission::new(config.workers, config.queue_depth),
            runners: Mutex::new(Vec::new()),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            config,
        })
    }

    /// The tunables this service runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// What reloading the persisted verdict cache found, when a cache
    /// directory is configured and usable.
    pub fn cache_recovery(&self) -> Option<cache::DirReport> {
        self.cache_recovery
    }

    /// Why the verdict cache fell back to memory-only operation, if
    /// it did.
    pub fn cache_degraded(&self) -> Option<&str> {
        self.cache_degraded.as_deref()
    }

    /// Handles one request document: parse, validate, and run.
    /// Malformed text yields a well-formed error outcome.
    pub fn process_text(&self, text: &str, ctx: &RunContext) -> Outcome {
        match Request::parse(text) {
            Ok(req) => self.process(&req, ctx),
            Err(e) => self.reject(None, e),
        }
    }

    /// Handles one parsed request end to end: cap validation, cache
    /// lookup, admission, engine run, cache fill.
    pub fn process(&self, req: &Request, ctx: &RunContext) -> Outcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let action = req.action;
        let effective = match self.config.admit(req) {
            Ok(r) => r,
            Err(e) => return self.rejection(action, e),
        };
        let spec = match effective.protocol.resolve() {
            Ok(spec) => spec,
            Err(e) => return self.rejection(action, e),
        };
        let seed = effective.semantic_key(&spec);
        // Fault-injection runs are for testing the failure paths;
        // replaying them from cache would defeat the point.
        let cacheable = effective.options.inject_panic.is_none()
            && effective.options.fault_plan.is_none()
            && !effective.options.touches_files();
        if cacheable {
            if let Some(body) = self.cache.lookup(&seed) {
                self.ok.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    body,
                    cached: true,
                    code: None,
                    disconnected: false,
                    retry_after_ms: None,
                };
            }
        }
        let Some(_permit) = self.admission.acquire() else {
            return self.rejection(
                action,
                ApiError::busy(format!(
                    "server at capacity ({} workers busy, {} queued); retry later",
                    self.config.workers, self.config.queue_depth
                ))
                .with_retry_after(self.config.retry_after.as_millis() as u64),
            );
        };
        let mut runner = self
            .runners
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default();
        let resp = runner.run(&effective, ctx);
        {
            let mut pool = self.runners.lock().unwrap_or_else(|p| p.into_inner());
            if pool.len() < self.config.workers {
                pool.push(runner);
            }
        }
        let disconnected = ctx.cancel.is_disconnected();
        if disconnected {
            self.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        let code = match &resp.result {
            Ok(_) => None,
            Err(e) => Some(e.code),
        };
        match code {
            None => self.ok.fetch_add(1, Ordering::Relaxed),
            Some(_) => self.errors.fetch_add(1, Ordering::Relaxed),
        };
        let body = resp.to_json().render_compact();
        if cacheable && !disconnected && resp.is_conclusive() {
            self.cache.insert(&seed, body.clone());
        }
        Outcome {
            body,
            cached: false,
            code,
            disconnected,
            retry_after_ms: None,
        }
    }

    /// An error outcome for a request that could not even be read
    /// (oversized, unparseable, socket trouble). Counts as a request.
    pub(crate) fn process_text_error(&self, err: ApiError) -> Outcome {
        self.reject(None, err)
    }

    /// An error outcome for a request that never reached an engine.
    /// `action` is `None` when the request didn't even parse.
    fn reject(&self, action: Option<Action>, err: ApiError) -> Outcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.rejection_body(action, err)
    }

    /// Like [`Service::reject`] but for requests already counted.
    fn rejection(&self, action: Action, err: ApiError) -> Outcome {
        self.rejection_body(Some(action), err)
    }

    fn rejection_body(&self, action: Option<Action>, err: ApiError) -> Outcome {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let mut fields = vec![("schema".to_string(), Json::str(RESPONSE_SCHEMA))];
        if let Some(action) = action {
            fields.push(("action".to_string(), Json::str(action.name())));
        }
        let retry_after_ms = err.retry_after_ms;
        fields.push(("error".to_string(), err.to_json()));
        Outcome {
            body: Json::Obj(fields).render_compact(),
            cached: false,
            code: Some(err.code),
            disconnected: false,
            retry_after_ms,
        }
    }

    /// Requests cancelled because their client disconnected.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// The verdict cache, for counter assertions.
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// The admission gate, for counter assertions.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The `/v1/metrics` document (`ccv-serve-metrics-v1`).
    pub fn metrics_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("ccv-serve-metrics-v1")),
            (
                "requests".into(),
                Json::int(self.requests.load(Ordering::Relaxed)),
            ),
            ("ok".into(), Json::int(self.ok.load(Ordering::Relaxed))),
            (
                "errors".into(),
                Json::int(self.errors.load(Ordering::Relaxed)),
            ),
            (
                "disconnects".into(),
                Json::int(self.disconnects.load(Ordering::Relaxed)),
            ),
            (
                "admission".into(),
                Json::Obj(vec![
                    ("active".into(), Json::int(self.admission.active() as u64)),
                    ("admitted".into(), Json::int(self.admission.admitted())),
                    ("queued".into(), Json::int(self.admission.queued())),
                    ("busy".into(), Json::int(self.admission.rejected())),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::int(self.cache.len() as u64)),
                    ("hits".into(), Json::int(self.cache.hits())),
                    ("misses".into(), Json::int(self.cache.misses())),
                    ("insertions".into(), Json::int(self.cache.insertions())),
                    ("evictions".into(), Json::int(self.cache.evictions())),
                    (
                        "persist_errors".into(),
                        Json::int(self.cache.persist_errors()),
                    ),
                ]),
            ),
        ])
    }
}

/// A bound listener plus its [`Service`]. Call [`Server::run`] to
/// serve on the current thread, or [`Server::spawn`] to serve from a
/// background thread (tests).
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address and prepares the service. The
    /// listener is non-blocking so [`Server::run`] can poll the
    /// shutdown flag between accepts.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            service: Service::new(config),
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle on the server core, for metrics and configuration.
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Accepts connections until the shutdown flag is raised (or the
    /// process-global cancel token trips — Ctrl-C in the CLI), handling
    /// each on its own thread. In-flight requests finish on their own
    /// threads; engine runs are bounded by the admission gate, not by
    /// this loop.
    pub fn run(self) {
        loop {
            if self.shutdown.load(Ordering::Acquire) || CancelToken::global().is_stopped() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Injected accept faults model a connection that
                    // dies between accept and first byte: drop it on
                    // the floor and keep serving.
                    if matches!(
                        self.service.config.fault.fire("serve.accept"),
                        Some(FaultKind::Disconnect | FaultKind::IoError)
                    ) {
                        continue;
                    }
                    let service = Arc::clone(&self.service);
                    std::thread::spawn(move || conn::handle_connection(service, stream));
                }
                // 1ms keeps the idle accept loop cheap while holding
                // the connection-setup latency floor well under the
                // cost of any real verification request.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    /// Runs the accept loop on a background thread and returns a
    /// handle that shuts it down on [`ServerHandle::shutdown`] or
    /// drop.
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .local_addr()
            .expect("bound listener has a local address");
        let service = self.service();
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            service,
            shutdown,
            thread: Some(thread),
        }
    }
}

/// A running background server (from [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server core, for metrics and counters.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting and joins the accept loop. In-flight request
    /// threads are left to finish on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_core::api::ProtocolSource;

    fn service() -> Arc<Service> {
        Service::new(ServerConfig::loopback())
    }

    #[test]
    fn verify_request_round_trips_through_the_service() {
        let s = service();
        let req = Request::verify(ProtocolSource::Name("illinois".into()));
        let out = s.process(&req, &RunContext::default());
        assert_eq!(out.code, None);
        assert!(!out.cached);
        assert!(out.body.contains("\"verdict\":\"VERIFIED\""));
        let doc = Json::parse(&out.body).expect("body is valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(RESPONSE_SCHEMA));
    }

    #[test]
    fn second_identical_submission_is_a_byte_identical_cache_hit() {
        let s = service();
        let req = Request::verify(ProtocolSource::Name("illinois".into()));
        let first = s.process(&req, &RunContext::default());
        let second = s.process(&req, &RunContext::default());
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.body, second.body);
        assert_eq!(s.cache().hits(), 1);
        // A protocol submitted as DSL text canonicalises to the same
        // fingerprint as its library name.
        let dsl = ccv_model::dsl::to_dsl(&ccv_model::protocols::illinois());
        let by_dsl = s.process(
            &Request::verify(ProtocolSource::Dsl(dsl)),
            &RunContext::default(),
        );
        assert!(by_dsl.cached);
        assert_eq!(by_dsl.body, first.body);
    }

    #[test]
    fn malformed_text_yields_a_well_formed_error_body() {
        let s = service();
        for text in ["", "not json", "{\"schema\":\"nope\"}", "{\"unterminated"] {
            let out = s.process_text(text, &RunContext::default());
            assert_eq!(out.code, Some(ErrorCode::BadRequest), "{text:?}");
            let doc = Json::parse(&out.body).expect("error body is valid JSON");
            assert!(doc.get("error").is_some(), "{text:?}");
        }
    }

    #[test]
    fn server_caps_reject_oversized_n_and_file_options() {
        let s = service();
        let big = Request::enumerate(ProtocolSource::Name("illinois".into()), 99);
        let out = s.process(&big, &RunContext::default());
        assert_eq!(out.code, Some(ErrorCode::BadRequest));
        assert!(out.body.contains("exceeds this server's cap"));

        let mut with_files = Request::enumerate(ProtocolSource::Name("illinois".into()), 3);
        with_files.options.checkpoint_out = Some("/tmp/x.ccvk".into());
        let out = s.process(&with_files, &RunContext::default());
        assert_eq!(out.code, Some(ErrorCode::Unsupported));
    }

    #[test]
    fn spill_requests_keep_auto_threads_instead_of_inflating_them() {
        // The clamp turns `threads: 0` into `max_threads` — but for a
        // spill-backed run that would manufacture a spill×threads
        // conflict the client never asked for. Auto must survive
        // admission so the engine can resolve it to the sequential 1.
        let cfg = ServerConfig {
            allow_files: true,
            ..ServerConfig::loopback()
        };
        let mut req = Request::enumerate(ProtocolSource::Name("illinois".into()), 3);
        req.options.spill_dir = Some("/tmp/ccv-spill-admit-test".into());
        let effective = cfg.admit(&req).expect("admitted");
        assert_eq!(effective.options.threads, 0, "auto must stay auto");

        // An explicit thread count still reaches the engine untouched,
        // where it is answered with `bad_request`.
        req.options.threads = 4;
        let effective = cfg.admit(&req).expect("admitted");
        assert_eq!(effective.options.threads, 4);
        let s = Service::new(cfg);
        let out = s.process(&req, &RunContext::default());
        assert_eq!(out.code, Some(ErrorCode::BadRequest));
        assert!(out.body.contains("sequential"), "{}", out.body);
    }

    #[test]
    fn over_budget_request_is_inconclusive_not_fatal() {
        let s = service();
        let mut req = Request::verify(ProtocolSource::Name("illinois".into()));
        req.options.budget = Some(3);
        let out = s.process(&req, &RunContext::default());
        assert_eq!(out.code, None);
        assert!(out.body.contains("\"verdict\":\"INCONCLUSIVE\""));
        // Inconclusive results must not poison the cache.
        let again = s.process(&req, &RunContext::default());
        assert!(!again.cached);
    }

    #[test]
    fn busy_rejection_carries_a_retry_after_hint() {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 0,
            ..ServerConfig::loopback()
        };
        let s = Service::new(cfg);
        let _held = s.admission().acquire().expect("empty pool admits");
        let req = Request::verify(ProtocolSource::Name("illinois".into()));
        let out = s.process(&req, &RunContext::default());
        assert_eq!(out.code, Some(ErrorCode::Busy));
        assert_eq!(out.retry_after_ms, Some(500));
        assert!(out.body.contains("\"retry_after_ms\":500"), "{}", out.body);
    }

    #[test]
    fn fault_plan_requests_bypass_the_cache() {
        let s = service();
        let mut req = Request::enumerate(ProtocolSource::Name("illinois".into()), 3);
        req.options.fault_plan = Some("enum.worker:slow@1".into());
        let first = s.process(&req, &RunContext::default());
        assert_eq!(first.code, None);
        let again = s.process(&req, &RunContext::default());
        assert!(
            !again.cached,
            "fault-plan runs must never replay from cache"
        );
    }

    #[test]
    fn cache_dir_survives_a_service_restart_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ccv-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::loopback()
        };
        let req = Request::verify(ProtocolSource::Name("dragon".into()));
        let first = {
            let s = Service::new(cfg.clone());
            s.process(&req, &RunContext::default())
        };
        assert_eq!(first.code, None);
        let s = Service::new(cfg);
        let recovery = s.cache_recovery().expect("cache dir attached");
        assert_eq!((recovery.loaded, recovery.quarantined), (1, 0));
        let replay = s.process(&req, &RunContext::default());
        assert!(replay.cached, "restart must replay the persisted verdict");
        assert_eq!(replay.body, first.body, "replay must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_cache_dir_degrades_to_memory_only() {
        let file = std::env::temp_dir().join(format!("ccv-serve-notdir-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let cfg = ServerConfig {
            cache_dir: Some(file.clone()),
            ..ServerConfig::loopback()
        };
        let s = Service::new(cfg);
        assert!(s.cache_degraded().is_some(), "degradation must be reported");
        // The service still works, memory-only.
        let req = Request::verify(ProtocolSource::Name("illinois".into()));
        let out = s.process(&req, &RunContext::default());
        assert_eq!(out.code, None);
        assert!(s.process(&req, &RunContext::default()).cached);
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn metrics_json_carries_all_counter_groups() {
        let s = service();
        let req = Request::verify(ProtocolSource::Name("illinois".into()));
        s.process(&req, &RunContext::default());
        s.process(&req, &RunContext::default());
        let m = s.metrics_json();
        assert_eq!(
            m.get("schema").unwrap().as_str(),
            Some("ccv-serve-metrics-v1")
        );
        assert_eq!(m.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(m.get("ok").unwrap().as_u64(), Some(2));
        let cache = m.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
        let admission = m.get("admission").unwrap();
        assert_eq!(admission.get("admitted").unwrap().as_u64(), Some(1));
    }
}
