//! Loopback integration tests: a real `ccv serve` daemon on an
//! ephemeral port, exercised over actual TCP by concurrent clients.
//!
//! These are the end-to-end guarantees the daemon advertises:
//! verdicts served over the wire are byte-identical to direct
//! [`SessionRunner`] runs; repeated identical submissions replay from
//! the verdict cache with identical bodies; a full admission gate
//! answers BUSY instead of queueing unboundedly; an over-budget
//! request comes back INCONCLUSIVE without disturbing other in-flight
//! sessions; and a client that vanishes mid-request is detected and
//! counted.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccv_core::api::{ProtocolSource, Request, RunContext, SessionRunner};
use ccv_observe::{CancelToken, SinkHandle};
use ccv_serve::{Server, ServerConfig, ServerHandle};

/// Every checked-in protocol description, name → DSL text.
fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../protocols");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("protocols/ corpus directory")
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            if !name.ends_with(".ccv") {
                return None;
            }
            Some((name, std::fs::read_to_string(e.path()).ok()?))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 10, "expected the 10-protocol corpus");
    files
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind(config).expect("bind loopback").spawn()
}

/// Sends one NDJSON request line and reads events until the response
/// envelope arrives. Returns `(cached, body)` with the body extracted
/// verbatim from the envelope (no re-rendering, so byte comparisons
/// are honest).
fn ndjson_round_trip(addr: std::net::SocketAddr, line: &str) -> (bool, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).expect("send request");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf).expect("read event line");
        assert!(n > 0, "connection closed before a response envelope");
        let line = buf.trim_end();
        for (prefix, cached) in [
            ("{\"ev\":\"response\",\"cached\":false,\"body\":", false),
            ("{\"ev\":\"response\",\"cached\":true,\"body\":", true),
        ] {
            if let Some(rest) = line.strip_prefix(prefix) {
                let body = rest.strip_suffix('}').expect("envelope closes");
                return (cached, body.to_string());
            }
        }
        // Anything else is a ping or a streamed progress event; both
        // must at least be well-formed JSON lines.
        ccv_observe::Json::parse(line).expect("non-response event parses");
    }
}

/// Runs `req` directly through the Session backend after applying the
/// same server-side clamps, rendering the body exactly as the daemon
/// does.
fn direct_body(config: &ServerConfig, req: &Request) -> String {
    ccv_enum::install_api_backend();
    let effective = config.admit(req).expect("request within caps");
    let ctx = RunContext::new(CancelToken::new(), SinkHandle::disabled());
    SessionRunner::new()
        .run(&effective, &ctx)
        .to_json()
        .render_compact()
}

fn verify_request(dsl: &str) -> Request {
    Request::verify(ProtocolSource::Dsl(dsl.to_string()))
}

#[test]
fn ten_protocols_from_eight_concurrent_clients_match_direct_runs() {
    let mut config = ServerConfig::loopback();
    config.workers = 4;
    config.queue_depth = 32;
    let expected: Vec<(String, String, String)> = corpus()
        .into_iter()
        .map(|(name, dsl)| {
            let req = verify_request(&dsl);
            let body = direct_body(&config, &req);
            (name, req.to_json().render_compact(), body)
        })
        .collect();
    let server = spawn_server(config);
    let addr = server.addr();

    let expected = Arc::new(expected);
    let mut joins = Vec::new();
    for thread in 0..8 {
        let expected = Arc::clone(&expected);
        joins.push(std::thread::spawn(move || {
            // Thread t takes protocols t, t+8, t+16, ... so all 10
            // submissions are in flight across the 8 clients at once.
            for (name, wire, want) in expected.iter().skip(thread).step_by(8) {
                let (_cached, body) = ndjson_round_trip(addr, wire);
                assert_eq!(&body, want, "{name}: wire body differs from direct run");
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    assert_eq!(server.service().disconnects(), 0);
}

#[test]
fn second_identical_submission_is_a_wire_level_cache_hit() {
    let server = spawn_server(ServerConfig::loopback());
    let addr = server.addr();
    let (_, msi) = corpus().into_iter().find(|(n, _)| n == "msi.ccv").unwrap();
    let wire = verify_request(&msi).to_json().render_compact();

    let (first_cached, first) = ndjson_round_trip(addr, &wire);
    let (second_cached, second) = ndjson_round_trip(addr, &wire);
    assert!(!first_cached, "first submission must compute");
    assert!(second_cached, "second identical submission must hit");
    assert_eq!(first, second, "cached replay must be byte-identical");
    assert!(first.contains("\"verdict\":\"VERIFIED\""));
    assert_eq!(server.service().cache().hits(), 1);
}

#[test]
fn full_admission_gate_answers_busy_over_the_wire() {
    let mut config = ServerConfig::loopback();
    config.workers = 1;
    config.queue_depth = 0;
    let server = spawn_server(config);
    let addr = server.addr();
    // Occupy the only engine slot from the test itself: the next wire
    // request must bounce deterministically, with no timing games.
    let service = server.service();
    let held = service.admission().acquire().expect("slot free");

    let (_, msi) = corpus().into_iter().find(|(n, _)| n == "msi.ccv").unwrap();
    let wire = verify_request(&msi).to_json().render_compact();
    let (cached, body) = ndjson_round_trip(addr, &wire);
    assert!(!cached);
    assert!(body.contains("\"code\":\"busy\""), "body: {body}");
    assert_eq!(service.admission().rejected(), 1);

    // Releasing the slot restores service.
    drop(held);
    let (_, body) = ndjson_round_trip(addr, &wire);
    assert!(body.contains("\"verdict\":\"VERIFIED\""), "body: {body}");
}

#[test]
fn over_budget_request_is_inconclusive_and_leaves_others_untouched() {
    let mut config = ServerConfig::loopback();
    config.workers = 2;
    let server = spawn_server(config);
    let addr = server.addr();
    let (_, moesi) = corpus()
        .into_iter()
        .find(|(n, _)| n == "moesi.ccv")
        .unwrap();

    let mut starved = verify_request(&moesi);
    starved.options.budget = Some(3);
    let starved_wire = starved.to_json().render_compact();
    let normal_wire = verify_request(&moesi).to_json().render_compact();

    let normal = {
        let wire = normal_wire.clone();
        std::thread::spawn(move || ndjson_round_trip(addr, &wire))
    };
    let (_, starved_body) = ndjson_round_trip(addr, &starved_wire);
    let (_, normal_body) = normal.join().expect("client thread");

    assert!(
        starved_body.contains("\"verdict\":\"INCONCLUSIVE\""),
        "body: {starved_body}"
    );
    assert!(
        normal_body.contains("\"verdict\":\"VERIFIED\""),
        "body: {normal_body}"
    );
    // The inconclusive verdict depends on the budget dice, so it must
    // not have been cached; the conclusive one must have been.
    let (cached, replay) = ndjson_round_trip(addr, &starved_wire);
    assert!(!cached, "inconclusive responses must not be cached");
    assert!(
        replay.contains("\"verdict\":\"INCONCLUSIVE\""),
        "body: {replay}"
    );
    let (cached, replay) = ndjson_round_trip(addr, &normal_wire);
    assert!(cached, "conclusive responses must be cached");
    assert_eq!(replay, normal_body);
}

#[test]
fn split_transaction_protocols_are_served_end_to_end() {
    // Satellite of the non-atomic model: a split protocol submitted
    // over real TCP must verify, enumerate, and crosscheck exactly
    // like a direct run — the installed backend opts into non-atomic
    // support, so no `unsupported` answer is acceptable here.
    let config = ServerConfig::loopback();
    let server = spawn_server(config.clone());
    let addr = server.addr();
    let (_, dsl) = corpus()
        .into_iter()
        .find(|(n, _)| n == "split-msi.ccv")
        .expect("split-msi.ccv in the corpus");

    let verify = verify_request(&dsl);
    let (_, body) = ndjson_round_trip(addr, &verify.to_json().render_compact());
    assert!(body.contains("\"verdict\":\"VERIFIED\""), "body: {body}");
    assert_eq!(body, direct_body(&config, &verify), "matches direct run");

    let enumerate = Request::enumerate(ProtocolSource::Dsl(dsl.clone()), 2);
    let (_, body) = ndjson_round_trip(addr, &enumerate.to_json().render_compact());
    assert!(!body.contains("\"code\":"), "no error: {body}");
    assert!(body.contains("\"distinct_states\":"), "body: {body}");

    let crosscheck = Request::crosscheck(ProtocolSource::Dsl(dsl), 2);
    let (_, body) = ndjson_round_trip(addr, &crosscheck.to_json().render_compact());
    assert!(body.contains("\"complete\":true"), "Theorem 1: {body}");
}

#[test]
fn http_endpoints_serve_health_metrics_and_cache_header() {
    let server = spawn_server(ServerConfig::loopback());
    let addr = server.addr();
    let (_, msi) = corpus().into_iter().find(|(n, _)| n == "msi.ccv").unwrap();
    let wire = verify_request(&msi).to_json().render_compact();

    let health = http_exchange(addr, "GET", "/v1/healthz", None);
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("{\"ok\":true}"));

    let first = http_exchange(addr, "POST", "/v1/requests", Some(&wire));
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("x-ccv-cache: miss"), "{first}");
    let second = http_exchange(addr, "POST", "/v1/requests", Some(&wire));
    assert!(second.contains("x-ccv-cache: hit"), "{second}");
    assert_eq!(
        http_body(&first),
        http_body(&second),
        "bodies byte-identical"
    );

    let metrics = http_exchange(addr, "GET", "/v1/metrics", None);
    assert!(
        metrics.contains("\"schema\":\"ccv-serve-metrics-v1\""),
        "{metrics}"
    );

    let missing = http_exchange(addr, "GET", "/v1/nope", None);
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
}

#[test]
fn client_disconnect_mid_request_is_detected_and_counted() {
    let mut config = ServerConfig::loopback();
    config.workers = 2;
    let server = spawn_server(config);
    let addr = server.addr();
    let (_, moesi) = corpus()
        .into_iter()
        .find(|(n, _)| n == "moesi.ccv")
        .unwrap();
    // A fault-injection option keeps the request out of the verdict
    // cache, so every retry actually runs an engine; enumerate at a
    // real size gives the watchdog a window to notice the dead peer.
    let mut req = Request::enumerate(ProtocolSource::Dsl(moesi), 6);
    req.options.inject_panic = Some(usize::MAX);
    let body = req.to_json().render_compact();
    let http = format!(
        "POST /v1/requests HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    while server.service().disconnects() == 0 {
        assert!(
            Instant::now() < deadline,
            "no disconnect observed: {}",
            server.service().metrics_json().render_compact()
        );
        // Send the full request, then vanish without reading the
        // response: in HTTP mode a read of EOF is a disconnect.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(http.as_bytes()).expect("send request");
        drop(stream);
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(server.service().disconnects() >= 1);
}

/// One HTTP/1.1 exchange; returns the full raw response text.
fn http_exchange(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// The body of a raw HTTP response (everything past the blank line).
fn http_body(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}
