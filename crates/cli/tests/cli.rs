//! End-to-end tests of the `ccv` binary: exit codes, output shape, and
//! file-based workflows, via `CARGO_BIN_EXE_ccv`.

use std::process::{Command, Output};

fn ccv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccv"))
        .args(args)
        .output()
        .expect("spawn ccv")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let o = ccv(&[]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("usage:"));
}

#[test]
fn help_exits_zero() {
    let o = ccv(&["help"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("ccv verify"));
}

#[test]
fn unknown_command_exits_2() {
    let o = ccv(&["frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn list_shows_protocols_and_mutants() {
    let o = ccv(&["list"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    for name in ["illinois", "dragon", "moesi", "illinois-missing-writeback"] {
        assert!(out.contains(name), "missing {name}:\n{out}");
    }
}

#[test]
fn verify_correct_protocol_exits_zero() {
    let o = ccv(&["verify", "illinois"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("VERIFIED"));
    assert!(out.contains("5 essential states"));
    assert!(out.contains("(Shared+, Inv*)"));
}

#[test]
fn verify_buggy_protocol_exits_one_with_counterexample() {
    let o = ccv(&["verify", "illinois-missing-invalidation"]);
    assert_eq!(o.status.code(), Some(1));
    let out = stdout(&o);
    assert!(out.contains("ERRONEOUS"));
    assert!(out.contains("path :"));
    assert!(out.contains("-->"));
}

#[test]
fn verify_unknown_protocol_exits_2() {
    let o = ccv(&["verify", "nonesuch"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("unknown protocol"));
}

#[test]
fn verify_with_trace_prints_the_expansion() {
    let o = ccv(&["verify", "illinois", "--trace"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("trace:"));
    assert!(stdout(&o).contains("[New]") || stdout(&o).contains("[Contained]"));
}

#[test]
fn graph_emits_dot() {
    let o = ccv(&["graph", "msi"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.starts_with("digraph"));
    assert!(out.contains("->"));
}

#[test]
fn export_then_verify_file_roundtrip() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exported.ccv");

    let o = ccv(&["export", "berkeley"]);
    assert_eq!(o.status.code(), Some(0));
    std::fs::write(&path, o.stdout).unwrap();

    let o = ccv(&["verify", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("VERIFIED"));
}

#[test]
fn verify_rejects_malformed_file_with_position() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.ccv");
    std::fs::write(&path, "protocol Broken {\n  state Invalid invalid\n}").unwrap();
    let o = ccv(&["verify", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("broken.ccv:3"), "{}", stderr(&o));
}

#[test]
fn enumerate_reports_distinct_states() {
    let o = ccv(&["enumerate", "illinois", "-n", "3", "--exact"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("distinct states: 14"), "{}", stdout(&o));
}

#[test]
fn enumerate_threads_zero_resolves_to_available_cores() {
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "3",
        "--exact",
        "--threads",
        "0",
    ]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    assert!(
        out.contains(&format!("threads={cores} (auto)")),
        "expected auto-resolved thread count {cores}:\n{out}"
    );
    // The engine choice must not change the counts.
    assert!(out.contains("distinct states: 14"), "{out}");
}

#[test]
fn enumerate_explicit_thread_count_is_reported_verbatim() {
    let o = ccv(&["enumerate", "illinois", "-n", "3", "--threads", "2"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("threads=2"), "{out}");
    assert!(!out.contains("(auto)"), "{out}");
}

#[test]
fn crosscheck_confirms_theorem_1() {
    let o = ccv(&["crosscheck", "dragon", "-n", "3"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("Theorem 1 holds"));
}

#[test]
fn simulate_reports_coherence() {
    let o = ccv(&[
        "simulate",
        "moesi",
        "--workload",
        "migratory",
        "--accesses",
        "5000",
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("coherent"));
}

#[test]
fn simulate_buggy_protocol_exits_one() {
    let o = ccv(&[
        "simulate",
        "dragon-missing-update",
        "--workload",
        "uniform",
        "--accesses",
        "5000",
    ]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stdout(&o).contains("INCOHERENT"));
}

#[test]
fn simulate_from_trace_file() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.trace");
    std::fs::write(&path, "P0 W 1\nP1 R 1\nP1 W 1\nP0 R 1\n").unwrap();
    let o = ccv(&[
        "simulate",
        "illinois",
        "--trace-file",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("coherent"));
}

#[test]
fn witness_prints_a_scenario_for_mutants() {
    let o = ccv(&["witness", "illinois-missing-writeback"]);
    assert_eq!(o.status.code(), Some(1), "witness found -> failure status");
    let out = stdout(&o);
    assert!(out.contains("witness with"), "{out}");
    assert!(out.contains("P0"), "{out}");
}

#[test]
fn witness_on_correct_protocol_exits_zero() {
    let o = ccv(&["witness", "msi", "-n", "3"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("no violation scenario"));
}

#[test]
fn compare_reports_identical_skeletons() {
    let o = ccv(&["compare", "msi", "synapse"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("IDENTICAL"));
}

#[test]
fn describe_prints_tables() {
    let o = ccv(&["describe", "firefly"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("protocol Firefly"));
    assert!(out.contains("snoop reactions:"));
}

#[test]
fn subcommand_help_lists_its_options() {
    let o = ccv(&["verify", "--help"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("usage:"), "{out}");
    assert!(out.contains("--metrics"), "{out}");
    assert!(out.contains("--progress"), "{out}");
    assert!(out.contains("<protocol>"), "{out}");
}

#[test]
fn unknown_option_is_a_positioned_usage_error() {
    let o = ccv(&["verify", "illinois", "--frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    let err = stderr(&o);
    assert!(err.contains("--frobnicate"), "{err}");
    assert!(err.contains("argument 2"), "{err}");
    assert!(err.contains("ccv verify --help"), "{err}");
}

#[test]
fn option_missing_its_value_is_reported() {
    let o = ccv(&["verify", "illinois", "--dot"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("needs a FILE value"), "{}", stderr(&o));
}

#[test]
fn metrics_file_reports_the_papers_numbers() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let o = ccv(&["verify", "illinois", "--metrics", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("metrics written to"));
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"visits\": 22"), "{json}");
    assert!(json.contains("\"essential_states\": 5"), "{json}");
    assert!(json.contains("\"wall_ms\""), "{json}");
    assert!(json.contains("\"expand\""), "{json}");
}

#[test]
fn progress_streams_ndjson_to_stderr() {
    let o = ccv(&["verify", "illinois", "--progress"]);
    assert_eq!(o.status.code(), Some(0));
    let err = stderr(&o);
    assert!(err.contains("\"ev\""), "{err}");
    assert!(err.contains("\"phase_enter\""), "{err}");
    assert!(err.contains("\"expand\""), "{err}");
}

#[test]
fn essential_out_writes_canonical_json() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("illinois-essential.json");
    let o = ccv(&[
        "verify",
        "illinois",
        "--essential-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("essential states written to"));

    let text = std::fs::read_to_string(&path).unwrap();
    let json = ccv_observe::Json::parse(&text).expect("essential dump is valid JSON");
    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("ccv-essential-states-v1")
    );
    assert_eq!(
        json.get("protocol").and_then(|s| s.as_str()),
        Some("Illinois")
    );
    assert_eq!(
        json.get("pruning").and_then(|s| s.as_str()),
        Some("containment")
    );
    assert_eq!(json.get("count").and_then(|c| c.as_u64()), Some(5));

    let entries = json
        .get("essential")
        .and_then(|e| e.as_arr())
        .expect("essential array")
        .to_vec();
    assert_eq!(entries.len(), 5);
    // Canonical ordering: entries sorted by their paper-notation render.
    let rendered: Vec<&str> = entries
        .iter()
        .map(|e| {
            e.get("rendered")
                .and_then(|r| r.as_str())
                .expect("rendered")
        })
        .collect();
    let mut sorted = rendered.clone();
    sorted.sort();
    assert_eq!(rendered, sorted, "entries must be sorted by rendering");
    assert!(rendered.contains(&"(Shared+, Inv*)"), "{rendered:?}");

    // Stable output: a second run produces byte-identical JSON.
    let path2 = dir.join("illinois-essential-2.json");
    let o = ccv(&[
        "verify",
        "illinois",
        "--essential-out",
        path2.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0));
    assert_eq!(text, std::fs::read_to_string(&path2).unwrap());
}

#[test]
fn essential_out_respects_equality_pruning() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("msi-essential-eq.json");
    let o = ccv(&[
        "verify",
        "msi",
        "--equality",
        "--essential-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let json = ccv_observe::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        json.get("pruning").and_then(|s| s.as_str()),
        Some("equality")
    );
    let count = json.get("count").and_then(|c| c.as_u64()).unwrap();
    let entries = json.get("essential").and_then(|e| e.as_arr()).unwrap();
    assert_eq!(entries.len() as u64, count);
}

#[test]
fn dot_file_is_written() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("illinois.dot");
    let o = ccv(&["verify", "illinois", "--dot", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0));
    let dot = std::fs::read_to_string(&path).unwrap();
    assert!(dot.starts_with("digraph"));
}

// --- Observability layer -------------------------------------------------

#[test]
fn metrics_out_writes_metrics_for_enumerate() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("enum-metrics.json");
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("metrics written to"));
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"visits\""), "{json}");
    assert!(json.contains("\"enumerate\""), "{json}");
}

#[test]
fn metrics_out_writes_metrics_for_verify() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verify-metrics.json");
    let o = ccv(&[
        "verify",
        "illinois",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"visits\": 22"), "{json}");
}

/// Validates a Chrome-trace file: parseable JSON, balanced begin/end
/// spans per (tid, name), globally monotonic timestamps, and at least
/// one complete span on every expected worker track. Returns the
/// parsed events for extra assertions.
fn check_trace_schema(path: &std::path::Path, worker_tids: &[u64]) -> ccv_observe::Json {
    let text = std::fs::read_to_string(path).unwrap();
    let json = ccv_observe::Json::parse(&text).expect("trace file is valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array")
        .to_vec();

    let mut open: std::collections::HashMap<(u64, String), i64> = std::collections::HashMap::new();
    let mut complete: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut last_ts = f64::NEG_INFINITY;
    for e in &events {
        if let Some(ts) = e.get("ts").and_then(|t| t.as_f64()) {
            assert!(ts >= last_ts, "timestamps must be monotonic in file order");
            last_ts = ts;
        }
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        if ph != "B" && ph != "E" {
            continue;
        }
        let tid = e.get("tid").and_then(|t| t.as_u64()).expect("span tid");
        let name = e.get("name").and_then(|n| n.as_str()).expect("span name");
        let depth = open.entry((tid, name.to_string())).or_insert(0);
        if ph == "B" {
            *depth += 1;
        } else {
            *depth -= 1;
            assert!(*depth >= 0, "span end without begin: tid={tid} {name}");
            *complete.entry(tid).or_insert(0) += 1;
        }
    }
    for (key, depth) in &open {
        assert_eq!(*depth, 0, "unbalanced span {key:?}");
    }
    for tid in worker_tids {
        assert!(
            complete.get(tid).copied().unwrap_or(0) >= 1,
            "no complete span on worker track tid={tid}"
        );
    }
    json
}

#[test]
fn trace_out_writes_a_valid_chrome_trace_per_worker() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("enum-trace.json");
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "6",
        "--threads",
        "2",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("trace written to"));
    // tid 0 = coordinator, tids 1..=2 = the two workers.
    let json = check_trace_schema(&path, &[0, 1, 2]);
    let events = json.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    // Counter tracks sampled at span boundaries.
    let counters: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(counters.contains(&"pending"), "{counters:?}");
    assert!(counters.contains(&"visited"), "{counters:?}");
}

#[test]
fn observability_artifacts_schema_check() {
    // The CI observability step: one run producing all three artifacts.
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("ci-trace.json");
    let metrics = dir.join("ci-metrics.json");
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "6",
        "--rule-stats",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--flight-recorder",
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    check_trace_schema(&trace, &[0]);
    // Clean run: the flight recorder must stay silent.
    assert!(!stderr(&o).contains("postmortem"), "{}", stderr(&o));

    // Rule names in the metrics must match the protocol spec's states
    // and stimulus letters.
    let mjson = ccv_observe::Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let rules = mjson.get("rules").expect("rules section");
    let shorts = ["Inv", "Shared", "Dirty", "V-Ex"];
    match rules {
        ccv_observe::Json::Obj(entries) => {
            assert!(!entries.is_empty());
            for (name, stat) in entries {
                let (state, event) = name.split_once(':').expect("STATE:EVENT rule name");
                assert!(shorts.contains(&state), "unknown state in rule {name}");
                assert!(
                    ["R", "W", "Z"].contains(&event),
                    "unknown event in rule {name}"
                );
                assert!(stat.get("firings").and_then(|f| f.as_u64()).is_some());
            }
        }
        other => panic!("rules is not an object: {other:?}"),
    }
}

#[test]
fn profile_prints_a_rule_heat_table() {
    let o = ccv(&["profile", "illinois"]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("firings"), "{out}");
    assert!(out.contains("Inv:R"), "{out}");
    assert!(out.contains("Shared:W"), "{out}");
    let total_line = out
        .lines()
        .find(|l| l.starts_with("total"))
        .expect("totals row");
    let total: u64 = total_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(total > 0);
    // Every rule row's share sums to ~100%.
    assert!(total_line.contains("100.0%"), "{total_line}");
}

#[test]
fn profile_total_firings_equal_the_rule_firings_counter() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile-metrics.json");
    let o = ccv(&[
        "profile",
        "illinois",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let total: u64 = stdout(&o)
        .lines()
        .find(|l| l.starts_with("total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    let mjson = ccv_observe::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let counter = mjson
        .get("counters")
        .and_then(|c| c.get("rule_firings"))
        .and_then(|v| v.as_u64())
        .expect("rule_firings counter");
    assert_eq!(total, counter);
}

#[test]
fn flight_recorder_dumps_a_postmortem_on_violation() {
    let o = ccv(&[
        "enumerate",
        "illinois-missing-invalidation",
        "-n",
        "3",
        "--flight-recorder",
    ]);
    assert_eq!(o.status.code(), Some(1));
    let err = stderr(&o);
    assert!(err.contains("\"ev\":\"postmortem\""), "{err}");
    assert!(err.contains("\"violation\":true"), "{err}");
    // The dump retains the violation events plus what preceded them.
    assert!(err.contains("\"ev\":\"violation\""), "{err}");
    assert!(err.contains("\"ev\":\"phase_enter\""), "{err}");
}

#[test]
fn flight_recorder_accepts_an_inline_capacity() {
    let o = ccv(&[
        "enumerate",
        "illinois-missing-invalidation",
        "-n",
        "3",
        "--flight-recorder=32",
    ]);
    assert_eq!(o.status.code(), Some(1));
    let err = stderr(&o);
    assert!(err.contains("\"retained\":32"), "{err}");
}

#[test]
fn enumerate_parallel_prints_a_worker_summary() {
    let o = ccv(&["enumerate", "illinois", "-n", "5", "--threads", "2"]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("workers: 2"), "{out}");
    assert!(out.contains("steals:"), "{out}");
    assert!(out.contains("claim races:"), "{out}");
    assert!(out.contains("worker 0:"), "{out}");
    assert!(out.contains("worker 1:"), "{out}");
}

#[test]
fn simulate_accepts_the_observability_trio() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("sim-trace.json");
    let metrics = dir.join("sim-metrics.json");
    let o = ccv(&[
        "simulate",
        "illinois",
        "--accesses",
        "2000",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    check_trace_schema(&trace, &[0]);
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"accesses\""), "{json}");
}

#[test]
fn crosscheck_trace_contains_both_legs() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("cc-trace.json");
    let o = ccv(&[
        "crosscheck",
        "illinois",
        "-n",
        "4",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let json = check_trace_schema(&trace, &[0]);
    let legs = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .unwrap()
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("B")
                && e.get("name").and_then(|n| n.as_str()) == Some("crosscheck_leg")
        })
        .count();
    assert_eq!(legs, 2, "expected the enumeration and coverage legs");
}

#[test]
fn enumerate_budget_stop_writes_checkpoint_and_exits_inconclusive() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("illinois-budget.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
        "--max-states",
        "5",
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(3), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("truncated: true"), "{out}");
    assert!(
        out.contains("inconclusive: state budget exhausted"),
        "{out}"
    );
    assert!(out.contains("checkpoint written to"), "{out}");
    assert!(ckpt.exists());
    let text = std::fs::read_to_string(&ckpt).unwrap();
    assert!(
        text.starts_with("{\"schema\":\"ccv-checkpoint-v1\""),
        "{text}"
    );
}

#[test]
fn enumerate_resume_recovers_the_uninterrupted_totals() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("illinois-resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Reference: one uninterrupted run.
    let full = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
    ]);
    assert_eq!(full.status.code(), Some(0), "{}", stderr(&full));
    let totals = stdout(&full)
        .lines()
        .find(|l| l.starts_with("distinct states:"))
        .expect("totals line")
        .to_string();

    // Leg 1: trip the budget, save a checkpoint.
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
        "--max-states",
        "5",
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(3), "{}", stderr(&o));

    // Leg 2: resume with no budget; totals must match the reference.
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("resuming from"), "{out}");
    assert!(
        out.contains(&totals),
        "resumed totals differ:\n{out}\nvs\n{totals}"
    );
}

#[test]
fn enumerate_resume_rejects_a_mismatched_protocol() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("illinois-mismatch.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
        "--max-states",
        "5",
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(3), "{}", stderr(&o));

    let o = ccv(&[
        "enumerate",
        "berkeley",
        "-n",
        "4",
        "--exact",
        "--threads",
        "1",
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(2), "{}", stdout(&o));
    assert!(stderr(&o).contains("checkpoint"), "{}", stderr(&o));
}

#[test]
fn enumerate_worker_panic_reports_inconclusive_without_hanging() {
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--exact",
        "--threads",
        "2",
        "--inject-panic",
        "3",
    ]);
    assert_eq!(o.status.code(), Some(3), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("worker thread panicked"), "{out}");
    assert!(out.contains("injected worker fault"), "{out}");
}

#[test]
fn spill_with_explicit_threads_is_rejected_up_front() {
    let dir = std::env::temp_dir().join("ccv-cli-spill-conflict");
    let _ = std::fs::remove_dir_all(&dir);
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--spill-dir",
        dir.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_eq!(o.status.code(), Some(2), "{}", stdout(&o));
    assert!(stderr(&o).contains("sequential"), "{}", stderr(&o));
    assert!(!dir.exists(), "rejected before any spill file is created");
}

#[test]
fn spill_with_auto_threads_warns_and_runs_sequentially() {
    let dir = std::env::temp_dir().join(format!("ccv-cli-spill-warn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "4",
        "--spill-dir",
        dir.to_str().unwrap(),
        "--spill-threshold",
        "256",
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(
        out.contains("warning: --spill-dir forces a sequential run"),
        "{out}"
    );
    assert!(out.contains("threads=1"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn split_protocols_verify_and_crosscheck_from_the_library() {
    for name in ["split-msi", "split-mesi"] {
        let o = ccv(&["verify", name]);
        assert_eq!(o.status.code(), Some(0), "{name}: {}", stderr(&o));
        assert!(stdout(&o).contains("VERIFIED"), "{name}");
        let o = ccv(&["crosscheck", name, "-n", "2"]);
        assert_eq!(o.status.code(), Some(0), "{name}: {}", stderr(&o));
        assert!(stdout(&o).contains("Theorem 1 holds"), "{name}");
    }
}

#[test]
fn split_corpus_files_verify_through_the_loader() {
    let root = env!("CARGO_MANIFEST_DIR");
    for file in ["split-msi.ccv", "split-mesi.ccv"] {
        let path = format!("{root}/../../protocols/{file}");
        let o = ccv(&["verify", &path]);
        assert_eq!(o.status.code(), Some(0), "{file}: {}", stderr(&o));
        assert!(stdout(&o).contains("VERIFIED"), "{file}");
    }
}

#[test]
fn split_mutants_are_caught_with_a_concrete_interleaving() {
    for name in ["split-msi-upgrade-race-lost", "split-msi-ignores-readx"] {
        let o = ccv(&["verify", name]);
        assert_eq!(o.status.code(), Some(1), "{name}: {}", stderr(&o));
        assert!(stdout(&o).contains("ERRONEOUS"), "{name}");
        let o = ccv(&["witness", name]);
        assert_eq!(o.status.code(), Some(1), "{name}: {}", stderr(&o));
        let out = stdout(&o);
        assert!(
            out.contains("completes its pending bus transaction"),
            "{name}: the scenario must show a completion phase\n{out}"
        );
        assert!(
            out.contains("witness with 2 caches"),
            "{name}: interleaving bugs need two processors\n{out}"
        );
    }
}

#[test]
fn simulate_rejects_split_protocols_cleanly() {
    let o = ccv(&["simulate", "split-msi", "--accesses", "10"]);
    assert_eq!(o.status.code(), Some(2), "{}", stdout(&o));
    let err = stderr(&o);
    assert!(err.contains("transient"), "{err}");
    assert!(err.contains("atomic bus"), "{err}");
}
