//! End-to-end tests of the `ccv` binary: exit codes, output shape, and
//! file-based workflows, via `CARGO_BIN_EXE_ccv`.

use std::process::{Command, Output};

fn ccv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccv"))
        .args(args)
        .output()
        .expect("spawn ccv")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let o = ccv(&[]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("usage:"));
}

#[test]
fn help_exits_zero() {
    let o = ccv(&["help"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("ccv verify"));
}

#[test]
fn unknown_command_exits_2() {
    let o = ccv(&["frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn list_shows_protocols_and_mutants() {
    let o = ccv(&["list"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    for name in ["illinois", "dragon", "moesi", "illinois-missing-writeback"] {
        assert!(out.contains(name), "missing {name}:\n{out}");
    }
}

#[test]
fn verify_correct_protocol_exits_zero() {
    let o = ccv(&["verify", "illinois"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("VERIFIED"));
    assert!(out.contains("5 essential states"));
    assert!(out.contains("(Shared+, Inv*)"));
}

#[test]
fn verify_buggy_protocol_exits_one_with_counterexample() {
    let o = ccv(&["verify", "illinois-missing-invalidation"]);
    assert_eq!(o.status.code(), Some(1));
    let out = stdout(&o);
    assert!(out.contains("ERRONEOUS"));
    assert!(out.contains("path :"));
    assert!(out.contains("-->"));
}

#[test]
fn verify_unknown_protocol_exits_2() {
    let o = ccv(&["verify", "nonesuch"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("unknown protocol"));
}

#[test]
fn verify_with_trace_prints_the_expansion() {
    let o = ccv(&["verify", "illinois", "--trace"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("trace:"));
    assert!(stdout(&o).contains("[New]") || stdout(&o).contains("[Contained]"));
}

#[test]
fn graph_emits_dot() {
    let o = ccv(&["graph", "msi"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.starts_with("digraph"));
    assert!(out.contains("->"));
}

#[test]
fn export_then_verify_file_roundtrip() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exported.ccv");

    let o = ccv(&["export", "berkeley"]);
    assert_eq!(o.status.code(), Some(0));
    std::fs::write(&path, o.stdout).unwrap();

    let o = ccv(&["verify", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("VERIFIED"));
}

#[test]
fn verify_rejects_malformed_file_with_position() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.ccv");
    std::fs::write(&path, "protocol Broken {\n  state Invalid invalid\n}").unwrap();
    let o = ccv(&["verify", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("broken.ccv:3"), "{}", stderr(&o));
}

#[test]
fn enumerate_reports_distinct_states() {
    let o = ccv(&["enumerate", "illinois", "-n", "3", "--exact"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("distinct states: 14"), "{}", stdout(&o));
}

#[test]
fn enumerate_threads_zero_resolves_to_available_cores() {
    let o = ccv(&[
        "enumerate",
        "illinois",
        "-n",
        "3",
        "--exact",
        "--threads",
        "0",
    ]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    assert!(
        out.contains(&format!("threads={cores} (auto)")),
        "expected auto-resolved thread count {cores}:\n{out}"
    );
    // The engine choice must not change the counts.
    assert!(out.contains("distinct states: 14"), "{out}");
}

#[test]
fn enumerate_explicit_thread_count_is_reported_verbatim() {
    let o = ccv(&["enumerate", "illinois", "-n", "3", "--threads", "2"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("threads=2"), "{out}");
    assert!(!out.contains("(auto)"), "{out}");
}

#[test]
fn crosscheck_confirms_theorem_1() {
    let o = ccv(&["crosscheck", "dragon", "-n", "3"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("Theorem 1 holds"));
}

#[test]
fn simulate_reports_coherence() {
    let o = ccv(&[
        "simulate",
        "moesi",
        "--workload",
        "migratory",
        "--accesses",
        "5000",
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("coherent"));
}

#[test]
fn simulate_buggy_protocol_exits_one() {
    let o = ccv(&[
        "simulate",
        "dragon-missing-update",
        "--workload",
        "uniform",
        "--accesses",
        "5000",
    ]);
    assert_eq!(o.status.code(), Some(1));
    assert!(stdout(&o).contains("INCOHERENT"));
}

#[test]
fn simulate_from_trace_file() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.trace");
    std::fs::write(&path, "P0 W 1\nP1 R 1\nP1 W 1\nP0 R 1\n").unwrap();
    let o = ccv(&[
        "simulate",
        "illinois",
        "--trace-file",
        path.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("coherent"));
}

#[test]
fn witness_prints_a_scenario_for_mutants() {
    let o = ccv(&["witness", "illinois-missing-writeback"]);
    assert_eq!(o.status.code(), Some(1), "witness found -> failure status");
    let out = stdout(&o);
    assert!(out.contains("witness with"), "{out}");
    assert!(out.contains("P0"), "{out}");
}

#[test]
fn witness_on_correct_protocol_exits_zero() {
    let o = ccv(&["witness", "msi", "-n", "3"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("no violation scenario"));
}

#[test]
fn compare_reports_identical_skeletons() {
    let o = ccv(&["compare", "msi", "synapse"]);
    assert_eq!(o.status.code(), Some(0));
    assert!(stdout(&o).contains("IDENTICAL"));
}

#[test]
fn describe_prints_tables() {
    let o = ccv(&["describe", "firefly"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("protocol Firefly"));
    assert!(out.contains("snoop reactions:"));
}

#[test]
fn subcommand_help_lists_its_options() {
    let o = ccv(&["verify", "--help"]);
    assert_eq!(o.status.code(), Some(0));
    let out = stdout(&o);
    assert!(out.contains("usage:"), "{out}");
    assert!(out.contains("--metrics"), "{out}");
    assert!(out.contains("--progress"), "{out}");
    assert!(out.contains("<protocol>"), "{out}");
}

#[test]
fn unknown_option_is_a_positioned_usage_error() {
    let o = ccv(&["verify", "illinois", "--frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    let err = stderr(&o);
    assert!(err.contains("--frobnicate"), "{err}");
    assert!(err.contains("argument 2"), "{err}");
    assert!(err.contains("ccv verify --help"), "{err}");
}

#[test]
fn option_missing_its_value_is_reported() {
    let o = ccv(&["verify", "illinois", "--dot"]);
    assert_eq!(o.status.code(), Some(2));
    assert!(stderr(&o).contains("needs a FILE value"), "{}", stderr(&o));
}

#[test]
fn metrics_file_reports_the_papers_numbers() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let o = ccv(&["verify", "illinois", "--metrics", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    assert!(stdout(&o).contains("metrics written to"));
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"visits\": 22"), "{json}");
    assert!(json.contains("\"essential_states\": 5"), "{json}");
    assert!(json.contains("\"wall_ms\""), "{json}");
    assert!(json.contains("\"expand\""), "{json}");
}

#[test]
fn progress_streams_ndjson_to_stderr() {
    let o = ccv(&["verify", "illinois", "--progress"]);
    assert_eq!(o.status.code(), Some(0));
    let err = stderr(&o);
    assert!(err.contains("\"ev\""), "{err}");
    assert!(err.contains("\"phase_enter\""), "{err}");
    assert!(err.contains("\"expand\""), "{err}");
}

#[test]
fn dot_file_is_written() {
    let dir = std::env::temp_dir().join("ccv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("illinois.dot");
    let o = ccv(&["verify", "illinois", "--dot", path.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(0));
    let dot = std::fs::read_to_string(&path).unwrap();
    assert!(dot.starts_with("digraph"));
}
