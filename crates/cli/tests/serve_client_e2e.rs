//! End-to-end daemon/client drills over a real loopback socket and
//! the real `ccv` binary: verdict-cache persistence across a SIGTERM
//! restart, and the client's retry loop against injected socket
//! faults. Unix-only — the drills steer the daemon with signals.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ccv")
}

/// A running `ccv serve` plus the address it bound. Dropping it
/// SIGKILLs the daemon so a failed test never leaks a process.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ccv serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read serve banner");
            assert!(n > 0, "serve exited before announcing its address");
            if let Some(rest) = line.strip_prefix("ccv serve listening on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address on banner")
                    .to_string();
            }
        };
        Daemon {
            child,
            stdout,
            addr,
        }
    }

    /// Reads daemon stdout until `needle` appears (bounded by the
    /// lines the daemon actually wrote — used right after start).
    fn expect_line(&mut self, needle: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.stdout.read_line(&mut line).expect("read serve stdout");
            assert!(n > 0, "serve stdout closed before '{needle}' appeared");
            if line.contains(needle) {
                return line.trim_end().to_string();
            }
        }
    }

    /// SIGTERM, then wait for the graceful drain to finish.
    fn terminate(mut self) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "serve exited {status} after SIGTERM");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("serve did not drain within 10s of SIGTERM");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn client(addr: &str, extra: &[&str]) -> Output {
    Command::new(bin())
        .args(["client", "illinois", "--addr", addr, "--backoff", "5"])
        .args(extra)
        .output()
        .expect("run ccv client")
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Warm the cache, SIGTERM the daemon, restart on the same cache
/// directory: the restored entry must replay byte-identically.
#[test]
fn verdict_cache_survives_a_sigterm_restart_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ccv-e2e-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();

    let daemon = Daemon::start(&["--cache-dir", &dir_arg]);
    let first = client(&daemon.addr, &[]);
    assert!(first.status.success(), "first run: {}", text(&first.stderr));
    let body = text(&first.stdout);
    assert!(body.contains("\"verdict\":\"VERIFIED\""), "{body}");
    daemon.terminate();

    let mut revived = Daemon::start(&["--cache-dir", &dir_arg]);
    let restored = revived.expect_line("restored");
    assert!(
        restored.contains("1 entry restored, 0 quarantined"),
        "{restored}"
    );
    let replay = client(&revived.addr, &[]);
    assert!(replay.status.success(), "replay: {}", text(&replay.stderr));
    assert_eq!(text(&replay.stdout), body, "replay is not byte-identical");
    assert!(
        text(&replay.stderr).contains("verdict cache"),
        "replay must announce the cache hit: {}",
        text(&replay.stderr)
    );
    revived.terminate();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Each wire dialect against a daemon that drops its first response
/// on the floor: the client's retry loop must converge on the true
/// verdict, and the daemon must outlive its own fault.
#[test]
fn client_retries_through_injected_response_drops() {
    let mut bodies = Vec::new();
    for dialect in [&[][..], &["--http"][..]] {
        let daemon = Daemon::start(&["--fault-plan", "serve.response:disconnect@1"]);
        let out = client(&daemon.addr, dialect);
        assert!(out.status.success(), "{dialect:?}: {}", text(&out.stderr));
        assert!(
            text(&out.stderr).contains("retrying identical request"),
            "{dialect:?}: first attempt should have been dropped: {}",
            text(&out.stderr)
        );
        bodies.push(text(&out.stdout));
        daemon.terminate();
    }
    assert_eq!(
        bodies[0], bodies[1],
        "both dialects must deliver the same body"
    );
}

/// Client-side injected faults: a connect that fails once must be
/// retried and succeed; a server that is simply absent must end in a
/// clean, prompt error — not a hang.
#[test]
fn client_side_faults_retry_and_absent_servers_fail_cleanly() {
    let daemon = Daemon::start(&[]);
    let out = client(&daemon.addr, &["--fault-plan", "client.connect:io@1"]);
    assert!(out.status.success(), "{}", text(&out.stderr));
    assert!(
        text(&out.stderr).contains("injected fault"),
        "{}",
        text(&out.stderr)
    );
    daemon.terminate();

    // Port reserved then closed: nothing listens there any more.
    let gone = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().to_string()
    };
    let out = client(&gone, &["--retries", "2", "--timeout", "2"]);
    assert!(!out.status.success());
    let err = text(&out.stderr);
    assert!(err.contains("giving up"), "{err}");
    assert!(err.contains("after 3 attempts"), "{err}");
}
