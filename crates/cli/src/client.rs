//! `ccv client` — a resilient client for the `ccv serve` daemon.
//!
//! Builds a `ccv-request-v1` document from the command line and
//! submits it over the daemon's NDJSON line protocol (default) or its
//! HTTP/1.1 endpoint (`--http`). Transient failures — a refused or
//! dropped connection, a BUSY rejection, a response cut off
//! mid-stream — are retried with bounded exponential backoff plus
//! jitter, honouring the server's `retry_after_ms` hint when one is
//! present. Retrying is safe: the server keys its verdict cache by
//! the request's canonical fingerprint, so resubmitting the same
//! document is idempotent — a request that actually completed before
//! the response was lost replays byte-identically from the cache.
//!
//! Terminal rejections (`bad_request`, `bad_protocol`, `unsupported`,
//! `internal`) are never retried: resubmitting an invalid request
//! cannot fix it. The final response body prints to stdout verbatim;
//! retry chatter goes to stderr. The exit code mirrors the local
//! engine commands: 0 verified / clean, 1 violation found, 2 errors,
//! 3 inconclusive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::args::{ArgSpec, Flag, Positional};
use crate::commands::{parse_or_help, CmdResult, CmdStatus};
use ccv_core::{ProtocolSource, Request};
use ccv_observe::{FaultHandle, FaultKind, Json};

const CLIENT_SPEC: ArgSpec = ArgSpec {
    cmd: "client",
    summary: "submit a request to a ccv serve daemon, retrying transient failures",
    positionals: &[Positional {
        name: "protocol",
        required: true,
        help: "library protocol name or path to a .ccv file (sent as DSL text)",
    }],
    flags: &[
        Flag {
            name: "--addr",
            value: Some("ADDR"),
            help: "server address (default 127.0.0.1:7878)",
        },
        Flag {
            name: "--action",
            value: Some("A"),
            help: "verify, enumerate or crosscheck (default verify)",
        },
        Flag {
            name: "-n",
            value: Some("N"),
            help: "cache count for enumerate/crosscheck (default 4)",
        },
        Flag {
            name: "--exact",
            value: None,
            help: "exact-duplicate pruning for enumerate",
        },
        Flag {
            name: "--threads",
            value: Some("T"),
            help: "worker threads requested of the server",
        },
        Flag {
            name: "--deadline",
            value: Some("SECS"),
            help: "per-request deadline requested of the server",
        },
        Flag {
            name: "--http",
            value: None,
            help: "submit over HTTP POST /v1/requests instead of NDJSON",
        },
        Flag {
            name: "--retries",
            value: Some("N"),
            help: "retries after a transient failure (default 4)",
        },
        Flag {
            name: "--backoff",
            value: Some("MS"),
            help: "base backoff in milliseconds, doubled per retry with jitter (default 100)",
        },
        Flag {
            name: "--timeout",
            value: Some("SECS"),
            help: "connect/read timeout per attempt (default 10)",
        },
        Flag {
            name: "--fault-plan",
            value: Some("SPEC"),
            help: "client-side fault injection (sites client.connect, client.read)",
        },
    ],
};

/// One received response: the raw body line plus whether the server
/// answered it from its verdict cache.
struct Reply {
    raw: String,
    cached: bool,
}

/// A transient failure worth retrying: what happened, plus the
/// server's backoff hint when it gave one.
struct Transient {
    what: String,
    retry_after_ms: Option<u64>,
}

impl Transient {
    fn new(what: impl Into<String>) -> Transient {
        Transient {
            what: what.into(),
            retry_after_ms: None,
        }
    }
}

/// `ccv client <protocol> [--addr ADDR] [--action A] [-n N] [--http]
/// [--retries N] [--backoff MS] [--timeout SECS] [--fault-plan SPEC]`
pub fn client(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&CLIENT_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let target = p.require_pos(0, "protocol name")?;
    // A .ccv file is read locally and shipped as DSL text, so the
    // server never needs filesystem access; a bare name resolves in
    // the server's own library.
    let source = if target.ends_with(".ccv") || std::path::Path::new(target).is_file() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        ProtocolSource::Dsl(text)
    } else {
        ProtocolSource::Name(target.to_string())
    };
    let action: String = p.value_or("--action", "verify".into())?;
    let n: usize = p.value_or("-n", 4)?;
    let mut req = match action.as_str() {
        "verify" => Request::verify(source),
        "enumerate" => Request::enumerate(source, n),
        "crosscheck" => Request::crosscheck(source, n),
        other => {
            return Err(format!(
                "unknown action '{other}' (verify, enumerate, crosscheck)"
            ))
        }
    };
    req.options.exact = p.flag("--exact");
    if let Some(t) = p.value::<usize>("--threads")? {
        req.options.threads = t;
    }
    if let Some(secs) = p.value::<f64>("--deadline")? {
        req.options.deadline = Some(Duration::from_secs_f64(secs));
    }
    let addr: String = p.value_or("--addr", "127.0.0.1:7878".into())?;
    let http = p.flag("--http");
    let retries: u32 = p.value_or("--retries", 4)?;
    let backoff_ms: u64 = p.value_or("--backoff", 100)?;
    let timeout = Duration::from_secs_f64(p.value_or("--timeout", 10.0)?);
    let fault = match p.value::<String>("--fault-plan")? {
        Some(spec) => FaultHandle::from_spec(&spec).map_err(|e| format!("--fault-plan: {e}"))?,
        None => FaultHandle::disabled(),
    };
    let line = req.to_json().render_compact();
    // The server cuts every run at its deadline (120s ceiling by
    // default) and then answers, so an attempt that outlives the
    // requested deadline plus the I/O timeout is stalled — even if
    // heartbeat pings are still arriving — and is abandoned as
    // transient rather than waited on forever.
    let response_cap = req
        .options
        .deadline
        .unwrap_or(Duration::from_secs(120))
        .saturating_add(timeout);

    let mut jitter: u64 = 0x9e3779b97f4a7c15 ^ u64::from(std::process::id());
    for attempt in 0..=retries {
        let sent = if http {
            submit_http(&addr, &line, timeout, response_cap, &fault)
        } else {
            submit_ndjson(&addr, &line, timeout, response_cap, &fault)
        };
        let transient = match sent.and_then(classify) {
            Ok((reply, status)) => {
                if reply.cached {
                    eprintln!("served from the verdict cache (byte-identical replay)");
                }
                println!("{}", reply.raw);
                return Ok(status);
            }
            Err(Outcome::Terminal(message)) => return Err(message),
            Err(Outcome::Transient(t)) => t,
        };
        if attempt == retries {
            return Err(format!(
                "{} after {} attempt{}; giving up",
                transient.what,
                retries + 1,
                if retries == 0 { "" } else { "s" }
            ));
        }
        let wait = backoff(attempt, backoff_ms, transient.retry_after_ms, &mut jitter);
        eprintln!(
            "attempt {}/{} failed: {}; retrying identical request in {}ms \
             (idempotent by fingerprint)",
            attempt + 1,
            retries + 1,
            transient.what,
            wait.as_millis()
        );
        std::thread::sleep(wait);
    }
    unreachable!("loop returns on success, terminal error or exhausted retries");
}

/// Why an attempt did not produce a final status.
enum Outcome {
    /// Retrying cannot help (malformed request, server bug).
    Terminal(String),
    /// Worth another attempt after backoff.
    Transient(Transient),
}

/// Bounded exponential backoff with xorshift jitter: the delay doubles
/// per attempt from `base_ms`, capped at 10s, jittered into
/// `[delay/2, delay)` so synchronized clients spread out, and floored
/// at the server's `retry_after_ms` hint when present.
fn backoff(attempt: u32, base_ms: u64, hint_ms: Option<u64>, state: &mut u64) -> Duration {
    let ceiling = base_ms
        .max(1)
        .saturating_mul(1 << attempt.min(16))
        .min(10_000);
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let half = (ceiling / 2).max(1);
    let jittered = half + *state % half;
    Duration::from_millis(jittered.max(hint_ms.unwrap_or(0)))
}

/// Decides what a received body means: a final status, a terminal
/// rejection, or a BUSY rejection worth retrying.
fn classify(reply: Reply) -> Result<(Reply, CmdStatus), Outcome> {
    let body = Json::parse(&reply.raw).map_err(|e| {
        Outcome::Transient(Transient::new(format!("response body is not JSON ({e})")))
    })?;
    if let Some(err) = body.get("error") {
        let code = err.get("code").and_then(Json::as_str).unwrap_or("internal");
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("(no message)");
        if code == "busy" {
            let mut t = Transient::new(format!("server busy: {message}"));
            t.retry_after_ms = err.get("retry_after_ms").and_then(Json::as_u64);
            return Err(Outcome::Transient(t));
        }
        return Err(Outcome::Terminal(format!(
            "server rejected request ({code}): {message}"
        )));
    }
    let status = status_of(&body);
    Ok((reply, status))
}

/// Maps a successful response body onto the standard exit status.
fn status_of(body: &Json) -> CmdStatus {
    if body.get("stop").is_some() {
        return CmdStatus::Inconclusive;
    }
    if let Some(verdict) = body.get("verdict").and_then(Json::as_str) {
        return match verdict {
            "VERIFIED" => CmdStatus::Success,
            "INCONCLUSIVE" => CmdStatus::Inconclusive,
            _ => CmdStatus::Failure,
        };
    }
    if let Some(complete) = body.get("complete").and_then(Json::as_bool) {
        return CmdStatus::from_ok(complete);
    }
    let clean = body
        .get("errors")
        .is_none_or(|e| matches!(e, Json::Arr(v) if v.is_empty()));
    CmdStatus::from_ok(clean)
}

/// Applies the client-side fault plan at `site`. `Err` simulates the
/// corresponding network failure (connect refused / mid-stream drop);
/// a slow fault stalls like a congested link.
fn client_fault(fault: &FaultHandle, site: &str) -> Result<(), Transient> {
    match fault.fire(site) {
        Some(FaultKind::IoError | FaultKind::Disconnect) => {
            Err(Transient::new(format!("injected fault: {site} failed")))
        }
        Some(FaultKind::SlowRead) => {
            if let Some(inj) = fault.injector() {
                std::thread::sleep(Duration::from_millis(inj.slow_millis()));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Resolves `addr` and opens a TCP connection under `timeout`.
fn connect(addr: &str, timeout: Duration, fault: &FaultHandle) -> Result<TcpStream, Transient> {
    client_fault(fault, "client.connect")?;
    let resolved: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| Transient::new(format!("resolving {addr}: {e}")))?
        .collect();
    let target = resolved
        .first()
        .ok_or_else(|| Transient::new(format!("{addr} resolves to no address")))?;
    let stream = TcpStream::connect_timeout(target, timeout)
        .map_err(|e| Transient::new(format!("connecting to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    Ok(stream)
}

/// One NDJSON attempt: write the request line, then scan the event
/// stream (pings, progress) for the final response envelope. EOF
/// before the envelope is a mid-stream disconnect — transient. The
/// socket read timeout catches a silent server; `cap` catches a
/// zombie one whose heartbeats keep arriving while the response
/// never does (pings reset the read timeout, so on their own they
/// would let a stalled attempt wait forever).
fn submit_ndjson(
    addr: &str,
    line: &str,
    timeout: Duration,
    cap: Duration,
    fault: &FaultHandle,
) -> Result<Reply, Outcome> {
    let mut stream = connect(addr, timeout, fault).map_err(Outcome::Transient)?;
    stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .and_then(|_| stream.flush())
        .map_err(|e| Outcome::Transient(Transient::new(format!("sending request: {e}"))))?;
    let started = Instant::now();
    let reader = BufReader::new(stream);
    for event in reader.lines() {
        if started.elapsed() > cap {
            return Err(Outcome::Transient(Transient::new(format!(
                "no response within {}s (server alive but stalled)",
                cap.as_secs()
            ))));
        }
        client_fault(fault, "client.read").map_err(Outcome::Transient)?;
        let event = event
            .map_err(|e| Outcome::Transient(Transient::new(format!("reading stream: {e}"))))?;
        let Ok(doc) = Json::parse(&event) else {
            continue; // torn mid-stream line; the envelope decides
        };
        if doc.get("ev").and_then(Json::as_str) == Some("response") {
            let cached = doc.get("cached").and_then(Json::as_bool).unwrap_or(false);
            let body = doc
                .get("body")
                .ok_or_else(|| Outcome::Transient(Transient::new("response envelope has no body")))?
                .render_compact();
            return Ok(Reply { raw: body, cached });
        }
    }
    Err(Outcome::Transient(Transient::new(
        "connection closed before a response arrived",
    )))
}

/// One HTTP attempt: POST the request, read to EOF, split the head
/// off and honour `retry-after` on 429. HTTP has no heartbeats: the
/// whole response arrives in one burst after the run finishes, so
/// the read timeout is widened to `cap` — the connect and write
/// still use the tight `timeout`.
fn submit_http(
    addr: &str,
    line: &str,
    timeout: Duration,
    cap: Duration,
    fault: &FaultHandle,
) -> Result<Reply, Outcome> {
    let mut stream = connect(addr, timeout, fault).map_err(Outcome::Transient)?;
    let _ = stream.set_read_timeout(Some(cap));
    let head = format!(
        "POST /v1/requests HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        line.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(line.as_bytes()))
        .and_then(|_| stream.flush())
        .map_err(|e| Outcome::Transient(Transient::new(format!("sending request: {e}"))))?;
    client_fault(fault, "client.read").map_err(Outcome::Transient)?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| Outcome::Transient(Transient::new(format!("reading response: {e}"))))?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(Outcome::Transient(Transient::new(
            "connection closed before a response arrived",
        )));
    };
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|s| s.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let mut cached = false;
    let mut retry_after_ms = None;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name == "x-ccv-cache" {
            cached = value == "hit";
        } else if name == "retry-after" {
            retry_after_ms = value.parse::<u64>().ok().map(|s| s * 1000);
        }
    }
    if status == 429 {
        let mut t = Transient::new("server busy (HTTP 429)");
        t.retry_after_ms = retry_after_ms;
        return Err(Outcome::Transient(t));
    }
    Ok(Reply {
        raw: body.to_string(),
        cached,
    })
}
