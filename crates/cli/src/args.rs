//! Typed argument parsing for the `ccv` binary.
//!
//! Each subcommand declares a static [`ArgSpec`] — its positional
//! arguments and option flags, with help text — and parses its raw
//! argument slice into a [`ParsedArgs`]. The parser gives:
//!
//! * **positioned errors** — a bad token is reported with its argument
//!   position and a pointer to the subcommand's `--help`;
//! * **typed access** — option values parse through [`FromStr`] at the
//!   call site (`p.value::<usize>("-n")`), with uniform error text;
//! * **generated help** — `ccv <cmd> --help` renders the spec, so the
//!   usage text can never drift from what the parser accepts.
//!
//! No external dependencies; the whole grammar is "positionals plus
//! `--flag [VALUE]` options", which is all `ccv` needs.

use std::fmt::Write as _;
use std::str::FromStr;

/// One option flag accepted by a subcommand.
pub struct Flag {
    /// The literal option token, e.g. `"--dot"` or `"-n"`.
    pub name: &'static str,
    /// Metavariable for the value, or `None` for a boolean switch.
    ///
    /// A metavariable starting with `[` (e.g. `"[N]"`) marks the value
    /// *optional*: the bare flag parses as a switch, and a value can
    /// only be attached inline as `--flag=value` (never as the next
    /// token, which stays available as a positional).
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// One positional argument accepted by a subcommand.
pub struct Positional {
    /// Metavariable, e.g. `"protocol"`.
    pub name: &'static str,
    /// Whether omitting it is a usage error.
    pub required: bool,
    /// One-line help text.
    pub help: &'static str,
}

/// The argument grammar of one subcommand.
pub struct ArgSpec {
    /// Subcommand name as typed on the command line.
    pub cmd: &'static str,
    /// One-line description, shown at the top of `--help`.
    pub summary: &'static str,
    /// Positional arguments, in order.
    pub positionals: &'static [Positional],
    /// Option flags.
    pub flags: &'static [Flag],
}

/// Parsed arguments of one subcommand invocation.
#[derive(Debug)]
pub struct ParsedArgs {
    /// True iff `--help`/`-h` appeared; the command should print
    /// [`ArgSpec::help`] and succeed without running.
    pub help: bool,
    positionals: Vec<String>,
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
}

impl ArgSpec {
    /// The one-line usage string, derived from the spec.
    pub fn usage(&self) -> String {
        let mut s = format!("ccv {}", self.cmd);
        for p in self.positionals {
            if p.required {
                let _ = write!(s, " <{}>", p.name);
            } else {
                let _ = write!(s, " [{}]", p.name);
            }
        }
        for f in self.flags {
            match f.value {
                Some(v) => {
                    let _ = write!(s, " [{} {v}]", f.name);
                }
                None => {
                    let _ = write!(s, " [{}]", f.name);
                }
            }
        }
        s
    }

    /// The full `--help` text.
    pub fn help(&self) -> String {
        let mut s = format!("{}\n\nusage:\n  {}\n", self.summary, self.usage());
        if !self.positionals.is_empty() {
            let _ = write!(s, "\narguments:\n");
            for p in self.positionals {
                let _ = writeln!(s, "  <{:<18} {}", format!("{}>", p.name), p.help);
            }
        }
        if !self.flags.is_empty() {
            let _ = write!(s, "\noptions:\n");
            for f in self.flags {
                let head = match f.value {
                    Some(v) => format!("{} {v}", f.name),
                    None => f.name.to_string(),
                };
                let _ = writeln!(s, "  {head:<19} {}", f.help);
            }
        }
        let _ = writeln!(s, "  {:<19} show this help", "--help");
        s
    }

    fn find_flag(&self, token: &str) -> Option<&Flag> {
        self.flags.iter().find(|f| f.name == token)
    }

    /// Parses the raw argument slice (everything after the subcommand
    /// name). Errors carry the 1-based argument position.
    pub fn parse(&self, args: &[String]) -> Result<ParsedArgs, String> {
        let mut p = ParsedArgs {
            help: false,
            positionals: Vec::new(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let tok = &args[i];
            let at = i + 1;
            // `--flag=value` splits into the flag and an inline value.
            let (name, inline) = match tok.split_once('=') {
                Some((n, v)) if n.starts_with("--") => (n, Some(v)),
                _ => (tok.as_str(), None),
            };
            if tok == "--help" || tok == "-h" {
                p.help = true;
            } else if let Some(f) = self.find_flag(name) {
                match (f.value, inline) {
                    (Some(_), Some(v)) => p.values.push((f.name, v.to_string())),
                    (Some(mv), None) if mv.starts_with('[') => {
                        // Optional value, not supplied: plain switch.
                        p.switches.push(f.name);
                    }
                    (Some(mv), None) => {
                        let raw = args.get(i + 1).ok_or_else(|| {
                            format!("option {} (argument {at}) needs a {mv} value", f.name)
                        })?;
                        p.values.push((f.name, raw.clone()));
                        i += 1;
                    }
                    (None, Some(_)) => {
                        return Err(format!(
                            "option {} (argument {at}) does not take a value",
                            f.name
                        ));
                    }
                    (None, None) => p.switches.push(f.name),
                }
            } else if tok.starts_with('-')
                && tok.len() > 1
                && !tok[1..].starts_with(|c: char| c.is_ascii_digit())
            {
                return Err(format!(
                    "unknown option '{tok}' (argument {at} to `ccv {}`); run `ccv {} --help`",
                    self.cmd, self.cmd
                ));
            } else if p.positionals.len() < self.positionals.len() {
                p.positionals.push(tok.clone());
            } else {
                return Err(format!(
                    "unexpected argument '{tok}' (argument {at}); `ccv {}` takes {} positional argument{}",
                    self.cmd,
                    self.positionals.len(),
                    if self.positionals.len() == 1 { "" } else { "s" }
                ));
            }
            i += 1;
        }
        if !p.help {
            for (idx, spec) in self.positionals.iter().enumerate() {
                if spec.required && p.positionals.len() <= idx {
                    return Err(format!(
                        "missing required <{}> argument; run `ccv {} --help`",
                        spec.name, self.cmd
                    ));
                }
            }
        }
        Ok(p)
    }
}

impl ParsedArgs {
    /// True iff the boolean switch `name` appeared.
    pub fn flag(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The value of option `name`, parsed as `T` (last occurrence
    /// wins), or `None` if absent.
    pub fn value<T: FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.iter().rev().find(|(n, _)| *n == name) {
            Some((_, raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value '{raw}' for {name}")),
            None => Ok(None),
        }
    }

    /// The value of option `name`, or `default` if absent.
    pub fn value_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.value(name)?.unwrap_or(default))
    }

    /// The `i`-th positional argument, if given.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// The `i`-th positional argument; an error naming `what` if absent.
    pub fn require_pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.pos(i).ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        cmd: "demo",
        summary: "a demo command",
        positionals: &[Positional {
            name: "protocol",
            required: true,
            help: "protocol name",
        }],
        flags: &[
            Flag {
                name: "--trace",
                value: None,
                help: "print the trace",
            },
            Flag {
                name: "-n",
                value: Some("N"),
                help: "cache count",
            },
        ],
    };

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_flags_and_values() {
        let p = SPEC
            .parse(&args(&["illinois", "--trace", "-n", "3"]))
            .unwrap();
        assert_eq!(p.pos(0), Some("illinois"));
        assert!(p.flag("--trace"));
        assert_eq!(p.value::<usize>("-n").unwrap(), Some(3));
        assert_eq!(p.value_or::<usize>("-n", 9).unwrap(), 3);
    }

    #[test]
    fn unknown_option_is_positioned() {
        let e = SPEC.parse(&args(&["illinois", "--bogus"])).unwrap_err();
        assert!(e.contains("--bogus"), "{e}");
        assert!(e.contains("argument 2"), "{e}");
        assert!(e.contains("--help"), "{e}");
    }

    #[test]
    fn missing_value_is_reported() {
        let e = SPEC.parse(&args(&["illinois", "-n"])).unwrap_err();
        assert!(e.contains("-n"), "{e}");
        assert!(e.contains("needs a N value"), "{e}");
    }

    #[test]
    fn missing_required_positional_is_reported() {
        let e = SPEC.parse(&args(&["--trace"])).unwrap_err();
        assert!(e.contains("<protocol>"), "{e}");
    }

    #[test]
    fn excess_positionals_are_rejected() {
        let e = SPEC.parse(&args(&["a", "b"])).unwrap_err();
        assert!(e.contains("unexpected argument 'b'"), "{e}");
    }

    #[test]
    fn bad_value_types_are_reported_at_access() {
        let p = SPEC.parse(&args(&["illinois", "-n", "lots"])).unwrap();
        let e = p.value::<usize>("-n").unwrap_err();
        assert!(e.contains("invalid value 'lots' for -n"), "{e}");
    }

    #[test]
    fn negative_numbers_are_not_flags() {
        // "-2" must parse as a (rejected) positional, not an unknown
        // option, so numeric values can be passed through.
        let e = SPEC.parse(&args(&["a", "-2"])).unwrap_err();
        assert!(e.contains("unexpected argument"), "{e}");
    }

    const OPT_SPEC: ArgSpec = ArgSpec {
        cmd: "opt",
        summary: "optional-value demo",
        positionals: &[Positional {
            name: "protocol",
            required: false,
            help: "protocol name",
        }],
        flags: &[Flag {
            name: "--flight-recorder",
            value: Some("[N]"),
            help: "ring capacity",
        }],
    };

    #[test]
    fn equals_form_attaches_a_value() {
        let p = SPEC.parse(&args(&["illinois", "-n", "3"])).unwrap();
        assert_eq!(p.value::<usize>("-n").unwrap(), Some(3));
        // Long options also accept --flag=value in one token.
        let p = OPT_SPEC.parse(&args(&["--flight-recorder=8192"])).unwrap();
        assert_eq!(p.value::<usize>("--flight-recorder").unwrap(), Some(8192));
        assert!(!p.flag("--flight-recorder"));
    }

    #[test]
    fn optional_value_flag_works_bare_and_keeps_the_next_token() {
        let p = OPT_SPEC
            .parse(&args(&["--flight-recorder", "illinois"]))
            .unwrap();
        assert!(p.flag("--flight-recorder"));
        assert_eq!(p.value::<usize>("--flight-recorder").unwrap(), None);
        // The next token was parsed as a positional, not swallowed.
        assert_eq!(p.pos(0), Some("illinois"));
    }

    #[test]
    fn switches_reject_inline_values() {
        let e = SPEC.parse(&args(&["a", "--trace=yes"])).unwrap_err();
        assert!(e.contains("does not take a value"), "{e}");
    }

    #[test]
    fn help_suppresses_required_checks() {
        let p = SPEC.parse(&args(&["--help"])).unwrap();
        assert!(p.help);
        let h = SPEC.help();
        assert!(h.contains("usage:"));
        assert!(h.contains("--trace"));
        assert!(h.contains("<protocol>"));
    }
}
