//! `ccv` — the cache-coherence verifier command line.
//!
//! ```text
//! ccv list                                 list known protocols
//! ccv describe  <protocol>                 print the FSM tables
//! ccv verify    <protocol> [--trace] [--equality] [--dot FILE]
//!                          [--metrics FILE] [--progress]
//! ccv graph     <protocol>                 print the Fig. 4 diagram as DOT
//! ccv enumerate <protocol> -n N [--exact] [--threads T]
//! ccv crosscheck <protocol> -n N           Theorem 1 check at size N
//! ccv simulate  <protocol> [--workload W] [--accesses N] [--procs P] [--seed S]
//! ```
//!
//! Exit status: 0 on success / verified, 1 on a verification failure or
//! coherence violation, 2 on usage errors.

use std::process::ExitCode;

mod args;
mod commands;
mod report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "list" => commands::list(rest),
        "check-all" => commands::check_all(rest),
        "describe" => commands::describe(rest),
        "verify" => commands::verify(rest),
        "graph" => commands::graph(rest),
        "export" => commands::export(rest),
        "compare" => commands::compare(rest),
        "witness" => commands::witness(rest),
        "recovery" => commands::recovery(rest),
        "report" => commands::report(rest),
        "enumerate" => commands::enumerate(rest),
        "crosscheck" => commands::crosscheck(rest),
        "simulate" => commands::simulate(rest),
        "profile" => commands::profile(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(true)
        }
        other => {
            eprintln!("unknown command '{other}'\n{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
