//! `ccv` — the cache-coherence verifier command line.
//!
//! ```text
//! ccv list                                 list known protocols
//! ccv describe  <protocol>                 print the FSM tables
//! ccv verify    <protocol> [--trace] [--equality] [--dot FILE]
//!                          [--metrics FILE] [--progress]
//!                          [--deadline SECS] [--max-bytes BYTES]
//! ccv graph     <protocol>                 print the Fig. 4 diagram as DOT
//! ccv enumerate <protocol> -n N [--exact] [--threads T] [--max-states N]
//!                          [--deadline SECS] [--max-bytes BYTES]
//!                          [--checkpoint-out FILE] [--resume FILE]
//! ccv crosscheck <protocol> -n N           Theorem 1 check at size N
//! ccv simulate  <protocol> [--workload W] [--accesses N] [--procs P] [--seed S]
//! ```
//!
//! Exit status: 0 on success / verified, 1 on a verification failure or
//! coherence violation, 2 on usage errors, 3 when the run stopped early
//! (budget, deadline, memory cap, Ctrl-C or a worker panic) without
//! reaching a verdict.

use std::process::ExitCode;

mod args;
mod client;
mod commands;
mod report;

/// Installs SIGINT and SIGTERM handlers that flip the process-global
/// cancel flag. Engines holding [`ccv_observe::CancelToken::global`]
/// observe it at their next poll, drain cooperatively, and render a
/// partial (INCONCLUSIVE) result instead of dying mid-search; the
/// serve daemon stops accepting and drains in-flight requests. Both
/// signals behave identically, so `kill <pid>` (a supervisor's
/// shutdown) is as graceful as Ctrl-C. The handler body is a single
/// atomic store, which is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    extern "C" fn on_signal(_sig: c_int) {
        ccv_observe::request_global_cancel();
    }
    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }
    // SAFETY: `signal` is the libc entry point; the handler performs
    // one atomic store and touches no non-reentrant state.
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(c_int) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(c_int) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    install_signal_handlers();
    // verify/enumerate/crosscheck (and the serve daemon) all run
    // through the unified Session API, whose enumeration actions
    // dispatch to the registered backend.
    ccv_enum::install_api_backend();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "list" => commands::list(rest),
        "check-all" => commands::check_all(rest),
        "describe" => commands::describe(rest),
        "verify" => commands::verify(rest),
        "graph" => commands::graph(rest),
        "export" => commands::export(rest),
        "compare" => commands::compare(rest),
        "witness" => commands::witness(rest),
        "recovery" => commands::recovery(rest),
        "report" => commands::report(rest),
        "enumerate" => commands::enumerate(rest),
        "crosscheck" => commands::crosscheck(rest),
        "serve" => commands::serve(rest),
        "client" => client::client(rest),
        "simulate" => commands::simulate(rest),
        "profile" => commands::profile(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(commands::CmdStatus::Success)
        }
        other => {
            eprintln!("unknown command '{other}'\n{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(status) => ExitCode::from(status.exit_code()),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
