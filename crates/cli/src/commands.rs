//! Command implementations for the `ccv` binary.
//!
//! Each command returns `Ok(true)` for success, `Ok(false)` for a
//! completed run with a negative result (verification failed, oracle
//! violated), and `Err(message)` for usage errors.

use ccv_core::{run_expansion, verify_with, Options, Pruning, Verdict};
use ccv_enum::{
    crosscheck as run_crosscheck, enumerate as run_enumerate, enumerate_parallel, EnumOptions,
};
use ccv_model::{protocols, ProtocolSpec};
use ccv_sim::{workload, Machine, MachineConfig, Trace, WorkloadParams};

/// Top-level usage text.
pub const USAGE: &str = "\
ccv — symbolic verification of cache coherence protocols (Pong & Dubois, SPAA'93)

usage:
  ccv list                                  list known protocols
  ccv describe   <protocol>                 print the protocol's FSM tables
  ccv check-all                             verify the whole library (CI gate)
  ccv verify     <protocol> [--trace] [--equality] [--dot FILE]
  ccv graph      <protocol>                 print the global diagram as DOT
  ccv export     <protocol>                 print the protocol as .ccv source
  ccv compare    <protocol-a> <protocol-b>  diff the global diagrams
  ccv witness    <protocol> [-n MAX]        shortest concrete violation scenario
  ccv recovery   <protocol>                 tolerated vs fatal start configurations
  ccv report     <protocol> [-o FILE]       full markdown dossier
  ccv enumerate  <protocol> -n N [--exact] [--threads T]
  ccv crosscheck <protocol> -n N            Theorem 1 check at size N
  ccv simulate   <protocol> [--workload W | --trace-file F] [--accesses N]
                 [--procs P] [--seed S]

<protocol> is a library name (msi, illinois, write-once, synapse, berkeley,
firefly, dragon, moesi, or a buggy mutant — run `ccv list`) or a path to a
.ccv protocol description file.";

type CmdResult = Result<bool, String>;

fn resolve(args: &[String]) -> Result<(ProtocolSpec, Vec<String>), String> {
    let name = args
        .first()
        .ok_or_else(|| "missing protocol name".to_string())?;
    // A path to a .ccv file takes priority over library names.
    let spec = if name.ends_with(".ccv") || std::path::Path::new(name).is_file() {
        let source = std::fs::read_to_string(name).map_err(|e| format!("reading {name}: {e}"))?;
        ccv_model::dsl::parse_protocol(&source).map_err(|e| format!("{name}:{e}"))?
    } else {
        protocols::by_name(name)
            .ok_or_else(|| format!("unknown protocol '{name}' (try `ccv list`)"))?
    };
    Ok((spec, args[1..].to_vec()))
}

/// `ccv export <protocol>`
pub fn export(args: &[String]) -> CmdResult {
    let (spec, _) = resolve(args)?;
    print!("{}", ccv_model::dsl::to_dsl(&spec));
    Ok(true)
}

/// `ccv check-all` — verify the whole library (CI entry point).
pub fn check_all() -> CmdResult {
    let mut ok = true;
    println!(
        "{:<36} {:>12} {:>10} {:>8}",
        "protocol", "verdict", "essential", "visits"
    );
    for spec in protocols::all_correct() {
        let v = verify_with(&spec, &Options::default());
        let pass = v.verdict == Verdict::Verified;
        ok &= pass;
        println!(
            "{:<36} {:>12} {:>10} {:>8}",
            spec.name(),
            v.verdict.to_string(),
            v.num_essential(),
            v.visits()
        );
    }
    for (spec, _) in protocols::all_buggy() {
        let v = verify_with(&spec, &Options::default());
        let pass = v.verdict == Verdict::Erroneous;
        ok &= pass;
        println!(
            "{:<36} {:>12} {:>10} {:>8}{}",
            spec.name(),
            v.verdict.to_string(),
            v.num_essential(),
            v.visits(),
            if pass { "" } else { "   <- MUTANT NOT CAUGHT" }
        );
    }
    println!(
        "
{}",
        if ok {
            "all verdicts as expected."
        } else {
            "UNEXPECTED VERDICTS PRESENT."
        }
    );
    Ok(ok)
}

/// `ccv witness <protocol> [-n MAX]`
pub fn witness(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let max_n: usize = opt_value(&rest, "-n")?.unwrap_or(4);
    match ccv_enum::find_violation_witness(&spec, max_n, 1 << 22) {
        Some(w) => {
            print!("{}", w.render(&spec));
            println!(
                "\nthe protocol is incoherent; scenario above is minimal for {} caches.",
                w.n
            );
            Ok(false)
        }
        None => {
            println!(
                "no violation scenario with up to {max_n} caches; `ccv verify` proves it for any number."
            );
            Ok(true)
        }
    }
}

/// `ccv report <protocol> [-o FILE]`
pub fn report(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let md = crate::report::protocol_report(&spec);
    match opt_value::<String>(&rest, "-o")? {
        Some(path) => {
            std::fs::write(&path, md).map_err(|e| format!("writing {path}: {e}"))?;
            println!("dossier written to {path}");
        }
        None => print!("{md}"),
    }
    Ok(true)
}

/// `ccv recovery <protocol>`
pub fn recovery(args: &[String]) -> CmdResult {
    let (spec, _) = resolve(args)?;
    let report = ccv_core::analyze_recovery(&spec, 200_000);
    println!(
        "protocol {}: {} structurally permissible configurations",
        spec.name(),
        report.cases.len()
    );
    let mut safe_reach = 0;
    for c in &report.cases {
        if c.tolerance == ccv_core::Tolerance::Safe && c.reachable {
            safe_reach += 1;
        }
    }
    println!("  normal operating region (reachable, safe): {safe_reach}");
    println!("  tolerated slack (unreachable, safe):");
    for c in report.tolerated_slack() {
        println!("    {}  mdata={}", c.start.render(&spec), c.start.mdata);
    }
    println!("  invariant gap (permissible but NOT tolerated):");
    for c in report.invariant_gap() {
        println!("    {}  mdata={}", c.start.render(&spec), c.start.mdata);
    }
    Ok(true)
}

/// `ccv compare <protocol-a> <protocol-b>`
pub fn compare(args: &[String]) -> CmdResult {
    let (a, rest) = resolve(args)?;
    let (b, _) = resolve(&rest)?;
    let diff = ccv_core::compare_protocols(&a, &b);
    print!("{}", diff.render());
    Ok(true)
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt_value<T: std::str::FromStr>(rest: &[String], name: &str) -> Result<Option<T>, String> {
    if let Some(pos) = rest.iter().position(|a| a == name) {
        let raw = rest
            .get(pos + 1)
            .ok_or_else(|| format!("{name} needs a value"))?;
        let v = raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for {name}"))?;
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// `ccv list`
pub fn list() -> CmdResult {
    println!("correct protocols:");
    for spec in protocols::all_correct() {
        println!(
            "  {:<12} |Q|={} {}",
            spec.name().to_lowercase(),
            spec.num_states(),
            if spec.uses_sharing_detection() {
                "(sharing-detection F)"
            } else {
                "(null F)"
            }
        );
    }
    println!("\nbuggy mutants (for verifier demonstrations):");
    for (spec, why) in protocols::all_buggy() {
        let cli_name = spec.name().to_lowercase().replace('/', "-");
        println!("  {cli_name:<34} {why}");
    }
    Ok(true)
}

/// `ccv describe <protocol>`
pub fn describe(args: &[String]) -> CmdResult {
    let (spec, _) = resolve(args)?;
    print!("{}", spec.describe());
    println!("\nsnoop reactions:");
    for s in spec.state_ids() {
        for &bus in spec.emitted_bus_ops() {
            let sn = spec.snoop(s, bus);
            if sn.next == s && !sn.supplies_data && !sn.flushes_to_memory && !sn.receives_update {
                continue;
            }
            println!(
                "  {} on {} -> {}{}{}{}",
                spec.state(s).short,
                bus,
                spec.state(sn.next).short,
                if sn.supplies_data { " +supply" } else { "" },
                if sn.flushes_to_memory { " +flush" } else { "" },
                if sn.receives_update { " +update" } else { "" },
            );
        }
    }
    Ok(true)
}

/// `ccv verify <protocol> [--trace] [--equality] [--dot FILE]`
pub fn verify(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let opts = Options {
        pruning: if flag(&rest, "--equality") {
            Pruning::Equality
        } else {
            Pruning::Containment
        },
        record_trace: flag(&rest, "--trace"),
        ..Options::default()
    };
    let report = verify_with(&spec, &opts);

    println!("protocol : {}", report.protocol);
    println!("verdict  : {}", report.verdict);
    println!(
        "explored : {} visits, {} expansions -> {} essential states",
        report.visits(),
        report.expansion.expanded,
        report.num_essential()
    );
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("  s{i}: {}", s.render(&spec));
    }
    println!("transitions:");
    for (from, to, labels) in report.graph.grouped_edges() {
        println!("  s{from} --[{}]--> s{to}", labels.join(", "));
    }
    if opts.record_trace {
        println!("trace:");
        for (i, v) in report.expansion.trace.iter().enumerate() {
            println!(
                "  {:>3}. {} --{}--> {} [{:?}]",
                i + 1,
                v.from.render(&spec),
                v.label.render(&spec),
                v.to.render(&spec),
                v.disposition
            );
        }
    }
    for r in report.reports.iter().take(5) {
        println!("\nERROR: {}", r.descriptions.join("; "));
        println!("  state: {}", r.state);
        println!("  path : {}", r.path);
    }
    if report.reports.len() > 5 {
        println!("\n... and {} more error findings", report.reports.len() - 5);
    }
    if let Some(path) = opt_value::<String>(&rest, "--dot")? {
        std::fs::write(&path, report.graph.to_dot(&spec))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nDOT written to {path}");
    }
    Ok(report.verdict == Verdict::Verified)
}

/// `ccv graph <protocol>`
pub fn graph(args: &[String]) -> CmdResult {
    let (spec, _) = resolve(args)?;
    let report = verify_with(&spec, &Options::default());
    print!("{}", report.graph.to_dot(&spec));
    Ok(true)
}

/// `ccv enumerate <protocol> -n N [--exact] [--threads T]`
pub fn enumerate(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let n: usize = opt_value(&rest, "-n")?.unwrap_or(4);
    let mut opts = EnumOptions::new(n);
    if flag(&rest, "--exact") {
        opts = opts.exact();
    }
    let threads: usize = opt_value(&rest, "--threads")?.unwrap_or(1);
    let r = if threads > 1 {
        enumerate_parallel(&spec, &opts, threads)
    } else {
        run_enumerate(&spec, &opts)
    };
    println!(
        "protocol {} n={} dedup={:?} threads={}",
        spec.name(),
        n,
        opts.dedup,
        threads
    );
    println!(
        "distinct states: {}   visits: {}   truncated: {}",
        r.distinct, r.visits, r.truncated
    );
    for e in r.errors.iter().take(5) {
        println!(
            "ERROR at {}: {}",
            e.state.render(n, &spec),
            e.descriptions.join("; ")
        );
    }
    if r.errors.len() > 5 {
        println!("... and {} more errors", r.errors.len() - 5);
    }
    Ok(r.is_clean())
}

/// `ccv crosscheck <protocol> -n N`
pub fn crosscheck(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let n: usize = opt_value(&rest, "-n")?.unwrap_or(4);
    let exp = run_expansion(&spec, &Options::default());
    let essential = exp.essential_states();
    let cc = run_crosscheck(&spec, n, &essential, 1 << 24);
    println!(
        "protocol {} n={}: {} explicit states, {} covered by {} essential states",
        spec.name(),
        n,
        cc.total_concrete,
        cc.covered,
        essential.len()
    );
    if cc.complete() {
        println!("Theorem 1 holds at this size.");
        Ok(true)
    } else {
        println!("UNCOVERED STATES: {:?}", cc.uncovered_examples);
        Ok(false)
    }
}

/// `ccv simulate <protocol> [--workload W] [--accesses N] [--procs P] [--seed S]`
pub fn simulate(args: &[String]) -> CmdResult {
    let (spec, rest) = resolve(args)?;
    let procs: usize = opt_value(&rest, "--procs")?.unwrap_or(4);
    let accesses: usize = opt_value(&rest, "--accesses")?.unwrap_or(100_000);
    let seed: u64 = opt_value(&rest, "--seed")?.unwrap_or(0xCC5EED);
    let which: String = opt_value(&rest, "--workload")?.unwrap_or_else(|| "hot-block".into());

    let mut params = WorkloadParams::new(procs);
    params.accesses = accesses;
    params.seed = seed;
    if let Some(path) = opt_value::<String>(&rest, "--trace-file")? {
        let trace = ccv_sim::load_trace(&path)?;
        let machine_procs = trace.procs.max(procs);
        let mut machine = Machine::new(spec.clone(), MachineConfig::small(machine_procs));
        let report = machine.run(&trace);
        println!(
            "protocol {} trace file {path} ({} accesses, {} procs)",
            spec.name(),
            trace.len(),
            trace.procs
        );
        println!("{}", report.stats);
        return if report.is_coherent() {
            println!("coherent: every load returned the latest value.");
            Ok(true)
        } else {
            println!(
                "INCOHERENT: {} oracle violations; first: {:?}",
                report.violations.len(),
                report.violations[0]
            );
            Ok(false)
        };
    }
    let trace: Trace = match which.as_str() {
        "uniform" => workload::uniform(&params),
        "hot-block" | "hot_block" => workload::hot_block(&params),
        "producer-consumer" | "producer_consumer" => workload::producer_consumer(&params),
        "migratory" => workload::migratory(&params),
        "mostly-private" | "mostly_private" => workload::mostly_private(&params),
        other => return Err(format!("unknown workload '{other}'")),
    };

    let mut machine = Machine::new(spec.clone(), MachineConfig::small(procs));
    let report = machine.run(&trace);
    println!(
        "protocol {} workload {} ({} accesses, {} procs, seed {seed})",
        spec.name(),
        trace.name,
        trace.len(),
        procs
    );
    println!("{}", report.stats);
    if report.is_coherent() {
        println!("coherent: every load returned the latest value.");
        Ok(true)
    } else {
        println!(
            "INCOHERENT: {} oracle violations; first: {:?}",
            report.violations.len(),
            report.violations[0]
        );
        Ok(false)
    }
}
