//! Command implementations for the `ccv` binary.
//!
//! Each command declares its argument grammar as a typed
//! [`ArgSpec`] (see `args.rs`), parses with
//! positioned errors, and supports `--help`. Commands return a
//! [`CmdStatus`] — success, failure (verification failed, oracle
//! violated) or inconclusive (the run stopped early on a budget,
//! deadline, memory cap, Ctrl-C or worker panic) — and `Err(message)`
//! for usage errors. `main` maps these to the exit codes 0, 1, 3
//! and 2 respectively.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use crate::args::{ArgSpec, Flag, ParsedArgs, Positional};
use ccv_core::{
    essential_states_json, Batch, Options, Outcome, Payload, ProtocolSource, Pruning, Request,
    RunContext, Session, Verdict,
};
use ccv_enum::{enumerate as run_enumerate, enumerate_parallel, EnumOptions};
use ccv_model::{protocols, ProtocolSpec};
use ccv_observe::{
    CancelToken, EventSink, FlightRecorder, Metrics, NdjsonSink, PostmortemGuard, SinkHandle, Tee,
    TraceSink,
};
use ccv_sim::{workload, Machine, MachineConfig, Trace, WorkloadParams};

/// Top-level usage text.
pub const USAGE: &str = "\
ccv — symbolic verification of cache coherence protocols (Pong & Dubois, SPAA'93)

usage:
  ccv list                                  list known protocols
  ccv describe   <protocol>                 print the protocol's FSM tables
  ccv check-all                             verify the whole library (CI gate)
  ccv verify     <protocol> [--trace] [--equality] [--dot FILE]
                 [--metrics FILE] [--progress] [--deadline SECS]
                 [--max-bytes BYTES] [--threads T]
  ccv graph      <protocol>                 print the global diagram as DOT
  ccv export     <protocol>                 print the protocol as .ccv source
  ccv compare    <protocol-a> <protocol-b>  diff the global diagrams
  ccv witness    <protocol> [-n MAX]        shortest concrete violation scenario
  ccv recovery   <protocol>                 tolerated vs fatal start configurations
  ccv report     <protocol> [-o FILE]       full markdown dossier
  ccv enumerate  <protocol> -n N [--exact] [--threads T] [--max-states N]
                 [--deadline SECS] [--max-bytes BYTES]
                 [--checkpoint-out FILE] [--resume FILE]
                 [--spill-dir DIR] [--spill-threshold BYTES]
  ccv crosscheck <protocol> -n N [--stop-at-first-error] [--threads T]
                                            Theorem 1 check at size N
  ccv serve      [--addr ADDR] [--workers N] [--queue N]
                 [--cache-capacity N] [--cache-dir DIR] [--max-n N]
                 [--allow-files]            verification-as-a-service daemon
  ccv client     <protocol> [--addr ADDR] [--action A] [-n N] [--http]
                 [--retries N] [--backoff MS] [--timeout SECS]
                                            submit to a daemon, with retries
  ccv simulate   <protocol> [--workload W | --trace-file F] [--accesses N]
                 [--procs P] [--seed S]
  ccv profile    <protocol> [-n N] [--threads T] [--symbolic]
                                            per-rule firing/time heat table

verify, enumerate, crosscheck, simulate and profile all accept the
observability trio: [--metrics-out FILE] [--trace-out FILE]
[--flight-recorder[=N]].

run `ccv <command> --help` for the full options of one command.

exit codes: 0 verified / success, 1 violation found, 2 usage error,
3 inconclusive (budget, deadline, memory cap, Ctrl-C/SIGTERM or worker
panic stopped the run before a verdict).

<protocol> is a library name (msi, illinois, write-once, synapse, berkeley,
firefly, dragon, moesi, or a buggy mutant — run `ccv list`) or a path to a
.ccv protocol description file.";

/// Terminal status of a command, mapped onto the process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmdStatus {
    /// The command completed and its verdict (if any) is positive.
    Success,
    /// A completed run with a negative result: verification failed,
    /// a violation was found, the oracle was violated.
    Failure,
    /// The run stopped early — budget, deadline, memory cap,
    /// cancellation or worker panic — so no verdict was reached.
    /// Distinct from both success and failure: a partial result must
    /// never be mistaken for either.
    Inconclusive,
}

impl CmdStatus {
    /// The process exit code: 0 success, 1 failure, 3 inconclusive
    /// (2 is reserved for usage errors).
    pub fn exit_code(self) -> u8 {
        match self {
            CmdStatus::Success => 0,
            CmdStatus::Failure => 1,
            CmdStatus::Inconclusive => 3,
        }
    }

    /// Folds a boolean verdict into a status.
    pub fn from_ok(ok: bool) -> CmdStatus {
        if ok {
            CmdStatus::Success
        } else {
            CmdStatus::Failure
        }
    }
}

pub(crate) type CmdResult = Result<CmdStatus, String>;

const PROTOCOL_POS: Positional = Positional {
    name: "protocol",
    required: true,
    help: "library protocol name or path to a .ccv file",
};

fn resolve_spec(name: &str) -> Result<ProtocolSpec, String> {
    // A path to a .ccv file takes priority over library names.
    if name.ends_with(".ccv") || std::path::Path::new(name).is_file() {
        let source = std::fs::read_to_string(name).map_err(|e| format!("reading {name}: {e}"))?;
        ccv_model::dsl::parse_protocol(&source).map_err(|e| format!("{name}:{e}"))
    } else {
        protocols::by_name(name)
            .ok_or_else(|| format!("unknown protocol '{name}' (try `ccv list`)"))
    }
}

/// Parses `args` against `spec`; `Ok(None)` means `--help` was printed.
pub(crate) fn parse_or_help(spec: &ArgSpec, args: &[String]) -> Result<Option<ParsedArgs>, String> {
    let p = spec.parse(args)?;
    if p.help {
        print!("{}", spec.help());
        return Ok(None);
    }
    Ok(Some(p))
}

/// Default flight-recorder capacity when `--flight-recorder` is given
/// without an explicit `=N`.
const FLIGHT_DEFAULT_CAPACITY: usize = 4096;

/// Writes a CLI output file atomically (sibling temp file + fsync +
/// rename), so a crash, Ctrl-C or full disk never leaves a torn
/// half-file where the old contents used to be.
fn write_out(path: &str, bytes: &[u8]) -> Result<(), String> {
    ccv_observe::write_atomic(
        std::path::Path::new(path),
        bytes,
        &ccv_observe::FaultHandle::disabled(),
        "cli.out",
    )
    .map_err(|e| format!("writing {path}: {e}"))
}

/// The observability flags shared by every run-style subcommand.
const METRICS_OUT_FLAG: Flag = Flag {
    name: "--metrics-out",
    value: Some("FILE"),
    help: "write run metrics (counters, phases, rules) as JSON",
};
const TRACE_OUT_FLAG: Flag = Flag {
    name: "--trace-out",
    value: Some("FILE"),
    help: "write a Chrome-trace/Perfetto timeline JSON",
};
const FLIGHT_FLAG: Flag = Flag {
    name: "--flight-recorder",
    value: Some("[N]"),
    help: "keep the last N events (default 4096); NDJSON postmortem on violation/panic",
};
const RULE_STATS_FLAG: Flag = Flag {
    name: "--rule-stats",
    value: None,
    help: "attribute firings, states and kernel time to protocol rules",
};

/// The sinks built from `--metrics-out`, `--trace-out` and
/// `--flight-recorder[=N]`, composed with any command-specific sinks
/// through a [`Tee`]. Dropping it arms the postmortem dump (the guard
/// fires on a recorded violation or an unwinding panic).
struct Obs {
    sinks: Vec<Arc<dyn EventSink>>,
    metrics: Option<(String, Arc<Metrics>)>,
    trace: Option<(String, Arc<TraceSink<BufWriter<File>>>)>,
    _postmortem: Option<PostmortemGuard>,
}

impl Obs {
    /// Reads the three shared observability flags out of `p`.
    fn from_args(p: &ParsedArgs) -> Result<Obs, String> {
        let mut obs = Obs {
            sinks: Vec::new(),
            metrics: None,
            trace: None,
            _postmortem: None,
        };
        if let Some(path) = p.value::<String>("--metrics-out")? {
            let m = Arc::new(Metrics::new());
            obs.sinks.push(m.clone());
            obs.metrics = Some((path, m));
        }
        if let Some(path) = p.value::<String>("--trace-out")? {
            let f = File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
            let t = Arc::new(TraceSink::new(BufWriter::new(f)));
            obs.sinks.push(t.clone());
            obs.trace = Some((path, t));
        }
        if p.flag("--flight-recorder") || p.value::<usize>("--flight-recorder")?.is_some() {
            let capacity = p.value_or("--flight-recorder", FLIGHT_DEFAULT_CAPACITY)?;
            let rec = Arc::new(FlightRecorder::new(capacity));
            obs.sinks.push(rec.clone());
            obs._postmortem = Some(PostmortemGuard::stderr(rec));
        }
        Ok(obs)
    }

    /// A handle over the obs sinks plus `extra` command-specific ones;
    /// disabled when nothing was requested.
    fn handle(&self, extra: Vec<Arc<dyn EventSink>>) -> SinkHandle {
        let mut all = self.sinks.clone();
        all.extend(extra);
        match all.len() {
            0 => SinkHandle::disabled(),
            1 => SinkHandle::new(all.pop().expect("len checked")),
            _ => {
                let mut tee = Tee::new();
                for s in all {
                    tee = tee.with(s);
                }
                SinkHandle::new(Arc::new(tee))
            }
        }
    }

    /// Writes the metrics file, closes the trace, and reports paths.
    fn finish(&self) -> Result<(), String> {
        if let Some((path, t)) = &self.trace {
            t.finish();
            println!("trace written to {path}");
        }
        if let Some((path, m)) = &self.metrics {
            write_out(path, m.snapshot().to_json().render().as_bytes())?;
            println!("metrics written to {path}");
        }
        Ok(())
    }
}

const LIST_SPEC: ArgSpec = ArgSpec {
    cmd: "list",
    summary: "list the protocol library: correct protocols and buggy mutants",
    positionals: &[],
    flags: &[],
};

/// `ccv list`
pub fn list(args: &[String]) -> CmdResult {
    let Some(_) = parse_or_help(&LIST_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    println!("correct protocols:");
    for spec in protocols::all_correct() {
        println!(
            "  {:<12} |Q|={} {}",
            spec.name().to_lowercase(),
            spec.num_states(),
            if spec.uses_sharing_detection() {
                "(sharing-detection F)"
            } else {
                "(null F)"
            }
        );
    }
    println!("\nsplit-transaction protocols (non-atomic bus):");
    for spec in protocols::all_non_atomic() {
        println!(
            "  {:<12} |Q|={} ({} transient)",
            spec.name().to_lowercase(),
            spec.num_states(),
            spec.transient_states().count()
        );
    }
    println!("\nbuggy mutants (for verifier demonstrations):");
    for (spec, why) in protocols::all_buggy() {
        let cli_name = spec.name().to_lowercase().replace('/', "-");
        println!("  {cli_name:<34} {why}");
    }
    Ok(CmdStatus::Success)
}

const DESCRIBE_SPEC: ArgSpec = ArgSpec {
    cmd: "describe",
    summary: "print a protocol's FSM tables and snoop reactions",
    positionals: &[PROTOCOL_POS],
    flags: &[],
};

/// `ccv describe <protocol>`
pub fn describe(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&DESCRIBE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    print!("{}", spec.describe());
    println!("\nsnoop reactions:");
    for s in spec.state_ids() {
        for &bus in spec.emitted_bus_ops() {
            let sn = spec.snoop(s, bus);
            if sn.next == s && !sn.supplies_data && !sn.flushes_to_memory && !sn.receives_update {
                continue;
            }
            println!(
                "  {} on {} -> {}{}{}{}",
                spec.state(s).short,
                bus,
                spec.state(sn.next).short,
                if sn.supplies_data { " +supply" } else { "" },
                if sn.flushes_to_memory { " +flush" } else { "" },
                if sn.receives_update { " +update" } else { "" },
            );
        }
    }
    Ok(CmdStatus::Success)
}

const CHECK_ALL_SPEC: ArgSpec = ArgSpec {
    cmd: "check-all",
    summary: "verify every library protocol and mutant (CI gate)",
    positionals: &[],
    flags: &[],
};

/// `ccv check-all` — verify the whole library (CI entry point).
pub fn check_all(args: &[String]) -> CmdResult {
    let Some(_) = parse_or_help(&CHECK_ALL_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let mut ok = true;
    println!(
        "{:<36} {:>12} {:>10} {:>8}",
        "protocol", "verdict", "essential", "visits"
    );
    // One batch for the whole library: every run reuses the same
    // engine scratch (successor buffers, containment index, arena).
    let mut batch = Batch::new();
    for spec in protocols::all_correct()
        .into_iter()
        .chain(protocols::all_non_atomic())
    {
        let v = batch.summarize(&spec);
        let pass = v.verdict == Verdict::Verified;
        ok &= pass;
        println!(
            "{:<36} {:>12} {:>10} {:>8}",
            v.protocol,
            v.verdict.to_string(),
            v.essential,
            v.visits
        );
    }
    for (spec, _) in protocols::all_buggy() {
        let v = batch.summarize(&spec);
        let pass = v.verdict == Verdict::Erroneous;
        ok &= pass;
        println!(
            "{:<36} {:>12} {:>10} {:>8}{}",
            v.protocol,
            v.verdict.to_string(),
            v.essential,
            v.visits,
            if pass { "" } else { "   <- MUTANT NOT CAUGHT" }
        );
    }
    println!(
        "
{}",
        if ok {
            "all verdicts as expected."
        } else {
            "UNEXPECTED VERDICTS PRESENT."
        }
    );
    Ok(CmdStatus::from_ok(ok))
}

const VERIFY_SPEC: ArgSpec = ArgSpec {
    cmd: "verify",
    summary: "symbolically verify a protocol for any number of caches",
    positionals: &[PROTOCOL_POS],
    flags: &[
        Flag {
            name: "--trace",
            value: None,
            help: "print every expansion step",
        },
        Flag {
            name: "--equality",
            value: None,
            help: "prune by state equality instead of containment",
        },
        Flag {
            name: "--dot",
            value: Some("FILE"),
            help: "write the global diagram as Graphviz DOT",
        },
        Flag {
            name: "--metrics",
            value: Some("FILE"),
            help: "write run metrics (counters, phase timings) as JSON",
        },
        Flag {
            name: "--progress",
            value: None,
            help: "stream NDJSON progress events to stderr",
        },
        Flag {
            name: "--essential-out",
            value: Some("FILE"),
            help: "write the essential states as canonical JSON (stable ordering)",
        },
        Flag {
            name: "--deadline",
            value: Some("SECS"),
            help: "stop with an inconclusive verdict after this much wall-clock time",
        },
        Flag {
            name: "--max-bytes",
            value: Some("BYTES"),
            help: "stop with an inconclusive verdict past this approximate footprint",
        },
        Flag {
            name: "--threads",
            value: Some("T"),
            help: "symbolic expansion workers; 0 = one per available core (default 0); \
                   the result is bit-identical for every setting",
        },
        METRICS_OUT_FLAG,
        TRACE_OUT_FLAG,
        FLIGHT_FLAG,
        RULE_STATS_FLAG,
    ],
};

/// `ccv verify <protocol> [--trace] [--equality] [--dot FILE]
/// [--metrics FILE] [--progress] [--essential-out FILE]
/// [--threads T] [--metrics-out FILE] [--trace-out FILE]
/// [--flight-recorder[=N]] [--rule-stats]`
pub fn verify(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&VERIFY_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let record_trace = p.flag("--trace");
    let metrics_path: Option<String> = p.value("--metrics")?;
    let progress = p.flag("--progress");
    let rule_stats = p.flag("--rule-stats");
    let obs = Obs::from_args(&p)?;

    let metrics = if metrics_path.is_some() || rule_stats {
        Some(Arc::new(Metrics::new()))
    } else {
        None
    };
    let mut req = Request::verify(ProtocolSource::Spec(spec));
    req.options.pruning = if p.flag("--equality") {
        Pruning::Equality
    } else {
        Pruning::Containment
    };
    req.options.record_trace = record_trace;
    req.options.rule_stats = rule_stats;
    if let Some(secs) = p.value::<f64>("--deadline")? {
        req.options.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    req.options.max_bytes = p.value::<u64>("--max-bytes")?;
    // 0 = auto. Safe default: parallel expansion is bit-identical.
    req.options.threads = p.value_or("--threads", 0)?;
    let mut extra: Vec<Arc<dyn EventSink>> = Vec::new();
    if let Some(m) = &metrics {
        extra.push(m.clone());
    }
    if progress {
        extra.push(Arc::new(NdjsonSink::new(std::io::stderr())));
    }
    // Ctrl-C flips the process-global token; the engine drains at
    // the next poll and the partial result renders INCONCLUSIVE.
    let ctx = RunContext::new(CancelToken::global(), obs.handle(extra));
    let v = match Session::run_with(&req, &ctx).result {
        Ok(Payload::Verify(v)) => v,
        Ok(_) => return Err("unexpected response payload".into()),
        Err(e) => return Err(e.message),
    };
    let report = &v.report;
    let spec = &v.spec;

    println!("protocol : {}", report.protocol);
    println!("verdict  : {}", report.verdict);
    if let Outcome::Inconclusive { .. } = &report.outcome {
        println!("outcome  : {}", report.outcome);
    }
    println!(
        "explored : {} visits, {} expansions -> {} essential states",
        report.visits(),
        report.expansion.expanded,
        report.num_essential()
    );
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("  s{i}: {}", s.render(spec));
    }
    println!("transitions:");
    for (from, to, labels) in report.graph.grouped_edges() {
        println!("  s{from} --[{}]--> s{to}", labels.join(", "));
    }
    if record_trace {
        println!("trace:");
        for (i, v) in report.expansion.trace.iter().enumerate() {
            println!(
                "  {:>3}. {} --{}--> {} [{:?}]",
                i + 1,
                v.from.render(spec),
                v.label.render(spec),
                v.to.render(spec),
                v.disposition
            );
        }
    }
    for r in report.reports.iter().take(5) {
        println!("\nERROR: {}", r.descriptions.join("; "));
        println!("  state: {}", r.state);
        println!("  path : {}", r.path);
    }
    if report.reports.len() > 5 {
        println!("\n... and {} more error findings", report.reports.len() - 5);
    }
    if let Some(path) = p.value::<String>("--dot")? {
        write_out(&path, report.graph.to_dot(spec).as_bytes())?;
        println!("\nDOT written to {path}");
    }
    if let Some(path) = p.value::<String>("--essential-out")? {
        let pruning = if p.flag("--equality") {
            Pruning::Equality
        } else {
            Pruning::Containment
        };
        let json = essential_states_json(spec, report, pruning);
        write_out(&path, json.render().as_bytes())?;
        println!("\nessential states written to {path}");
    }
    if rule_stats {
        let snap = metrics
            .as_ref()
            .expect("metrics collector was attached")
            .snapshot();
        print!("\n{}", crate::report::rule_table(&snap));
    }
    if let Some(path) = metrics_path {
        let snap = metrics.expect("metrics collector was attached").snapshot();
        write_out(&path, snap.to_json().render().as_bytes())?;
        println!("\nmetrics written to {path}");
    }
    obs.finish()?;
    Ok(match report.verdict {
        Verdict::Verified => CmdStatus::Success,
        Verdict::Erroneous => CmdStatus::Failure,
        Verdict::Inconclusive => CmdStatus::Inconclusive,
    })
}

const GRAPH_SPEC: ArgSpec = ArgSpec {
    cmd: "graph",
    summary: "print the global diagram over essential states as Graphviz DOT",
    positionals: &[PROTOCOL_POS],
    flags: &[],
};

/// `ccv graph <protocol>`
pub fn graph(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&GRAPH_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let session = Session::new(resolve_spec(p.require_pos(0, "protocol name")?)?);
    let report = session.verify();
    print!("{}", report.graph.to_dot(session.spec()));
    Ok(CmdStatus::Success)
}

const EXPORT_SPEC: ArgSpec = ArgSpec {
    cmd: "export",
    summary: "print a protocol as .ccv source (round-trips through `ccv verify`)",
    positionals: &[PROTOCOL_POS],
    flags: &[],
};

/// `ccv export <protocol>`
pub fn export(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&EXPORT_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    print!("{}", ccv_model::dsl::to_dsl(&spec));
    Ok(CmdStatus::Success)
}

const COMPARE_SPEC: ArgSpec = ArgSpec {
    cmd: "compare",
    summary: "diff the global diagrams of two protocols",
    positionals: &[
        Positional {
            name: "protocol-a",
            required: true,
            help: "first protocol",
        },
        Positional {
            name: "protocol-b",
            required: true,
            help: "second protocol",
        },
    ],
    flags: &[],
};

/// `ccv compare <protocol-a> <protocol-b>`
pub fn compare(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&COMPARE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let a = resolve_spec(p.require_pos(0, "first protocol")?)?;
    let b = resolve_spec(p.require_pos(1, "second protocol")?)?;
    let diff = ccv_core::compare_protocols(&a, &b);
    print!("{}", diff.render());
    Ok(CmdStatus::Success)
}

const WITNESS_SPEC: ArgSpec = ArgSpec {
    cmd: "witness",
    summary: "find the shortest concrete violation scenario, if any",
    positionals: &[PROTOCOL_POS],
    flags: &[Flag {
        name: "-n",
        value: Some("MAX"),
        help: "largest cache count to search (default 4)",
    }],
};

/// `ccv witness <protocol> [-n MAX]`
pub fn witness(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&WITNESS_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let max_n: usize = p.value_or("-n", 4)?;
    match ccv_enum::find_violation_witness(&spec, max_n, 1 << 22) {
        Some(w) => {
            print!("{}", w.render(&spec));
            println!(
                "\nthe protocol is incoherent; scenario above is minimal for {} caches.",
                w.n
            );
            Ok(CmdStatus::Failure)
        }
        None => {
            println!(
                "no violation scenario with up to {max_n} caches; `ccv verify` proves it for any number."
            );
            Ok(CmdStatus::Success)
        }
    }
}

const RECOVERY_SPEC: ArgSpec = ArgSpec {
    cmd: "recovery",
    summary: "classify start configurations as tolerated or fatal",
    positionals: &[PROTOCOL_POS],
    flags: &[],
};

/// `ccv recovery <protocol>`
pub fn recovery(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&RECOVERY_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let report = ccv_core::analyze_recovery(&spec, 200_000);
    println!(
        "protocol {}: {} structurally permissible configurations",
        spec.name(),
        report.cases.len()
    );
    let mut safe_reach = 0;
    for c in &report.cases {
        if c.tolerance == ccv_core::Tolerance::Safe && c.reachable {
            safe_reach += 1;
        }
    }
    println!("  normal operating region (reachable, safe): {safe_reach}");
    println!("  tolerated slack (unreachable, safe):");
    for c in report.tolerated_slack() {
        println!("    {}  mdata={}", c.start.render(&spec), c.start.mdata);
    }
    println!("  invariant gap (permissible but NOT tolerated):");
    for c in report.invariant_gap() {
        println!("    {}  mdata={}", c.start.render(&spec), c.start.mdata);
    }
    Ok(CmdStatus::Success)
}

const REPORT_SPEC: ArgSpec = ArgSpec {
    cmd: "report",
    summary: "write the full markdown dossier for a protocol",
    positionals: &[PROTOCOL_POS],
    flags: &[Flag {
        name: "-o",
        value: Some("FILE"),
        help: "write to FILE instead of stdout",
    }],
};

/// `ccv report <protocol> [-o FILE]`
pub fn report(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&REPORT_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let session = Session::new(resolve_spec(p.require_pos(0, "protocol name")?)?);
    let verification = session.verify();
    let md = crate::report::protocol_report(session.spec(), &verification);
    match p.value::<String>("-o")? {
        Some(path) => {
            write_out(&path, md.as_bytes())?;
            println!("dossier written to {path}");
        }
        None => print!("{md}"),
    }
    Ok(CmdStatus::Success)
}

const ENUMERATE_SPEC: ArgSpec = ArgSpec {
    cmd: "enumerate",
    summary: "exhaustively enumerate the explicit state space for N caches",
    positionals: &[PROTOCOL_POS],
    flags: &[
        Flag {
            name: "-n",
            value: Some("N"),
            help: "cache count (default 4)",
        },
        Flag {
            name: "--exact",
            value: None,
            help: "exact-duplicate pruning instead of counting equivalence",
        },
        Flag {
            name: "--threads",
            value: Some("T"),
            help: "parallel workers; 0 = one per available core (default 0)",
        },
        Flag {
            name: "--max-states",
            value: Some("N"),
            help: "stop (inconclusively) after this many distinct states",
        },
        Flag {
            name: "--deadline",
            value: Some("SECS"),
            help: "stop (inconclusively) after this much wall-clock time",
        },
        Flag {
            name: "--max-bytes",
            value: Some("BYTES"),
            help: "stop (inconclusively) past this approximate visited-table footprint",
        },
        Flag {
            name: "--checkpoint-out",
            value: Some("FILE"),
            help: "on an early stop, write the search state for --resume",
        },
        Flag {
            name: "--resume",
            value: Some("FILE"),
            help: "continue from a checkpoint written by --checkpoint-out",
        },
        Flag {
            name: "--spill-dir",
            value: Some("DIR"),
            help: "spill the visited table to segment files in DIR (forces --threads 1)",
        },
        Flag {
            name: "--spill-threshold",
            value: Some("BYTES"),
            help: "resident visited-table bytes before spilling (default 256 MiB)",
        },
        Flag {
            name: "--inject-panic",
            value: Some("K"),
            help: "test hook: panic worker 0 after K visits (exercises panic containment)",
        },
        Flag {
            name: "--fault-plan",
            value: Some("SPEC"),
            help: "deterministic fault injection, e.g. 'spill.flush:io@2' (see docs/robustness.md)",
        },
        METRICS_OUT_FLAG,
        TRACE_OUT_FLAG,
        FLIGHT_FLAG,
        RULE_STATS_FLAG,
    ],
};

/// `ccv enumerate <protocol> -n N [--exact] [--threads T]
/// [--max-states N] [--deadline SECS] [--max-bytes BYTES]
/// [--checkpoint-out FILE] [--resume FILE] [--spill-dir DIR]
/// [--spill-threshold BYTES] [--metrics-out FILE]
/// [--trace-out FILE] [--flight-recorder[=N]] [--rule-stats]`
pub fn enumerate(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&ENUMERATE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let n: usize = p.value_or("-n", 4)?;
    let rule_stats = p.flag("--rule-stats");
    let obs = Obs::from_args(&p)?;
    // The in-process collector backs the human-readable worker summary
    // and rule table; always attached so parallel runs can report
    // per-worker claims and steal counts.
    let human = Arc::new(Metrics::new());
    let mut req = Request::enumerate(ProtocolSource::Spec(spec), n);
    req.options.rule_stats = rule_stats;
    req.options.exact = p.flag("--exact");
    req.options.max_states = p.value::<usize>("--max-states")?;
    if let Some(secs) = p.value::<f64>("--deadline")? {
        req.options.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    req.options.max_bytes = p.value::<u64>("--max-bytes")?;
    req.options.inject_panic = p.value::<usize>("--inject-panic")?;
    req.options.fault_plan = p.value("--fault-plan")?;
    req.options.checkpoint_out = p.value("--checkpoint-out")?;
    req.options.resume = p.value("--resume")?;
    req.options.spill_dir = p.value("--spill-dir")?;
    req.options.spill_threshold = p.value::<u64>("--spill-threshold")?;
    // 0 = auto: one worker per core the scheduler grants this process.
    req.options.threads = p.value_or("--threads", 0)?;
    let ctx = RunContext::new(
        CancelToken::global(),
        obs.handle(vec![human.clone() as Arc<dyn EventSink>]),
    );
    let r = match Session::run_with(&req, &ctx).result {
        Ok(Payload::Enumerate(r)) => r,
        Ok(_) => return Err("unexpected response payload".into()),
        Err(e) => return Err(e.message),
    };
    for w in &r.warnings {
        println!("warning: {w}");
    }
    if let Some(info) = &r.resumed {
        println!(
            "resuming from {}: {} distinct states, {} frontier states, {} visits so far",
            info.path, info.visited, info.frontier, info.visits
        );
    }
    println!(
        "protocol {} n={} dedup={} threads={}{}",
        r.protocol,
        r.n,
        r.dedup_name(),
        r.threads,
        if r.auto_threads { " (auto)" } else { "" }
    );
    println!(
        "distinct states: {}   visits: {}   truncated: {}",
        r.distinct, r.visits, r.truncated
    );
    if let Some(info) = &r.stopped {
        println!(
            "inconclusive: {} ({} states still pending, {:.3}s elapsed)",
            info.describe(),
            info.frontier,
            info.elapsed.as_secs_f64()
        );
    }
    if let Some(ck) = &r.checkpoint {
        if ck.written {
            println!("checkpoint written to {}", ck.path);
        } else {
            println!("run completed; no checkpoint written to {}", ck.path);
        }
    }
    let snap = human.snapshot();
    if r.threads > 1 {
        print!("{}", crate::report::worker_summary(&snap));
    }
    if rule_stats {
        print!("\n{}", crate::report::rule_table(&snap));
    }
    for e in r.errors.iter().take(5) {
        println!("ERROR at {}: {}", e.state, e.descriptions.join("; "));
    }
    if r.errors.len() > 5 {
        println!("... and {} more errors", r.errors.len() - 5);
    }
    obs.finish()?;
    Ok(if r.stopped.is_some() {
        CmdStatus::Inconclusive
    } else {
        CmdStatus::from_ok(r.errors.is_empty())
    })
}

const CROSSCHECK_SPEC: ArgSpec = ArgSpec {
    cmd: "crosscheck",
    summary: "check Theorem 1: every explicit state is symbolically covered",
    positionals: &[PROTOCOL_POS],
    flags: &[
        Flag {
            name: "-n",
            value: Some("N"),
            help: "cache count to enumerate (default 4)",
        },
        Flag {
            name: "--stop-at-first-error",
            value: None,
            help: "skip the coverage scan if the enumeration reaches a violation",
        },
        Flag {
            name: "--threads",
            value: Some("T"),
            help: "symbolic expansion workers; 0 = one per available core (default 0)",
        },
        METRICS_OUT_FLAG,
        TRACE_OUT_FLAG,
        FLIGHT_FLAG,
    ],
};

/// `ccv crosscheck <protocol> -n N [--stop-at-first-error]
/// [--threads T] [--metrics-out FILE] [--trace-out FILE]
/// [--flight-recorder[=N]]`
pub fn crosscheck(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&CROSSCHECK_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let obs = Obs::from_args(&p)?;
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let n: usize = p.value_or("-n", 4)?;
    let mut req = Request::crosscheck(ProtocolSource::Spec(spec), n);
    req.options.stop_at_first_error = p.flag("--stop-at-first-error");
    req.options.threads = p.value_or("--threads", 0)?;
    let ctx = RunContext::new(CancelToken::global(), obs.handle(Vec::new()));
    let c = match Session::run_with(&req, &ctx).result {
        Ok(Payload::Crosscheck(c)) => c,
        Ok(_) => return Err("unexpected response payload".into()),
        Err(e) => return Err(e.message),
    };
    if let Some(why) = &c.aborted {
        println!("coverage scan skipped: {why}");
        obs.finish()?;
        return Ok(CmdStatus::Failure);
    }
    println!(
        "protocol {} n={}: {} explicit states, {} covered by {} essential states",
        c.protocol, c.n, c.total_concrete, c.covered, c.essential
    );
    if c.complete {
        println!("Theorem 1 holds at this size.");
    } else {
        println!("UNCOVERED STATES: {:?}", c.uncovered_examples);
    }
    obs.finish()?;
    Ok(CmdStatus::from_ok(c.complete))
}

const SERVE_SPEC: ArgSpec = ArgSpec {
    cmd: "serve",
    summary: "run the verification-as-a-service daemon (NDJSON over TCP + HTTP/1.1)",
    positionals: &[],
    flags: &[
        Flag {
            name: "--addr",
            value: Some("ADDR"),
            help: "listen address (default 127.0.0.1:7878; port 0 picks one)",
        },
        Flag {
            name: "--workers",
            value: Some("N"),
            help: "verification engines running concurrently (default 4)",
        },
        Flag {
            name: "--queue",
            value: Some("N"),
            help: "admission queue beyond the pool; overflow is answered BUSY (default 8)",
        },
        Flag {
            name: "--cache-capacity",
            value: Some("N"),
            help: "verdict cache entries before FIFO eviction (default 256)",
        },
        Flag {
            name: "--cache-dir",
            value: Some("DIR"),
            help: "persist the verdict cache in DIR; warm verdicts survive restarts",
        },
        Flag {
            name: "--retry-after",
            value: Some("MS"),
            help: "backoff hint attached to BUSY rejections (default 500)",
        },
        Flag {
            name: "--fault-plan",
            value: Some("SPEC"),
            help: "server-side fault injection (sites serve.accept, serve.response, cache.write)",
        },
        Flag {
            name: "--max-n",
            value: Some("N"),
            help: "largest cache count accepted for enumerate/crosscheck (default 8)",
        },
        Flag {
            name: "--max-threads",
            value: Some("T"),
            help: "per-request enumeration worker cap (default 4)",
        },
        Flag {
            name: "--deadline",
            value: Some("SECS"),
            help: "default per-request deadline (default 30)",
        },
        Flag {
            name: "--max-deadline",
            value: Some("SECS"),
            help: "largest per-request deadline honoured (default 120)",
        },
        Flag {
            name: "--allow-files",
            value: None,
            help: "permit checkpoint-out/resume options (trusted local clients only)",
        },
    ],
};

/// `ccv serve [--addr ADDR] [--workers N] [--queue N]
/// [--cache-capacity N] [--cache-dir DIR] [--retry-after MS]
/// [--fault-plan SPEC] [--max-n N] [--max-threads T]
/// [--deadline SECS] [--max-deadline SECS] [--allow-files]`
pub fn serve(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&SERVE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let mut config = ccv_serve::ServerConfig::default();
    config.addr = p.value_or("--addr", config.addr.clone())?;
    config.workers = p.value_or("--workers", config.workers)?;
    config.queue_depth = p.value_or("--queue", config.queue_depth)?;
    config.cache_capacity = p.value_or("--cache-capacity", config.cache_capacity)?;
    config.cache_dir = p.value::<String>("--cache-dir")?.map(Into::into);
    if let Some(ms) = p.value::<u64>("--retry-after")? {
        config.retry_after = std::time::Duration::from_millis(ms);
    }
    if let Some(spec) = p.value::<String>("--fault-plan")? {
        config.fault =
            ccv_observe::FaultHandle::from_spec(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
    }
    config.max_n = p.value_or("--max-n", config.max_n)?;
    config.max_threads = p.value_or("--max-threads", config.max_threads)?;
    if let Some(secs) = p.value::<f64>("--deadline")? {
        config.default_deadline = std::time::Duration::from_secs_f64(secs);
    }
    if let Some(secs) = p.value::<f64>("--max-deadline")? {
        config.max_deadline = std::time::Duration::from_secs_f64(secs);
    }
    config.allow_files = p.flag("--allow-files");
    let workers = config.workers;
    let queue = config.queue_depth;
    let server = ccv_serve::Server::bind(config).map_err(|e| format!("binding server: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    println!("ccv serve listening on {addr} ({workers} workers, queue depth {queue})");
    let service = server.service();
    if let Some(r) = service.cache_recovery() {
        println!(
            "verdict cache: {} entr{} restored, {} quarantined",
            r.loaded,
            if r.loaded == 1 { "y" } else { "ies" },
            r.quarantined
        );
    }
    if let Some(why) = service.cache_degraded() {
        println!("warning: {why}");
    }
    println!("POST /v1/requests over HTTP, or one ccv-request-v1 NDJSON line per connection.");
    println!("Ctrl-C or SIGTERM stops the daemon; in-flight requests drain first.");
    server.run();
    Ok(CmdStatus::Success)
}

const SIMULATE_SPEC: ArgSpec = ArgSpec {
    cmd: "simulate",
    summary: "execute a workload or trace file against the latest-value oracle",
    positionals: &[PROTOCOL_POS],
    flags: &[
        Flag {
            name: "--workload",
            value: Some("W"),
            help: "synthetic workload: uniform, hot-block, producer-consumer, migratory, mostly-private",
        },
        Flag {
            name: "--trace-file",
            value: Some("F"),
            help: "run a `P<i> R|W <block>` trace file instead of a workload",
        },
        Flag {
            name: "--accesses",
            value: Some("N"),
            help: "workload length (default 100000)",
        },
        Flag {
            name: "--procs",
            value: Some("P"),
            help: "processor count (default 4)",
        },
        Flag {
            name: "--seed",
            value: Some("S"),
            help: "workload RNG seed",
        },
        METRICS_OUT_FLAG,
        TRACE_OUT_FLAG,
        FLIGHT_FLAG,
    ],
};

/// `ccv simulate <protocol> [--workload W] [--accesses N] [--procs P]
/// [--seed S] [--metrics-out FILE] [--trace-out FILE]
/// [--flight-recorder[=N]]`
pub fn simulate(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&SIMULATE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    if spec.has_transients() {
        return Err(format!(
            "protocol '{}' has transient states; the trace simulator models an \
             atomic bus and cannot execute split-transaction protocols",
            spec.name()
        ));
    }
    let procs: usize = p.value_or("--procs", 4)?;
    let accesses: usize = p.value_or("--accesses", 100_000)?;
    let seed: u64 = p.value_or("--seed", 0xCC5EED)?;
    let which: String = p.value_or("--workload", "hot-block".into())?;
    let obs = Obs::from_args(&p)?;
    let handle = obs.handle(Vec::new());

    let mut params = WorkloadParams::new(procs);
    params.accesses = accesses;
    params.seed = seed;
    if let Some(path) = p.value::<String>("--trace-file")? {
        let trace = ccv_sim::load_trace(&path)?;
        let machine_procs = trace.procs.max(procs);
        let mut machine = Machine::new(
            spec.clone(),
            MachineConfig::small(machine_procs).sink(handle),
        );
        let report = machine.run(&trace);
        println!(
            "protocol {} trace file {path} ({} accesses, {} procs)",
            spec.name(),
            trace.len(),
            trace.procs
        );
        println!("{}", report.stats);
        let coherent = report.is_coherent();
        if coherent {
            println!("coherent: every load returned the latest value.");
        } else {
            println!(
                "INCOHERENT: {} oracle violations; first: {:?}",
                report.violations.len(),
                report.violations[0]
            );
        }
        obs.finish()?;
        return Ok(CmdStatus::from_ok(coherent));
    }
    let trace: Trace = match which.as_str() {
        "uniform" => workload::uniform(&params),
        "hot-block" | "hot_block" => workload::hot_block(&params),
        "producer-consumer" | "producer_consumer" => workload::producer_consumer(&params),
        "migratory" => workload::migratory(&params),
        "mostly-private" | "mostly_private" => workload::mostly_private(&params),
        other => return Err(format!("unknown workload '{other}'")),
    };

    let mut machine = Machine::new(spec.clone(), MachineConfig::small(procs).sink(handle));
    let report = machine.run(&trace);
    println!(
        "protocol {} workload {} ({} accesses, {} procs, seed {seed})",
        spec.name(),
        trace.name,
        trace.len(),
        procs
    );
    println!("{}", report.stats);
    let coherent = report.is_coherent();
    if coherent {
        println!("coherent: every load returned the latest value.");
    } else {
        println!(
            "INCOHERENT: {} oracle violations; first: {:?}",
            report.violations.len(),
            report.violations[0]
        );
    }
    obs.finish()?;
    Ok(CmdStatus::from_ok(coherent))
}

const PROFILE_SPEC: ArgSpec = ArgSpec {
    cmd: "profile",
    summary: "attribute firings, produced states and kernel time to protocol rules",
    positionals: &[PROTOCOL_POS],
    flags: &[
        Flag {
            name: "-n",
            value: Some("N"),
            help: "cache count for the enumeration engine (default 5)",
        },
        Flag {
            name: "--threads",
            value: Some("T"),
            help: "parallel enumeration workers (default 1)",
        },
        Flag {
            name: "--symbolic",
            value: None,
            help: "profile the symbolic expansion instead of enumeration",
        },
        METRICS_OUT_FLAG,
        TRACE_OUT_FLAG,
        FLIGHT_FLAG,
    ],
};

/// `ccv profile <protocol> [-n N] [--threads T] [--symbolic]
/// [--metrics-out FILE] [--trace-out FILE] [--flight-recorder[=N]]`
pub fn profile(args: &[String]) -> CmdResult {
    let Some(p) = parse_or_help(&PROFILE_SPEC, args)? else {
        return Ok(CmdStatus::Success);
    };
    let spec = resolve_spec(p.require_pos(0, "protocol name")?)?;
    let obs = Obs::from_args(&p)?;
    let metrics = Arc::new(Metrics::new());
    let handle = obs.handle(vec![metrics.clone() as Arc<dyn EventSink>]);

    let clean = if p.flag("--symbolic") {
        let opts = Options::default().sink(handle).rule_stats(true);
        let report = Session::new(spec.clone()).options(opts).verify();
        println!(
            "protocol {} symbolic expansion: {} visits, {} essential states",
            spec.name(),
            report.visits(),
            report.num_essential()
        );
        report.verdict == Verdict::Verified
    } else {
        let n: usize = p.value_or("-n", 5)?;
        let threads: usize = p.value_or("--threads", 1)?;
        let opts = EnumOptions::new(n).sink(handle).rule_stats(true);
        let r = if threads > 1 {
            enumerate_parallel(&spec, &opts, threads)
        } else {
            run_enumerate(&spec, &opts)
        };
        println!(
            "protocol {} enumeration n={n} threads={threads}: {} distinct states, {} visits",
            spec.name(),
            r.distinct,
            r.visits
        );
        r.is_clean()
    };

    print!("\n{}", crate::report::rule_table(&metrics.snapshot()));
    obs.finish()?;
    Ok(CmdStatus::from_ok(clean))
}
