//! Markdown dossier generation for `ccv report`.
//!
//! Bundles everything the toolchain knows about one protocol into a
//! single human-readable document: the FSM tables, the verification
//! result with the Figure-4-style context table, the global diagram
//! (as DOT), concrete reachability witnesses for every essential
//! state, the recovery analysis, and — for incorrect protocols — the
//! counterexample paths and the shortest executable violation
//! scenario.

use ccv_core::{analyze_recovery, Tolerance, Verdict, VerificationReport};
use ccv_enum::{find_state_witness, find_violation_witness};
use ccv_model::{CData, GlobalCtx, ProcEvent, ProtocolSpec};
use ccv_observe::{Counter, MetricsSnapshot};
use std::fmt::Write as _;

/// Renders the per-rule heat table from a metrics snapshot: one row
/// per rule that fired, sorted by firings, with each rule's share of
/// total firings and of attributed kernel time, plus a totals row.
pub fn rule_table(snap: &MetricsSnapshot) -> String {
    if snap.rules.is_empty() {
        return "no rule statistics recorded (run with rule stats enabled)\n".to_string();
    }
    let total_firings: u64 = snap.rules.values().map(|r| r.firings).sum();
    let total_states: u64 = snap.rules.values().map(|r| r.states).sum();
    let total_dedup: u64 = snap.rules.values().map(|r| r.dedup_hits).sum();
    let total_viol: u64 = snap.rules.values().map(|r| r.violations).sum();
    let total_nanos: u64 = snap.rules.values().map(|r| r.nanos).sum();
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };

    let mut rows: Vec<_> = snap.rules.iter().collect();
    rows.sort_by(|a, b| b.1.firings.cmp(&a.1.firings).then(a.0.cmp(b.0)));

    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>9} {:>7} {:>9} {:>9} {:>6} {:>12} {:>7}",
        "rule", "firings", "fire%", "states", "dedup", "viol", "time", "time%"
    );
    for (name, r) in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>9} {:>6.1}% {:>9} {:>9} {:>6} {:>12} {:>6.1}%",
            name,
            r.firings,
            pct(r.firings, total_firings),
            r.states,
            r.dedup_hits,
            r.violations,
            format_nanos(r.nanos),
            pct(r.nanos, total_nanos),
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>9} {:>7} {:>9} {:>9} {:>6} {:>12}",
        "total",
        total_firings,
        "100.0%",
        total_states,
        total_dedup,
        total_viol,
        format_nanos(total_nanos),
    );
    s
}

/// Renders the per-worker claim counts and contention counters of a
/// parallel enumeration run.
pub fn worker_summary(snap: &MetricsSnapshot) -> String {
    if snap.workers.is_empty() {
        return String::new();
    }
    let mut s = format!(
        "workers: {} (steals: {}, claim races: {})\n",
        snap.workers.len(),
        snap.counter(Counter::Steals),
        snap.counter(Counter::ClaimRaces),
    );
    let total: u64 = snap.workers.values().sum();
    for (w, claims) in &snap.workers {
        let share = if total == 0 {
            0.0
        } else {
            100.0 * *claims as f64 / total as f64
        };
        let _ = writeln!(s, "  worker {w}: {claims} claims ({share:.1}%)");
    }
    s
}

/// `1234567` ns → `"1.23ms"`, picking the unit that keeps 3 digits.
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Renders the full markdown dossier for `spec` from an
/// already-computed verification report (build one with
/// [`ccv_core::Session`]).
pub fn protocol_report(spec: &ProtocolSpec, v: &VerificationReport) -> String {
    let mut md = String::new();

    // --- Header -----------------------------------------------------------
    let _ = writeln!(md, "# Protocol dossier: {}\n", spec.name());
    let _ = writeln!(
        md,
        "- states: {} | characteristic function: {}",
        spec.num_states(),
        if spec.uses_sharing_detection() {
            "sharing-detection"
        } else {
            "null"
        }
    );
    let _ = writeln!(md, "- verdict: **{}**", v.verdict);
    let _ = writeln!(
        md,
        "- symbolic expansion: {} state visits -> {} essential states",
        v.visits(),
        v.num_essential()
    );
    if let Some(cc) = &v.crosscheck {
        let _ = writeln!(
            md,
            "- Theorem 1 crosscheck (n={}): {}/{} concrete states covered — {}",
            cc.n,
            cc.covered,
            cc.total_concrete,
            if cc.complete {
                "complete"
            } else {
                "INCOMPLETE"
            }
        );
    }
    let _ = writeln!(md);

    // --- State table --------------------------------------------------------
    let _ = writeln!(md, "## States\n");
    let _ = writeln!(md, "| state | short | attributes |");
    let _ = writeln!(md, "|---|---|---|");
    for s in spec.state_ids() {
        let info = spec.state(s);
        let mut attrs = Vec::new();
        if !info.attrs.holds_copy {
            attrs.push("invalid");
        } else {
            attrs.push("copy");
            if info.attrs.owned {
                attrs.push("owned");
            }
            if info.attrs.exclusive {
                attrs.push("exclusive");
            }
            if info.attrs.writable_silently {
                attrs.push("silent-write");
            }
        }
        let _ = writeln!(
            md,
            "| {} | {} | {} |",
            info.name,
            info.short,
            attrs.join(" ")
        );
    }

    // --- Processor transitions ----------------------------------------------
    let _ = writeln!(md, "\n## Processor transitions\n");
    let _ = writeln!(md, "| state | event | context | next | bus | data |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for s in spec.state_ids() {
        for e in ProcEvent::ALL {
            for c in GlobalCtx::ALL {
                let o = spec.outcome(s, e, c);
                if c != GlobalCtx::ALONE && o == spec.outcome(s, e, GlobalCtx::ALONE) {
                    continue;
                }
                let ctx = if spec.outcome(s, e, GlobalCtx::ALONE)
                    == spec.outcome(s, e, GlobalCtx::SHARED_CLEAN)
                    && spec.outcome(s, e, GlobalCtx::ALONE)
                        == spec.outcome(s, e, GlobalCtx::OWNED_ELSEWHERE)
                {
                    "any".to_string()
                } else {
                    c.to_string()
                };
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} | {} | {:?} |",
                    spec.state(s).short,
                    e,
                    ctx,
                    spec.state(o.next).short,
                    o.bus.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
                    o.data
                );
            }
        }
    }

    // --- Snoop reactions -----------------------------------------------------
    let _ = writeln!(md, "\n## Snoop reactions\n");
    let _ = writeln!(md, "| state | transaction | next | flags |");
    let _ = writeln!(md, "|---|---|---|---|");
    for s in spec.state_ids().skip(1) {
        for &b in spec.emitted_bus_ops() {
            let sn = spec.snoop(s, b);
            if sn.next == s && !sn.supplies_data && !sn.flushes_to_memory && !sn.receives_update {
                continue;
            }
            let mut flags = Vec::new();
            if sn.supplies_data {
                flags.push("supply");
            }
            if sn.flushes_to_memory {
                flags.push("flush");
            }
            if sn.receives_update {
                flags.push("update");
            }
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} |",
                spec.state(s).short,
                b,
                spec.state(sn.next).short,
                flags.join(" ")
            );
        }
    }

    // --- Verification ----------------------------------------------------------
    let _ = writeln!(md, "\n## Verification\n");
    let _ = writeln!(md, "Essential states (valid for any number of caches):\n");
    let _ = writeln!(md, "| # | state | F | cdata | mdata |");
    let _ = writeln!(md, "|---|---|---|---|---|");
    for (i, s) in v.graph.states.iter().enumerate() {
        let mut cdatas: Vec<&str> = s
            .classes()
            .iter()
            .filter(|(k, _)| !k.state.is_invalid())
            .map(|(k, _)| k.cdata.label())
            .collect();
        if s.classes().iter().any(|(k, _)| k.state.is_invalid()) {
            cdatas.push(CData::NoData.label());
        }
        let _ = writeln!(
            md,
            "| s{} | {} | {} | ({}) | {} |",
            i,
            s.render(spec),
            s.f,
            cdatas.join(", "),
            s.mdata
        );
    }
    let _ = writeln!(md, "\nTransitions:\n");
    for (from, to, labels) in v.graph.grouped_edges() {
        let _ = writeln!(md, "- s{from} —[{}]→ s{to}", labels.join(", "));
    }

    if v.verdict == Verdict::Erroneous {
        let _ = writeln!(md, "\n### Counterexamples\n");
        for r in v.reports.iter().take(3) {
            let _ = writeln!(md, "- **{}**", r.descriptions.join("; "));
            let _ = writeln!(md, "  - path: `{}`", r.path);
        }
        if let Some(w) = find_violation_witness(spec, 4, 1 << 22) {
            let _ = writeln!(md, "\n### Shortest executable violation\n");
            let _ = writeln!(md, "```text\n{}```", w.render(spec));
        }
    } else {
        // --- Witnesses per essential state -----------------------------------
        let _ = writeln!(md, "\n### Reachability witnesses\n");
        let _ = writeln!(
            md,
            "Each essential family instantiated by a concrete scenario:\n"
        );
        for (i, s) in v.graph.states.iter().enumerate() {
            if let Some(w) = find_state_witness(spec, s, 3, 1 << 20) {
                let script: Vec<String> = w
                    .steps
                    .iter()
                    .map(|st| {
                        format!(
                            "P{} {}",
                            st.cache,
                            match st.event {
                                ProcEvent::Read => "R",
                                ProcEvent::Write => "W",
                                ProcEvent::Replace => "Z",
                                ProcEvent::Complete => "C",
                            }
                        )
                    })
                    .collect();
                let _ = writeln!(
                    md,
                    "- s{i} {} — {} caches: `{}`",
                    s.render(spec),
                    w.n,
                    if script.is_empty() {
                        "initial state".to_string()
                    } else {
                        script.join(", ")
                    }
                );
            }
        }
    }

    // --- Recovery ---------------------------------------------------------------
    let recovery = analyze_recovery(spec, 200_000);
    let _ = writeln!(md, "\n## Recovery analysis\n");
    let _ = writeln!(
        md,
        "{} structurally permissible configurations: {} safe ({} reachable), {} in the invariant gap.\n",
        recovery.cases.len(),
        recovery.count(Tolerance::Safe),
        recovery.cases.iter().filter(|c| c.reachable).count(),
        recovery.count(Tolerance::Unsafe),
    );
    let gap: Vec<String> = recovery
        .invariant_gap()
        .map(|c| format!("`{}` (mdata={})", c.start.render(spec), c.start.mdata))
        .collect();
    if !gap.is_empty() {
        let _ = writeln!(
            md,
            "Invariant gap (never enter these): {}\n",
            gap.join(", ")
        );
    }

    // --- DOT ------------------------------------------------------------------
    let _ = writeln!(md, "## Global diagram (Graphviz)\n");
    let _ = writeln!(md, "```dot\n{}```", v.graph.to_dot(spec));

    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_core::Session;
    use ccv_model::protocols;

    fn render(spec: ProtocolSpec) -> String {
        let session = Session::new(spec);
        let v = session.verify();
        protocol_report(session.spec(), &v)
    }

    #[test]
    fn report_for_a_correct_protocol_has_all_sections() {
        let md = render(protocols::illinois());
        for section in [
            "# Protocol dossier: Illinois",
            "## States",
            "## Processor transitions",
            "## Snoop reactions",
            "## Verification",
            "### Reachability witnesses",
            "## Recovery analysis",
            "## Global diagram",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        assert!(md.contains("**VERIFIED**"));
        assert!(md.contains("(Shared+, Inv*)"));
    }

    #[test]
    fn report_for_a_mutant_contains_counterexamples() {
        let md = render(protocols::illinois_missing_writeback());
        assert!(md.contains("**ERRONEOUS**"));
        assert!(md.contains("### Counterexamples"));
        assert!(md.contains("### Shortest executable violation"));
        assert!(md.contains("witness with"));
    }

    #[test]
    fn crosscheck_summary_appears_when_attached() {
        let session = Session::new(protocols::illinois());
        let mut v = session.verify();
        ccv_enum::attach_crosscheck(
            session.spec(),
            &mut v,
            3,
            1 << 20,
            false,
            &ccv_observe::SinkHandle::disabled(),
        );
        let md = protocol_report(session.spec(), &v);
        assert!(md.contains("Theorem 1 crosscheck (n=3)"), "{md}");
        assert!(md.contains("complete"));
    }

    #[test]
    fn rule_table_totals_match_the_rule_firings_counter() {
        use ccv_enum::{enumerate, EnumOptions};
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let metrics = Arc::new(Metrics::new());
        let opts = EnumOptions::new(3)
            .sink(metrics.clone() as Arc<dyn ccv_observe::EventSink>)
            .rule_stats(true);
        enumerate(&protocols::illinois(), &opts);
        let snap = metrics.snapshot();

        let table = rule_table(&snap);
        let total_line = table
            .lines()
            .find(|l| l.starts_with("total"))
            .expect("totals row");
        let total: u64 = total_line
            .split_whitespace()
            .nth(1)
            .expect("firings column")
            .parse()
            .expect("numeric total");
        assert_eq!(total, snap.counter(Counter::RuleFirings));
        assert!(total > 0);
        // One row per fired rule, named STATE:EVENT.
        assert!(table.lines().any(|l| l.starts_with("Inv:R")), "{table}");
    }

    #[test]
    fn worker_summary_lists_every_worker() {
        use ccv_enum::{enumerate_parallel, EnumOptions};
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let metrics = Arc::new(Metrics::new());
        let opts = EnumOptions::new(3).sink(metrics.clone() as Arc<dyn ccv_observe::EventSink>);
        enumerate_parallel(&protocols::illinois(), &opts, 3);
        let s = worker_summary(&metrics.snapshot());
        assert!(s.contains("workers: 3"), "{s}");
        assert!(s.contains("steals:"), "{s}");
        assert!(s.contains("claim races:"), "{s}");
        for w in 0..3 {
            assert!(s.contains(&format!("worker {w}:")), "{s}");
        }
    }

    #[test]
    fn report_tables_are_well_formed_markdown() {
        let md = render(protocols::msi());
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "ragged table row: {line}");
        }
    }
}
