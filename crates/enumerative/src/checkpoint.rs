//! Checkpoint files for the explicit enumeration engines.
//!
//! A run stopped by the governor (budget, deadline, memory cap,
//! Ctrl-C) can persist its exact search state — the visited set, the
//! unexpanded frontier, the visit tally and the violations found so
//! far — and a later invocation can resume from it. Because engines
//! stop only at expansion granularity (a claimed state is never
//! dropped half-expanded), the resumed run expands exactly the states
//! the uninterrupted run would have: `distinct`, `visits` and the
//! violation *set* are identical however many times the run is split.
//!
//! # File format (`ccv-checkpoint-v1`)
//!
//! Line-oriented text. The first line is a JSON header binding the
//! checkpoint to its protocol and options:
//!
//! ```text
//! {"schema":"ccv-checkpoint-v1","protocol":"Illinois","protocol_hash":"91f4…","n":3,"dedup":"exact","visits":120,"distinct":64,"frontier":7}
//! ```
//!
//! then one line per record, tag first: `F <hex>` for each frontier
//! state (worklist order preserved), `V <hex>` for each visited state,
//! and `E {json}` for each violation found before the stop. The hash
//! is [`FxHasher`] over the protocol's canonical DSL rendering, so a
//! checkpoint refuses to resume against a protocol whose behaviour
//! differs — not just one with a different name.
//!
//! The file ends with an integrity trailer `C <hash>` — the
//! [`FxHasher`] digest of every preceding byte — so a torn or
//! bit-flipped checkpoint can never parse successfully. Files are
//! published via [`ccv_observe::persist::write_atomic`] (write-temp +
//! fsync + atomic rename), and a file that fails validation on load
//! is quarantined aside as `<path>.corrupt` rather than re-read —
//! see [`Checkpoint::load_or_quarantine`]. The write path carries the
//! `checkpoint.write` fault-injection site.

use crate::explicit::{Dedup, EnumError, EnumOptions, EnumResult, ResumeSeed};
use crate::fxhash::FxHasher;
use crate::packed::PackedState;
use ccv_model::{dsl, ProtocolSpec};
use ccv_observe::{persist, FaultHandle, Json};
use std::hash::Hasher;
use std::io::{self, Write as _};
use std::path::Path;

/// Schema tag written to (and required of) every checkpoint header.
pub const CHECKPOINT_SCHEMA: &str = "ccv-checkpoint-v1";

/// Hex digest of the protocol's canonical DSL rendering. Rendering
/// before hashing makes the digest independent of how the spec was
/// built (library constructor, DSL file, mutation) and sensitive to
/// anything that changes behaviour.
pub fn protocol_hash(spec: &ProtocolSpec) -> String {
    let mut h = FxHasher::default();
    h.write(dsl::to_dsl(spec).as_bytes());
    format!("{:016x}", h.finish())
}

fn dedup_name(dedup: Dedup) -> &'static str {
    match dedup {
        Dedup::Exact => "exact",
        Dedup::Counting => "counting",
    }
}

fn dedup_of_name(name: &str) -> Option<Dedup> {
    match name {
        "exact" => Some(Dedup::Exact),
        "counting" => Some(Dedup::Counting),
        _ => None,
    }
}

/// A persisted (or persistable) enumeration search state.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Protocol name, for human-readable mismatch errors.
    pub protocol: String,
    /// [`protocol_hash`] of the protocol the run explored.
    pub protocol_hash: String,
    /// Number of caches.
    pub n: usize,
    /// Pruning discipline of the stopped run.
    pub dedup: Dedup,
    /// Successor visits performed before the stop.
    pub visits: usize,
    /// Every claimed state (includes the frontier).
    pub visited: Vec<PackedState>,
    /// Claimed-but-unexpanded states, in worklist order.
    pub frontier: Vec<PackedState>,
    /// Violations found before the stop.
    pub errors: Vec<EnumError>,
}

impl Checkpoint {
    /// Builds a checkpoint from an early-stopped run, or `None` when
    /// the run completed (nothing to resume) or captured no snapshot
    /// (run without [`EnumOptions::capture_snapshot`]).
    pub fn of_result(
        spec: &ProtocolSpec,
        opts: &EnumOptions,
        r: &EnumResult,
    ) -> Option<Checkpoint> {
        let snapshot = r.snapshot.as_ref()?;
        Some(Checkpoint {
            protocol: spec.name().to_string(),
            protocol_hash: protocol_hash(spec),
            n: opts.n,
            dedup: opts.dedup,
            visits: r.visits,
            visited: snapshot.visited.clone(),
            frontier: snapshot.frontier.clone(),
            errors: r.errors.clone(),
        })
    }

    /// Checks that the checkpoint was taken from `spec` under options
    /// compatible with `opts` — same protocol behaviour (hash), cache
    /// count and pruning discipline. Resuming under different options
    /// would silently change what the totals mean.
    pub fn validate(&self, spec: &ProtocolSpec, opts: &EnumOptions) -> Result<(), String> {
        let hash = protocol_hash(spec);
        if self.protocol_hash != hash {
            return Err(format!(
                "checkpoint was taken from protocol '{}' (hash {}), which differs from '{}' (hash {hash})",
                self.protocol,
                self.protocol_hash,
                spec.name()
            ));
        }
        if self.n != opts.n {
            return Err(format!(
                "checkpoint enumerated n={} caches, this run requests n={}",
                self.n, opts.n
            ));
        }
        if self.dedup != opts.dedup {
            return Err(format!(
                "checkpoint used {} dedup, this run requests {}",
                dedup_name(self.dedup),
                dedup_name(opts.dedup)
            ));
        }
        Ok(())
    }

    /// Converts the checkpoint into the seed the engines resume from.
    pub fn into_seed(self) -> ResumeSeed {
        ResumeSeed {
            visited: self.visited,
            frontier: self.frontier,
            visits: self.visits,
            errors: self.errors,
        }
    }

    fn header(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::str(CHECKPOINT_SCHEMA)),
            ("protocol".to_string(), Json::str(&*self.protocol)),
            ("protocol_hash".to_string(), Json::str(&*self.protocol_hash)),
            ("n".to_string(), Json::int(self.n as u64)),
            ("dedup".to_string(), Json::str(dedup_name(self.dedup))),
            ("visits".to_string(), Json::int(self.visits as u64)),
            ("distinct".to_string(), Json::int(self.visited.len() as u64)),
            (
                "frontier".to_string(),
                Json::int(self.frontier.len() as u64),
            ),
        ])
    }

    /// Serialises the checkpoint to a writer, integrity trailer
    /// included.
    pub fn write_to(&self, out: &mut dyn io::Write) -> io::Result<()> {
        let mut buf: Vec<u8> = Vec::new();
        writeln!(buf, "{}", self.header().render_compact())?;
        for s in &self.frontier {
            writeln!(buf, "F {:x}", s.0)?;
        }
        for s in &self.visited {
            writeln!(buf, "V {:x}", s.0)?;
        }
        for e in &self.errors {
            let record = Json::Obj(vec![
                ("state".to_string(), Json::str(format!("{:x}", e.state.0))),
                (
                    "descriptions".to_string(),
                    Json::Arr(e.descriptions.iter().map(Json::str).collect()),
                ),
            ]);
            writeln!(buf, "E {}", record.render_compact())?;
        }
        let trailer = crate::fxhash::integrity_trailer(&buf);
        writeln!(buf, "{trailer}")?;
        out.write_all(&buf)
    }

    /// Parses a checkpoint from its textual form. The integrity
    /// trailer is verified first, so a torn or bit-flipped file is
    /// rejected before any of its content is believed.
    pub fn read_from(text: &str) -> Result<Checkpoint, String> {
        let body = crate::fxhash::verify_trailer(text)?;
        let mut lines = body.lines();
        let header_line = lines.next().ok_or("empty checkpoint file")?;
        let header =
            Json::parse(header_line).map_err(|e| format!("malformed checkpoint header: {e}"))?;
        let field = |key: &str| {
            header
                .get(key)
                .ok_or_else(|| format!("checkpoint header is missing '{key}'"))
        };
        let schema = field("schema")?.as_str().unwrap_or_default();
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "unsupported checkpoint schema '{schema}' (expected '{CHECKPOINT_SCHEMA}')"
            ));
        }
        let protocol = field("protocol")?
            .as_str()
            .ok_or("'protocol' must be a string")?
            .to_string();
        let protocol_hash = field("protocol_hash")?
            .as_str()
            .ok_or("'protocol_hash' must be a string")?
            .to_string();
        let n = field("n")?.as_u64().ok_or("'n' must be an integer")? as usize;
        let dedup_str = field("dedup")?.as_str().ok_or("'dedup' must be a string")?;
        let dedup = dedup_of_name(dedup_str)
            .ok_or_else(|| format!("unknown dedup discipline '{dedup_str}'"))?;
        let visits = field("visits")?
            .as_u64()
            .ok_or("'visits' must be an integer")? as usize;
        let distinct = field("distinct")?
            .as_u64()
            .ok_or("'distinct' must be an integer")? as usize;
        let frontier_len = field("frontier")?
            .as_u64()
            .ok_or("'frontier' must be an integer")? as usize;

        let parse_state = |hex: &str, line_no: usize| {
            u128::from_str_radix(hex.trim(), 16)
                .map(PackedState)
                .map_err(|e| format!("line {line_no}: bad state '{hex}': {e}"))
        };
        let mut visited = Vec::with_capacity(distinct);
        let mut frontier = Vec::with_capacity(frontier_len);
        let mut errors = Vec::new();
        for (i, line) in lines.enumerate() {
            let line_no = i + 2;
            if line.trim().is_empty() {
                continue;
            }
            let (tag, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: missing record tag"))?;
            match tag {
                "F" => frontier.push(parse_state(rest, line_no)?),
                "V" => visited.push(parse_state(rest, line_no)?),
                "E" => {
                    let record = Json::parse(rest)
                        .map_err(|e| format!("line {line_no}: bad error record: {e}"))?;
                    let state_hex = record
                        .get("state")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {line_no}: error record lacks 'state'"))?;
                    let descriptions = record
                        .get("descriptions")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| {
                            format!("line {line_no}: error record lacks 'descriptions'")
                        })?
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect();
                    errors.push(EnumError {
                        state: parse_state(state_hex, line_no)?,
                        descriptions,
                    });
                }
                other => return Err(format!("line {line_no}: unknown record tag '{other}'")),
            }
        }
        if visited.len() != distinct {
            return Err(format!(
                "checkpoint header promises {distinct} visited states, file carries {}",
                visited.len()
            ));
        }
        if frontier.len() != frontier_len {
            return Err(format!(
                "checkpoint header promises {frontier_len} frontier states, file carries {}",
                frontier.len()
            ));
        }
        Ok(Checkpoint {
            protocol,
            protocol_hash,
            n,
            dedup,
            visits,
            visited,
            frontier,
            errors,
        })
    }

    /// Writes the checkpoint to `path` atomically (write-temp +
    /// fsync + rename): a crash mid-save leaves the previous
    /// checkpoint intact, never a torn file under the live name.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with(path, &FaultHandle::disabled())
    }

    /// [`Checkpoint::save`] with fault injection armed (site
    /// `checkpoint.write`, kinds `io`, `torn` and `panic`).
    pub fn save_with(&self, path: &Path, fault: &FaultHandle) -> io::Result<()> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        persist::write_atomic(path, &buf, fault, "checkpoint.write")
    }

    /// Reads a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        Checkpoint::read_from(&text)
    }

    /// Reads a checkpoint from `path`; a file that fails validation
    /// (torn write, bit rot, wrong schema) is moved aside to
    /// `<path>.corrupt` so it is preserved for inspection but never
    /// silently re-read, and the error reports the quarantine.
    pub fn load_or_quarantine(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        match Checkpoint::read_from(&text) {
            Ok(ckpt) => Ok(ckpt),
            Err(e) => {
                let note = match persist::quarantine(path) {
                    Ok(q) => format!("; quarantined to {}", q.display()),
                    Err(qe) => format!("; quarantine failed: {qe}"),
                };
                Err(format!(
                    "checkpoint {} failed validation: {e}{note}",
                    path.display()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::enumerate;
    use ccv_model::protocols::{dragon, illinois};

    fn stopped_checkpoint() -> (ccv_model::ProtocolSpec, EnumOptions, Checkpoint) {
        let spec = illinois();
        let opts = EnumOptions::new(3)
            .exact()
            .max_states(10)
            .capture_snapshot(true);
        let r = enumerate(&spec, &opts);
        assert!(r.truncated);
        let ckpt = Checkpoint::of_result(&spec, &opts, &r).expect("snapshot captured");
        (spec, opts, ckpt)
    }

    #[test]
    fn roundtrips_through_text() {
        let (_, _, ckpt) = stopped_checkpoint();
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = Checkpoint::read_from(&text).unwrap();
        assert_eq!(back.protocol, ckpt.protocol);
        assert_eq!(back.protocol_hash, ckpt.protocol_hash);
        assert_eq!(back.n, ckpt.n);
        assert_eq!(back.dedup, ckpt.dedup);
        assert_eq!(back.visits, ckpt.visits);
        assert_eq!(back.visited, ckpt.visited);
        assert_eq!(back.frontier, ckpt.frontier);
        assert_eq!(back.errors.len(), ckpt.errors.len());
    }

    #[test]
    fn completed_runs_yield_no_checkpoint() {
        let spec = illinois();
        let opts = EnumOptions::new(2).capture_snapshot(true);
        let r = enumerate(&spec, &opts);
        assert!(!r.truncated);
        assert!(Checkpoint::of_result(&spec, &opts, &r).is_none());
    }

    #[test]
    fn validate_accepts_the_originating_run() {
        let (spec, opts, ckpt) = stopped_checkpoint();
        assert!(ckpt.validate(&spec, &opts).is_ok());
    }

    #[test]
    fn validate_rejects_a_different_protocol() {
        let (_, opts, ckpt) = stopped_checkpoint();
        let err = ckpt.validate(&dragon(), &opts).unwrap_err();
        assert!(err.contains("hash"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_options() {
        let (spec, opts, ckpt) = stopped_checkpoint();
        let wrong_n = EnumOptions::new(opts.n + 1).exact();
        assert!(ckpt.validate(&spec, &wrong_n).unwrap_err().contains("n="));
        let wrong_dedup = EnumOptions::new(opts.n);
        assert!(ckpt
            .validate(&spec, &wrong_dedup)
            .unwrap_err()
            .contains("dedup"));
    }

    #[test]
    fn corrupt_files_are_rejected_not_panicked_on() {
        let (_, _, ckpt) = stopped_checkpoint();
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        assert!(Checkpoint::read_from("").is_err());
        assert!(Checkpoint::read_from("not json").is_err());
        assert!(Checkpoint::read_from("{\"schema\":\"other\"}").is_err());
        // Truncated body: header promises more states than present.
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(Checkpoint::read_from(&truncated).is_err());
        // Garbage record tag.
        let garbled = format!("{}\nX deadbeef", text.lines().next().unwrap());
        assert!(Checkpoint::read_from(&garbled).is_err());
    }

    #[test]
    fn bit_flips_fail_the_integrity_trailer() {
        let (_, _, ckpt) = stopped_checkpoint();
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        // Flip one bit in a record byte: without the trailer this
        // could still parse as a (different) valid state.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(Checkpoint::read_from(&text).is_err());
    }

    #[test]
    fn torn_save_is_quarantined_on_load() {
        let (_, _, ckpt) = stopped_checkpoint();
        let path = std::env::temp_dir().join(format!("ccv-ckpt-torn-{}.ccvk", std::process::id()));
        let fault = FaultHandle::from_spec("checkpoint.write:torn").unwrap();
        ckpt.save_with(&path, &fault).unwrap();
        let err = Checkpoint::load_or_quarantine(&path).unwrap_err();
        assert!(err.contains("quarantined"), "{err}");
        assert!(!path.exists());
        let corrupt = path.with_extension("ccvk.corrupt");
        assert!(corrupt.exists());
        std::fs::remove_file(&corrupt).unwrap();
    }

    #[test]
    fn injected_io_error_fails_save_cleanly() {
        let (_, _, ckpt) = stopped_checkpoint();
        let path = std::env::temp_dir().join(format!("ccv-ckpt-io-{}.ccvk", std::process::id()));
        let fault = FaultHandle::from_spec("checkpoint.write:io").unwrap();
        let err = ckpt.save_with(&path, &fault).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(!path.exists());
        // The fault window is exhausted: the retry succeeds and the
        // saved file round-trips.
        ckpt.save_with(&path, &fault).unwrap();
        let back = Checkpoint::load_or_quarantine(&path).unwrap();
        assert_eq!(back.visited, ckpt.visited);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hash_tracks_protocol_behaviour_not_name() {
        let a = protocol_hash(&illinois());
        let b = protocol_hash(&illinois());
        assert_eq!(a, b);
        assert_ne!(a, protocol_hash(&dragon()));
        assert_ne!(
            a,
            protocol_hash(&ccv_model::protocols::illinois_missing_invalidation())
        );
    }
}
