//! The unified-API backend: this crate's explicit-state engines,
//! plugged into [`ccv_core::api`].
//!
//! `ccv-core` defines the versioned [`Request`] /
//! [`Response`](ccv_core::api::Response) surface
//! but cannot call the enumeration engines directly (the dependency
//! points the other way), so it reaches them through the
//! [`EnumBackend`] trait. This module implements that trait on top of
//! [`enumerate_resumed`] / [`enumerate_parallel_resumed`] and
//! [`attach_crosscheck`], including thread resolution and
//! checkpoint load/save, and installs the implementation process-wide
//! with [`install_api_backend`]:
//!
//! ```
//! use ccv_core::api::{Payload, ProtocolSource, Request};
//! use ccv_core::Session;
//!
//! ccv_enum::install_api_backend();
//! let req = Request::enumerate(ProtocolSource::Name("illinois".into()), 3);
//! match Session::run(&req).result {
//!     Ok(Payload::Enumerate(e)) => assert!(e.distinct > 5),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```
//!
//! Everything that would *panic* in the engines (cache counts outside
//! the packed encoding, protocols with too many states) is validated
//! here first and reported as a well-formed `bad_request` error — a
//! daemon serving untrusted requests must never fall over.

use std::path::Path;
use std::sync::Arc;

use ccv_core::api::{
    ApiError, CheckpointOutcome, CrosscheckResponse, EnumBackend, EnumErrorInfo, EnumerateResponse,
    Request, ResumeInfo, RunContext,
};
use ccv_core::VerificationReport;
use ccv_model::ProtocolSpec;

use crate::checkpoint::Checkpoint;
use crate::crosscheck::attach_crosscheck;
use crate::explicit::{enumerate_resumed, EnumOptions};
use crate::packed::MAX_CACHES;
use crate::parallel::enumerate_parallel_resumed;
use crate::spill::SpillConfig;

/// This crate's [`EnumBackend`] implementation.
struct ApiBackend;

/// Rejects parameters the packed engines would panic on.
fn check_limits(spec: &ProtocolSpec, n: usize) -> Result<(), ApiError> {
    if !(1..=MAX_CACHES).contains(&n) {
        return Err(ApiError::bad_request(format!(
            "n must be in 1..={MAX_CACHES} (got {n})"
        )));
    }
    if spec.num_states() > 16 {
        return Err(ApiError::bad_request(format!(
            "protocol '{}' has {} states; the packed encoding supports at most 16",
            spec.name(),
            spec.num_states()
        )));
    }
    Ok(())
}

/// Builds the engine options a request asks for.
fn enum_options(req: &Request, ctx: &RunContext) -> Result<EnumOptions, ApiError> {
    let o = &req.options;
    let mut opts = EnumOptions::new(o.n)
        .sink(ctx.sink.clone())
        .rule_stats(o.rule_stats)
        .stop_at_first_error(o.stop_at_first_error)
        .cancel(ctx.cancel.clone());
    if let Some(plan) = &o.fault_plan {
        let fault = ccv_observe::FaultHandle::from_spec(plan)
            .map_err(|e| ApiError::bad_request(format!("invalid fault_plan: {e}")))?;
        opts.common = opts.common.fault(fault);
    }
    if o.exact {
        opts = opts.exact();
    }
    if let Some(max) = o.max_states {
        opts = opts.max_states(max);
    }
    if let Some(deadline) = o.deadline {
        opts = opts.deadline(deadline);
    }
    if let Some(max_bytes) = o.max_bytes {
        opts = opts.max_bytes(max_bytes);
    }
    if let Some(k) = o.inject_panic {
        opts = opts.inject_panic(k);
    }
    if o.checkpoint_out.is_some() {
        opts = opts.capture_snapshot(true);
    }
    if let Some(dir) = &o.spill_dir {
        opts = opts.spill(SpillConfig::new(Path::new(dir), o.spill_threshold));
    }
    Ok(opts)
}

impl EnumBackend for ApiBackend {
    fn enumerate(
        &self,
        spec: &ProtocolSpec,
        req: &Request,
        ctx: &RunContext,
    ) -> Result<EnumerateResponse, ApiError> {
        let o = &req.options;
        check_limits(spec, o.n)?;
        let opts = enum_options(req, ctx)?;
        let (seed, resumed) = match &o.resume {
            Some(path) => {
                // A checkpoint that fails validation (torn write, bit
                // rot) is quarantined aside, never silently trusted.
                let ckpt =
                    Checkpoint::load_or_quarantine(Path::new(path)).map_err(ApiError::internal)?;
                ckpt.validate(spec, &opts).map_err(ApiError::internal)?;
                let info = ResumeInfo {
                    path: path.clone(),
                    visited: ckpt.visited.len(),
                    frontier: ckpt.frontier.len(),
                    visits: ckpt.visits,
                };
                (Some(ckpt.into_seed()), Some(info))
            }
            None => (None, None),
        };
        let requested = o.threads;
        // 0 = auto: one worker per core the scheduler grants us. A
        // spill-backed visited table is owned by the sequential
        // engine, so spill runs are single-threaded: an explicit
        // multi-thread request alongside a spill directory is a
        // contradiction we refuse rather than silently resolve, and
        // an auto request is resolved to one worker with a warning.
        let mut warnings: Vec<String> = Vec::new();
        let threads = if opts.spill.is_some() {
            if requested > 1 {
                return Err(ApiError::bad_request(format!(
                    "--spill-dir runs are sequential (the spill-backed visited \
                     table is single-owner); drop --threads {requested} or the \
                     spill directory"
                )));
            }
            if requested == 0 {
                warnings.push(
                    "--spill-dir forces a sequential run; --threads auto resolved to 1".to_string(),
                );
            }
            1
        } else if requested == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            requested
        };
        let r = if threads > 1 {
            enumerate_parallel_resumed(spec, &opts, threads, seed)
        } else {
            enumerate_resumed(spec, &opts, seed)
        };
        if let Some(degraded) = &r.spill_degraded {
            warnings.push(format!(
                "spill degraded to in-RAM operation: {degraded} — results are \
                 exact but the memory bound was lost"
            ));
        }
        let checkpoint = match &o.checkpoint_out {
            Some(path) => {
                let written = match Checkpoint::of_result(spec, &opts, &r) {
                    Some(ckpt) => {
                        ckpt.save_with(Path::new(path), &opts.common.fault)
                            .map_err(|e| {
                                ApiError::internal(format!("writing checkpoint {path}: {e}"))
                            })?;
                        true
                    }
                    None => false,
                };
                Some(CheckpointOutcome {
                    path: path.clone(),
                    written,
                })
            }
            None => None,
        };
        Ok(EnumerateResponse {
            protocol: spec.name().to_string(),
            n: o.n,
            exact: o.exact,
            threads,
            auto_threads: requested == 0,
            distinct: r.distinct,
            visits: r.visits,
            truncated: r.truncated,
            stopped: r.stopped.clone(),
            errors: r
                .errors
                .iter()
                .map(|e| EnumErrorInfo {
                    state: e.state.render(o.n, spec),
                    descriptions: e.descriptions.clone(),
                })
                .collect(),
            resumed,
            checkpoint,
            warnings,
        })
    }

    fn crosscheck(
        &self,
        spec: &ProtocolSpec,
        report: &mut VerificationReport,
        req: &Request,
        ctx: &RunContext,
    ) -> Result<CrosscheckResponse, ApiError> {
        let o = &req.options;
        check_limits(spec, o.n)?;
        let budget = o.max_states.unwrap_or(1 << 24);
        let cc = attach_crosscheck(spec, report, o.n, budget, o.stop_at_first_error, &ctx.sink);
        Ok(CrosscheckResponse {
            protocol: spec.name().to_string(),
            n: o.n,
            essential: report.num_essential(),
            total_concrete: cc.total_concrete,
            covered: cc.covered,
            complete: cc.complete(),
            uncovered_examples: cc.uncovered_examples,
            aborted: cc.aborted,
        })
    }

    fn supports_non_atomic(&self) -> bool {
        // The step kernel stalls transient caches on ordinary events
        // and fires their completion stimulus instead, so every
        // explicit engine enumerates interleavings natively.
        true
    }
}

/// The explicit-state backend as a trait object, for
/// [`ccv_core::api::SessionRunner::with_backend`].
pub fn api_backend() -> Arc<dyn EnumBackend> {
    Arc::new(ApiBackend)
}

/// Installs this crate's engines as the process-wide enumeration
/// backend of the unified API, so `Session::run` serves enumerate and
/// crosscheck requests. Idempotent — the first install wins and later
/// calls are no-ops, so every entry point (CLI, server, tests) calls
/// it unconditionally.
pub fn install_api_backend() {
    ccv_core::api::install_enum_backend(api_backend());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::enumerate;
    use ccv_core::api::{
        Action, ErrorCode, Payload, ProtocolSource, RequestOptions, SessionRunner,
    };
    use ccv_model::protocols::illinois;

    fn runner() -> SessionRunner {
        SessionRunner::with_backend(api_backend())
    }

    #[test]
    fn enumerate_request_matches_direct_run() {
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 3).options(RequestOptions {
            n: 3,
            threads: 1,
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        let direct = enumerate(&illinois(), &EnumOptions::new(3));
        match resp.result {
            Ok(Payload::Enumerate(e)) => {
                assert_eq!(e.distinct, direct.distinct);
                assert_eq!(e.visits, direct.visits);
                assert_eq!(e.threads, 1);
                assert!(!e.auto_threads);
                assert!(e.errors.is_empty());
                assert!(e.stopped.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn spill_request_routes_to_the_sequential_engine() {
        let dir = std::env::temp_dir().join(format!("ccv-api-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 4).options(RequestOptions {
            n: 4,
            threads: 0, // auto — spill must still force 1
            exact: true,
            spill_dir: Some(dir.to_string_lossy().into_owned()),
            spill_threshold: Some(256),
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        let direct = enumerate(&illinois(), &EnumOptions::new(4).exact());
        match resp.result {
            Ok(Payload::Enumerate(e)) => {
                assert_eq!(e.threads, 1, "spill runs are sequential");
                assert_eq!(e.distinct, direct.distinct);
                assert_eq!(e.visits, direct.visits);
                assert_eq!(e.warnings.len(), 1, "auto threads + spill warns");
                assert!(e.warnings[0].contains("sequential"), "{:?}", e.warnings);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_with_explicit_threads_is_a_bad_request() {
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 3).options(RequestOptions {
            n: 3,
            threads: 4,
            spill_dir: Some("/tmp/ccv-never-created".into()),
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Err(e) => {
                assert_eq!(e.code, ErrorCode::BadRequest);
                assert!(e.message.contains("sequential"), "{}", e.message);
            }
            Ok(_) => panic!("spill + --threads 4 must be rejected"),
        }
        assert!(
            !std::path::Path::new("/tmp/ccv-never-created").exists(),
            "rejected before the spill directory is created"
        );
    }

    #[test]
    fn spill_with_explicit_single_thread_runs_without_warning() {
        let dir = std::env::temp_dir().join(format!("ccv-api-spill1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 3).options(RequestOptions {
            n: 3,
            threads: 1, // explicitly sequential: nothing to warn about
            spill_dir: Some(dir.to_string_lossy().into_owned()),
            spill_threshold: Some(256),
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Ok(Payload::Enumerate(e)) => {
                assert_eq!(e.threads, 1);
                assert!(e.warnings.is_empty(), "{:?}", e.warnings);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_fault_plan_is_a_bad_request() {
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 3).options(RequestOptions {
            n: 3,
            threads: 1,
            fault_plan: Some("spill.flush:unknownkind".into()),
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Err(e) => {
                assert_eq!(e.code, ErrorCode::BadRequest);
                assert!(e.message.contains("fault_plan"), "{}", e.message);
            }
            Ok(_) => panic!("bad fault plan must be rejected"),
        }
    }

    #[test]
    fn spill_degradation_surfaces_as_a_warning() {
        let dir = std::env::temp_dir().join(format!("ccv-api-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = Request::enumerate(ProtocolSource::Spec(illinois()), 4).options(RequestOptions {
            n: 4,
            threads: 1,
            exact: true,
            spill_dir: Some(dir.to_string_lossy().into_owned()),
            spill_threshold: Some(256),
            fault_plan: Some("spill.flush:io".into()),
            ..RequestOptions::default()
        });
        let resp = runner().run(&req, &RunContext::default());
        let direct = enumerate(&illinois(), &EnumOptions::new(4).exact());
        match resp.result {
            Ok(Payload::Enumerate(e)) => {
                // Degraded, but exact: the verdict is unchanged.
                assert_eq!(e.distinct, direct.distinct);
                assert!(e.errors.is_empty());
                assert!(
                    e.warnings.iter().any(|w| w.contains("spill degraded")),
                    "{:?}",
                    e.warnings
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_worker_panic_yields_a_contained_stop() {
        for threads in [1usize, 4] {
            let req =
                Request::enumerate(ProtocolSource::Spec(illinois()), 3).options(RequestOptions {
                    n: 3,
                    threads,
                    fault_plan: Some("enum.worker:panic@5".into()),
                    ..RequestOptions::default()
                });
            let resp = runner().run(&req, &RunContext::default());
            match resp.result {
                Ok(Payload::Enumerate(e)) => {
                    assert!(e.truncated, "threads={threads}");
                    let stopped = e.stopped.expect("stop info");
                    assert_eq!(
                        stopped.cause,
                        ccv_observe::StopCause::WorkerPanic,
                        "threads={threads}"
                    );
                }
                other => panic!("threads={threads}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_atomic_protocols_enumerate_through_the_api() {
        use ccv_model::protocols::split_msi;
        let req =
            Request::enumerate(ProtocolSource::Spec(split_msi()), 3).options(RequestOptions {
                n: 3,
                threads: 1,
                ..RequestOptions::default()
            });
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Ok(Payload::Enumerate(e)) => {
                assert!(e.errors.is_empty(), "split-MSI is coherent");
                assert!(e.distinct > 10, "transient interleavings enumerated");
            }
            other => panic!("unexpected: {other:?}"),
        }
        let req = Request::crosscheck(ProtocolSource::Spec(split_msi()), 3);
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Ok(Payload::Crosscheck(c)) => assert!(c.complete, "Theorem 1 at n=3"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn crosscheck_request_reports_theorem_1() {
        let req = Request::crosscheck(ProtocolSource::Spec(illinois()), 3);
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Ok(Payload::Crosscheck(c)) => {
                assert!(c.complete);
                assert_eq!(c.covered, c.total_concrete);
                assert_eq!(c.essential, 5);
                assert!(c.aborted.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn out_of_range_n_is_rejected_not_panicked_on() {
        for n in [0, MAX_CACHES + 1] {
            let req = Request::enumerate(ProtocolSource::Spec(illinois()), n);
            let resp = runner().run(&req, &RunContext::default());
            match resp.result {
                Err(e) => assert_eq!(e.code, ErrorCode::BadRequest, "n={n}"),
                Ok(_) => panic!("n={n} should be rejected"),
            }
        }
    }

    #[test]
    fn missing_resume_file_is_a_well_formed_error() {
        let req = Request {
            action: Action::Enumerate,
            protocol: ProtocolSource::Spec(illinois()),
            options: RequestOptions {
                n: 3,
                resume: Some("/nonexistent/checkpoint.ccvk".into()),
                ..RequestOptions::default()
            },
            stream: false,
        };
        let resp = runner().run(&req, &RunContext::default());
        match resp.result {
            Err(e) => assert_eq!(e.code, ErrorCode::Internal),
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn install_makes_session_run_work() {
        install_api_backend();
        let req = Request::enumerate(ProtocolSource::Name("illinois".into()), 3);
        let resp = ccv_core::Session::run(&req);
        assert!(resp.result.is_ok());
        assert!(resp.is_conclusive());
    }
}
