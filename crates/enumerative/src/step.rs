//! Concrete transition semantics over packed global states.
//!
//! The explicit-state twin of `ccv-core::expand`: one cache originates
//! a processor event, the global context is evaluated *exactly* over
//! the other `n − 1` caches, the bus transaction is snooped by everyone
//! else, and the data context variables are updated per §2.4 of the
//! paper. Where the protocol leaves a choice — which of several
//! eligible caches supplies the block, or which of several
//! simultaneous write-backs reaches memory last — every resolution is
//! generated as its own successor, mirroring the symbolic engine's
//! branching so that the two engines explore the same behaviour
//! (Theorem 1 cross-check, experiment E7).
//!
//! # The allocation-free kernel
//!
//! This module is the innermost loop of both enumeration engines: it
//! runs once per `(cache, event)` stimulus, tens of millions of times
//! per verification run. Everything on that path is therefore bounded
//! statically and lives on the stack:
//!
//! * the "last write-back wins" memory resolutions collapse to at most
//!   two choices (`fresh`/`obsolete`), tracked as two flags;
//! * the fill-source choices collapse to at most one representative
//!   supplier per freshness (the successor state depends only on the
//!   source's freshness, never on its index) plus the memory fill;
//! * the per-stimulus successor dedup uses an inline
//!   `[PackedState; 4]` — 2 memory resolutions × 2 fill sources bound
//!   the candidates;
//! * stale accesses are recorded in a packed [`ErrorMask`] (`Copy`,
//!   one `u32`) instead of a `Vec`, so [`ConcreteStep`] itself is
//!   `Copy`.
//!
//! Violation checking is split the same way: [`is_violating`] is the
//! branch-only fast path the engines call per state, and
//! [`describe_violations`] formats human-readable descriptions only for
//! the rare states that actually violate. A warm `successors_into` call
//! performs **zero heap allocations** for non-violating states — the
//! `tests/no_alloc.rs` integration test pins this with a counting
//! global allocator.

use crate::packed::PackedState;
use ccv_model::{CData, DataOp, GlobalCtx, MData, ProcEvent, ProtocolSpec};

pub use ccv_model::{ConcreteError, ErrorMask};

/// One concrete successor: the event that produced it, the new state,
/// and any stale accesses observed on the way.
#[derive(Clone, Copy, Debug)]
pub struct ConcreteStep {
    /// The originating cache.
    pub cache: usize,
    /// The processor event.
    pub event: ProcEvent,
    /// The successor state.
    pub to: PackedState,
    /// Stale accesses during the step.
    pub errors: ErrorMask,
}

/// Evaluates the characteristic predicates from cache `i`'s
/// perspective — the paper's sharing-detection function `fᵢ`, computed
/// exactly.
pub fn context_of(spec: &ProtocolSpec, gs: PackedState, n: usize, i: usize) -> GlobalCtx {
    let mut others = false;
    let mut owner = false;
    for j in 0..n {
        if j == i {
            continue;
        }
        let attrs = spec.attrs(gs.state(j));
        others |= attrs.holds_copy;
        owner |= attrs.owned;
    }
    GlobalCtx {
        others_hold_copy: others,
        owner_exists: owner,
    }
}

/// Generates every concrete successor of `gs` (for all caches and all
/// events), appending into `out`. Distinct data-resolution choices that
/// produce identical successors are deduplicated.
///
/// Does not allocate once `out`'s capacity is warm.
pub fn successors_into(
    spec: &ProtocolSpec,
    gs: PackedState,
    n: usize,
    out: &mut Vec<ConcreteStep>,
) {
    for i in 0..n {
        // A transient cache is stalled: its processor events are the
        // synthesized self-loops, and its only real stimulus is the
        // completion of the pending bus transaction.
        if spec.is_transient(gs.state(i)) {
            step_into(spec, gs, n, i, ProcEvent::Complete, out);
            continue;
        }
        for event in ProcEvent::ALL {
            if gs.state(i).is_invalid() && event == ProcEvent::Replace {
                continue;
            }
            step_into(spec, gs, n, i, event, out);
        }
    }
}

/// Generates the successors of one `(cache, event)` stimulus.
///
/// Does not allocate once `out`'s capacity is warm: every intermediate
/// (flush resolutions, fill sources, per-stimulus dedup, stale-access
/// set) is a fixed-size stack value.
pub fn step_into(
    spec: &ProtocolSpec,
    gs: PackedState,
    n: usize,
    i: usize,
    event: ProcEvent,
    out: &mut Vec<ConcreteStep>,
) {
    let ctx = context_of(spec, gs, n, i);
    let outcome = spec.outcome(gs.state(i), event, ctx);
    let store = outcome.data.is_store();

    // Identify flushers and suppliers among the snooping caches. Only
    // the *freshness* of a flusher or supplier can influence the
    // successor state, so one representative per freshness suffices
    // (first in cache order, matching the historical choice order).
    let mut flush_fresh = false;
    let mut flush_obsolete = false;
    let mut supplier_fresh: Option<usize> = None;
    let mut supplier_obsolete: Option<usize> = None;
    if let Some(bus) = outcome.bus {
        for j in 0..n {
            if j == i || !spec.attrs(gs.state(j)).holds_copy {
                continue;
            }
            let sn = spec.snoop(gs.state(j), bus);
            if sn.flushes_to_memory {
                match gs.cdata(j) {
                    CData::Fresh => flush_fresh = true,
                    CData::Obsolete => flush_obsolete = true,
                    CData::NoData => unreachable!("flusher holds a copy"),
                }
            }
            if sn.supplies_data {
                match gs.cdata(j) {
                    CData::Fresh => {
                        supplier_fresh.get_or_insert(j);
                    }
                    CData::Obsolete => {
                        supplier_obsolete.get_or_insert(j);
                    }
                    CData::NoData => unreachable!("supplier holds a copy"),
                }
            }
        }
    }

    // The "last write-back wins" resolutions: at most two.
    let mut mdata_choices = [MData::Fresh; 2];
    let mut num_mdata = 0usize;
    if flush_fresh {
        mdata_choices[num_mdata] = MData::Fresh;
        num_mdata += 1;
    }
    if flush_obsolete {
        mdata_choices[num_mdata] = MData::Obsolete;
        num_mdata += 1;
    }
    if num_mdata == 0 {
        mdata_choices[0] = gs.mdata();
        num_mdata = 1;
    }

    // The fill sources ("arbitrarily choose Cj with a copy"): at most
    // one per freshness. `None` encodes a memory fill.
    let mut source_choices: [Option<usize>; 2] = [None; 2];
    let mut num_sources = 1usize;
    if outcome.data.is_fill() && (supplier_fresh.is_some() || supplier_obsolete.is_some()) {
        num_sources = 0;
        if let Some(j) = supplier_fresh {
            source_choices[num_sources] = Some(j);
            num_sources += 1;
        }
        if let Some(j) = supplier_obsolete {
            source_choices[num_sources] = Some(j);
            num_sources += 1;
        }
    }

    // Per-stimulus successor dedup: ≤ 2 × 2 candidates.
    let mut emitted = [PackedState::INITIAL; 4];
    let mut num_emitted = 0usize;
    for &mdata_after_flush in &mdata_choices[..num_mdata] {
        for &source in &source_choices[..num_sources] {
            let mut errors = ErrorMask::EMPTY;
            let mut next = gs.with_mdata(mdata_after_flush);

            // Coincident snoop transitions for every other cache.
            for j in 0..n {
                if j == i {
                    continue;
                }
                let (target, received) = match outcome.bus {
                    Some(bus) if !gs.state(j).is_invalid() => {
                        let sn = spec.snoop(gs.state(j), bus);
                        (sn.next, sn.receives_update)
                    }
                    _ => (gs.state(j), false),
                };
                next = next.with_state(j, target);
                let cd = if !spec.attrs(target).holds_copy {
                    CData::NoData
                } else if store {
                    if received {
                        CData::Fresh
                    } else {
                        CData::Obsolete
                    }
                } else {
                    gs.cdata(j)
                };
                next = next.with_cdata(j, cd);
            }

            // Memory effect of the originator's operation.
            match outcome.data {
                DataOp::Write { through, .. } => {
                    next = next.with_mdata(if through {
                        MData::Fresh
                    } else {
                        MData::Obsolete
                    });
                }
                DataOp::Evict { writeback: true } => {
                    next = next.with_mdata(match gs.cdata(i) {
                        CData::Fresh => MData::Fresh,
                        CData::Obsolete => MData::Obsolete,
                        CData::NoData => unreachable!("write-back without data"),
                    });
                }
                _ => {}
            }

            // The originator itself.
            let fill_cd = source
                .map(|j| gs.cdata(j))
                .unwrap_or(mdata_after_flush.as_cdata());
            let new_cd = match outcome.data {
                // A request phase moves no data and reads nothing: the
                // held copy (if any) rides along untouched.
                DataOp::None => gs.cdata(i),
                DataOp::Read { fill: false } => {
                    if gs.cdata(i) == CData::Obsolete {
                        errors.insert(ConcreteError::StaleReadHit { cache: i });
                    }
                    gs.cdata(i)
                }
                DataOp::Read { fill: true } => {
                    if fill_cd == CData::Obsolete {
                        errors.insert(ConcreteError::StaleFill { cache: i });
                    }
                    fill_cd
                }
                DataOp::Write { fill, .. } => {
                    if fill && fill_cd == CData::Obsolete {
                        errors.insert(ConcreteError::StaleFill { cache: i });
                    }
                    CData::Fresh
                }
                DataOp::Evict { .. } => CData::NoData,
            };
            next = next.with_state(i, outcome.next);
            next = next.with_cdata(
                i,
                if spec.attrs(outcome.next).holds_copy {
                    new_cd
                } else {
                    CData::NoData
                },
            );

            if !emitted[..num_emitted].contains(&next) {
                emitted[num_emitted] = next;
                num_emitted += 1;
                out.push(ConcreteStep {
                    cache: i,
                    event,
                    to: next,
                    errors,
                });
            }
        }
    }
}

/// Structural permissibility of a concrete state (§2.1) plus the
/// Definition 3 predicate, as a single branch-only pass: no duplicated
/// exclusive copy, no exclusive copy beside another copy, at most one
/// owner, no readable obsolete copy.
///
/// This is the per-state fast path of the enumeration engines; it never
/// allocates and exits early on the first violation. Equivalent to
/// `!describe_violations(spec, gs, n).is_empty()`.
#[inline]
pub fn is_violating(spec: &ProtocolSpec, gs: PackedState, n: usize) -> bool {
    let mut owners = 0usize;
    let mut copies = 0usize;
    let mut exclusive = false;
    for i in 0..n {
        let attrs = spec.attrs(gs.state(i));
        if !attrs.holds_copy {
            continue;
        }
        copies += 1;
        exclusive |= attrs.exclusive;
        // A transient cache is stalled and cannot read its copy, so an
        // obsolete copy in flight is not a Definition 3 violation.
        if gs.cdata(i) == CData::Obsolete && !spec.is_transient(gs.state(i)) {
            return true;
        }
        if attrs.owned {
            owners += 1;
            if owners > 1 {
                return true;
            }
        }
    }
    exclusive && copies > 1
}

/// Human-readable descriptions of every violation [`is_violating`]
/// detects. Allocates freely — callers reach it only for the rare
/// states where `is_violating` already returned `true` (or where a
/// transition carried a stale access).
pub fn describe_violations(spec: &ProtocolSpec, gs: PackedState, n: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut owners = 0usize;
    let copies = gs.copies(n, spec);
    for i in 0..n {
        let s = gs.state(i);
        let attrs = spec.attrs(s);
        if !attrs.holds_copy {
            continue;
        }
        if attrs.owned {
            owners += 1;
        }
        if attrs.exclusive && copies > 1 {
            out.push(format!(
                "cache {i} holds exclusive {} but {} copies exist",
                spec.state(s).name,
                copies
            ));
        }
        if gs.cdata(i) == CData::Obsolete && !spec.is_transient(s) {
            out.push(format!(
                "cache {i} holds a readable obsolete copy in state {}",
                spec.state(s).name
            ));
        }
    }
    if owners > 1 {
        out.push(format!("{owners} owned copies coexist"));
    }
    out
}

/// Back-compatible alias for [`describe_violations`].
pub fn check_concrete(spec: &ProtocolSpec, gs: PackedState, n: usize) -> Vec<String> {
    describe_violations(spec, gs, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::{all_buggy, berkeley, illinois};
    use ccv_model::StateId;

    fn sid(spec: &ProtocolSpec, name: &str) -> StateId {
        spec.state_by_name(name).unwrap()
    }

    fn errors_of(step: &ConcreteStep) -> Vec<ConcreteError> {
        step.errors.iter().collect()
    }

    #[test]
    fn context_is_exact() {
        let spec = illinois();
        let sh = sid(&spec, "Shared");
        let d = sid(&spec, "Dirty");
        let gs = PackedState::INITIAL.with_state(1, sh).with_state(2, d);
        let ctx = context_of(&spec, gs, 3, 0);
        assert!(ctx.others_hold_copy && ctx.owner_exists);
        let ctx2 = context_of(&spec, gs.with_state(2, StateId::INVALID), 3, 0);
        assert!(ctx2.others_hold_copy && !ctx2.owner_exists);
        let ctx3 = context_of(&spec, PackedState::INITIAL, 3, 0);
        assert_eq!(ctx3, GlobalCtx::ALONE);
    }

    #[test]
    fn lone_read_fills_valid_exclusive() {
        let spec = illinois();
        let mut out = Vec::new();
        step_into(&spec, PackedState::INITIAL, 2, 0, ProcEvent::Read, &mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.to.state(0), sid(&spec, "V-Ex"));
        assert_eq!(s.to.cdata(0), CData::Fresh);
        assert!(s.errors.is_empty());
    }

    #[test]
    fn read_miss_next_to_dirty_flushes_and_shares() {
        let spec = illinois();
        let d = sid(&spec, "Dirty");
        let gs = PackedState::INITIAL
            .with_state(1, d)
            .with_cdata(1, CData::Fresh)
            .with_mdata(MData::Obsolete);
        let mut out = Vec::new();
        step_into(&spec, gs, 2, 0, ProcEvent::Read, &mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        let sh = sid(&spec, "Shared");
        assert_eq!(s.to.state(0), sh);
        assert_eq!(s.to.state(1), sh);
        assert_eq!(s.to.mdata(), MData::Fresh, "Dirty snooper flushed");
        assert_eq!(s.to.cdata(0), CData::Fresh);
        assert!(s.errors.is_empty());
    }

    #[test]
    fn write_demotes_unupdated_copies() {
        // Two Shared copies; cache 0 writes: cache 1 must be
        // invalidated (Illinois), memory goes obsolete.
        let spec = illinois();
        let sh = sid(&spec, "Shared");
        let gs = PackedState::INITIAL
            .with_state(0, sh)
            .with_cdata(0, CData::Fresh)
            .with_state(1, sh)
            .with_cdata(1, CData::Fresh);
        let mut out = Vec::new();
        step_into(&spec, gs, 2, 0, ProcEvent::Write, &mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.to.state(0), sid(&spec, "Dirty"));
        assert_eq!(s.to.state(1), StateId::INVALID);
        assert_eq!(s.to.cdata(1), CData::NoData);
        assert_eq!(s.to.mdata(), MData::Obsolete);
    }

    #[test]
    fn berkeley_owner_supplies_without_flushing() {
        let spec = berkeley();
        let sd = sid(&spec, "Shared-Dirty");
        let gs = PackedState::INITIAL
            .with_state(1, sd)
            .with_cdata(1, CData::Fresh)
            .with_mdata(MData::Obsolete);
        let mut out = Vec::new();
        step_into(&spec, gs, 2, 0, ProcEvent::Read, &mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.to.cdata(0), CData::Fresh, "owner supplied fresh data");
        assert_eq!(s.to.mdata(), MData::Obsolete, "memory not updated");
        assert!(s.errors.is_empty());
    }

    #[test]
    fn stale_fill_is_reported() {
        // Memory obsolete, no copies anywhere: a read miss fills stale.
        let spec = illinois();
        let gs = PackedState::INITIAL.with_mdata(MData::Obsolete);
        let mut out = Vec::new();
        step_into(&spec, gs, 2, 0, ProcEvent::Read, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            errors_of(&out[0]),
            vec![ConcreteError::StaleFill { cache: 0 }]
        );
    }

    #[test]
    fn successors_skips_replace_of_absent_block() {
        let spec = illinois();
        let mut out = Vec::new();
        successors_into(&spec, PackedState::INITIAL, 2, &mut out);
        assert!(out.iter().all(|s| s.event != ProcEvent::Replace));
        // Exactly Read and Write per cache: 4 successors.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn check_concrete_flags_double_dirty() {
        let spec = illinois();
        let d = sid(&spec, "Dirty");
        let gs = PackedState::INITIAL
            .with_state(0, d)
            .with_cdata(0, CData::Fresh)
            .with_state(1, d)
            .with_cdata(1, CData::Fresh);
        let v = check_concrete(&spec, gs, 2);
        assert!(!v.is_empty());
        assert!(v.iter().any(|m| m.contains("exclusive")));
        assert!(v.iter().any(|m| m.contains("owned")));
        assert!(is_violating(&spec, gs, 2));
    }

    #[test]
    fn check_concrete_passes_clean_states() {
        let spec = illinois();
        let sh = sid(&spec, "Shared");
        let gs = PackedState::INITIAL
            .with_state(0, sh)
            .with_cdata(0, CData::Fresh)
            .with_state(1, sh)
            .with_cdata(1, CData::Fresh);
        assert!(check_concrete(&spec, gs, 2).is_empty());
        assert!(!is_violating(&spec, gs, 2));
    }

    #[test]
    fn is_violating_agrees_with_describe_violations_everywhere() {
        // The fast path and the describing path must induce the same
        // predicate over every reachable state of every bundled
        // protocol, correct and buggy alike.
        let mut specs = vec![illinois(), berkeley()];
        specs.extend(all_buggy().into_iter().map(|(s, _)| s));
        for spec in specs {
            for n in 1..=3 {
                for gs in crate::explicit::reachable_states(&spec, n, 1 << 20) {
                    assert_eq!(
                        is_violating(&spec, gs, n),
                        !describe_violations(&spec, gs, n).is_empty(),
                        "{} n={n} state={gs:?}",
                        spec.name()
                    );
                }
            }
        }
    }
}
