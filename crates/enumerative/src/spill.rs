//! Sharded spill-to-disk visited table for out-of-core enumeration.
//!
//! The in-RAM visited set is what makes explicit enumeration OOM past
//! n≈12: the table itself dwarfs the frontier. This module bounds the
//! resident footprint by splitting the set into [`FxHasher`]-addressed
//! shards and flushing any shard that outgrows its slice of the
//! configured budget to an immutable, sorted **segment file**. A run
//! with spilling enabled streams over arbitrarily large state spaces
//! with RAM roughly capped at the spill threshold (plus the frontier),
//! while membership stays exact — the reached set, visit counts and
//! violation sets are identical to an unconstrained in-RAM run.
//!
//! # Segment file format (`ccv-spill-segment-v1`)
//!
//! The same line-oriented text discipline as the
//! [`ccv-checkpoint-v1`](crate::checkpoint) format: a JSON header line
//!
//! ```text
//! {"schema":"ccv-spill-segment-v1","shard":3,"count":1024,"min":"0…0","max":"f…f"}
//! ```
//!
//! followed by `count` records `V <032x>\n` — one packed state each,
//! sorted ascending, **fixed width** (35 bytes) so record `i` lives at
//! a computable offset and a membership probe reads a single block —
//! and a final integrity trailer `C <hash>\n`: the [`FxHasher`] digest
//! of every preceding byte, so a torn or bit-flipped segment can never
//! pass [`read_segment`] validation. Segments are published with
//! [`persist::write_atomic`] (write-temp + fsync + rename), so a crash
//! mid-flush leaves no half-written segment under a live name.
//!
//! # Probing
//!
//! A lookup checks the shard's resident set first, then each of its
//! segments: a `min`/`max` range filter, then a binary search over
//! in-RAM *fence keys* (every [`FENCE_EVERY`]-th record) to locate the
//! one block that could hold the key, then one seek + block read +
//! scan. Segments are immutable once written, so no compaction or
//! write-back logic exists.
//!
//! # Failure discipline
//!
//! Spilling is an optimisation, not a correctness gate: any I/O error
//! flips the table into **degraded** mode — the failing operation
//! falls back to RAM-only behaviour (a failed flush keeps the shard
//! resident; a failed probe reports "absent", matching an empty
//! segment) and the first error is recorded for the caller to surface.
//! A degraded run may lose the memory bound or, after a failed probe,
//! re-expand a state, but it never silently drops reachable states.
//!
//! Both halves are fault-injectable: the `spill.flush` site covers
//! segment publication (`io`, `torn`, `panic` kinds) and the
//! `spill.probe` site covers membership reads (`io`, `slow`) — see
//! [`ccv_observe::fault`].

use crate::fxhash::{FxHashSet, FxHasher};
use crate::packed::PackedState;
use ccv_observe::{persist, FaultHandle, Json};
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Schema tag written to (and required of) every segment header.
pub const SPILL_SCHEMA: &str = "ccv-spill-segment-v1";

/// Number of hash shards (power of two, selected by the low bits of
/// the state's [`FxHasher`] digest).
pub const SHARDS: usize = 16;

/// One fence key is kept resident per this many segment records; a
/// probe reads at most this many records from disk.
pub const FENCE_EVERY: usize = 64;

/// Bytes per segment record: `"V "` + 32 hex digits + newline.
const REC_BYTES: usize = 35;

/// Default resident-byte budget when the caller sets none (256 MiB).
pub const DEFAULT_SPILL_THRESHOLD: u64 = 256 << 20;

/// Where and when to spill, carried inside
/// [`EnumOptions`](crate::explicit::EnumOptions).
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory receiving the segment files (created if absent).
    pub dir: PathBuf,
    /// Total resident-byte budget for the visited table; a shard
    /// whose resident set outgrows its `1/SHARDS` slice is flushed.
    pub threshold: u64,
}

impl SpillConfig {
    /// A spill configuration writing into `dir` under `threshold`
    /// resident bytes (`None` = [`DEFAULT_SPILL_THRESHOLD`]).
    pub fn new(dir: impl Into<PathBuf>, threshold: Option<u64>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            threshold: threshold.unwrap_or(DEFAULT_SPILL_THRESHOLD),
        }
    }
}

/// An immutable on-disk sorted run of one shard's states.
#[derive(Debug)]
struct Segment {
    file: std::fs::File,
    /// Byte offset of record 0 (just past the header line).
    data_start: u64,
    /// Number of records.
    count: usize,
    /// Smallest / largest state in the segment.
    min: u128,
    max: u128,
    /// Every `FENCE_EVERY`-th key (always including record 0).
    fences: Vec<u128>,
}

impl Segment {
    /// Whether `key` is in this segment: range filter, fence binary
    /// search, one block read.
    fn contains(&mut self, key: u128, block: &mut Vec<u8>) -> io::Result<bool> {
        if key < self.min || key > self.max {
            return Ok(false);
        }
        // Index of the last fence <= key; min <= key rules out "before
        // the first fence".
        let fence_idx = self.fences.partition_point(|&f| f <= key) - 1;
        let first = fence_idx * FENCE_EVERY;
        let records = FENCE_EVERY.min(self.count - first);
        block.resize(records * REC_BYTES, 0);
        self.file.seek(SeekFrom::Start(
            self.data_start + (first * REC_BYTES) as u64,
        ))?;
        self.file.read_exact(block)?;
        for rec in block.chunks_exact(REC_BYTES) {
            let hex = std::str::from_utf8(&rec[2..34])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let state = u128::from_str_radix(hex, 16)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if state == key {
                return Ok(true);
            }
            if state > key {
                break; // sorted: key cannot appear later
            }
        }
        Ok(false)
    }

    /// Reads every state back (snapshot capture).
    fn read_all(&mut self, out: &mut Vec<PackedState>) -> io::Result<()> {
        let mut text = String::new();
        self.file.seek(SeekFrom::Start(self.data_start))?;
        self.file.read_to_string(&mut text)?;
        let mut read = 0usize;
        for (i, line) in text.lines().take(self.count).enumerate() {
            let hex = line
                .strip_prefix("V ")
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("record {i}")))?;
            let state = u128::from_str_radix(hex, 16)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(PackedState(state));
            read += 1;
        }
        if read != self.count {
            // A torn segment must degrade the snapshot, not silently
            // shrink it.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("segment truncated: {read} of {} records", self.count),
            ));
        }
        Ok(())
    }
}

/// One hash shard: a resident set plus its flushed segments.
#[derive(Debug, Default)]
struct Shard {
    ram: FxHashSet<PackedState>,
    segments: Vec<Segment>,
}

/// The sharded, spillable visited table.
#[derive(Debug)]
pub struct SpillVisited {
    dir: PathBuf,
    /// Per-shard resident-byte budget (total threshold / SHARDS).
    shard_budget: u64,
    shards: Vec<Shard>,
    len: usize,
    segments_written: u64,
    spilled_bytes: u64,
    /// First I/O error, if any; set once and never cleared.
    error: Option<String>,
    /// Reused block buffer for probes.
    block: Vec<u8>,
    /// Fault injection (sites `spill.flush`, `spill.probe`).
    fault: FaultHandle,
}

/// Resident bytes of one shard's hash set (same accounting as the
/// in-RAM table: one control byte per slot besides the state).
fn ram_bytes(ram: &FxHashSet<PackedState>) -> u64 {
    (ram.capacity() * (std::mem::size_of::<PackedState>() + 1)) as u64
}

fn shard_of(key: PackedState) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

impl SpillVisited {
    /// An empty table spilling into `config.dir`. Directory creation
    /// failures degrade the table (it stays correct, RAM-only) rather
    /// than failing the run; callers wanting early validation create
    /// the directory themselves first.
    pub fn new(config: &SpillConfig) -> SpillVisited {
        SpillVisited::with_fault(config, FaultHandle::disabled())
    }

    /// [`SpillVisited::new`] with fault injection armed (sites
    /// `spill.flush` and `spill.probe`).
    pub fn with_fault(config: &SpillConfig, fault: FaultHandle) -> SpillVisited {
        let mut table = SpillVisited {
            dir: config.dir.clone(),
            shard_budget: (config.threshold / SHARDS as u64).max(1),
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            len: 0,
            segments_written: 0,
            spilled_bytes: 0,
            error: None,
            block: Vec::new(),
            fault,
        };
        if let Err(e) = std::fs::create_dir_all(&config.dir) {
            table.degrade(format!("creating {}: {e}", config.dir.display()));
        }
        table
    }

    fn degrade(&mut self, message: String) {
        if self.error.is_none() {
            self.error = Some(message);
        }
    }

    /// The first I/O error the table hit, if any. A degraded table is
    /// still exact on everything it holds, but may have lost its
    /// memory bound (failed flush) or re-admitted a spilled state
    /// (failed probe).
    pub fn io_error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Number of distinct states admitted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no state was admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Segment files written so far.
    pub fn segments_written(&self) -> u64 {
        self.segments_written
    }

    /// Bytes living in segment files.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Resident (in-RAM) footprint — what a memory governor should
    /// poll, since it is what flushing keeps bounded.
    pub fn approx_ram_bytes(&self) -> u64 {
        self.shards.iter().map(|s| ram_bytes(&s.ram)).sum::<u64>()
            + self.block.capacity() as u64
            + (self.shards.len() * std::mem::size_of::<Shard>()) as u64
    }

    /// Full footprint including on-disk segments — what the
    /// `visited_bytes` gauge reports.
    pub fn total_bytes(&self) -> u64 {
        self.approx_ram_bytes() + self.spilled_bytes
    }

    /// True if `key` was already admitted.
    pub fn contains(&mut self, key: PackedState) -> bool {
        let si = shard_of(key);
        if self.shards[si].ram.contains(&key) {
            return true;
        }
        if !self.shards[si].segments.is_empty() {
            if let Err(e) = self.fault.io("spill.probe") {
                // Same conservative discipline as a real probe error.
                self.degrade(format!("probing spill segment: {e}"));
                return false;
            }
        }
        let mut found = false;
        let mut failure = None;
        for seg in &mut self.shards[si].segments {
            match seg.contains(key.0, &mut self.block) {
                Ok(true) => {
                    found = true;
                    break;
                }
                Ok(false) => {}
                Err(e) => {
                    // "Absent" is the conservative answer: the state
                    // is re-admitted and re-expanded, never dropped.
                    failure = Some(format!("probing spill segment: {e}"));
                    break;
                }
            }
        }
        if let Some(message) = failure {
            self.degrade(message);
        }
        found
    }

    /// Admits `key`; returns true if it was new. May flush the key's
    /// shard to a new segment file.
    pub fn insert(&mut self, key: PackedState) -> bool {
        if self.contains(key) {
            return false;
        }
        let si = shard_of(key);
        self.shards[si].ram.insert(key);
        self.len += 1;
        if ram_bytes(&self.shards[si].ram) > self.shard_budget {
            if let Err(e) = self.flush_shard(si) {
                // Keep the shard resident: correct, just not bounded.
                self.degrade(format!("flushing spill shard {si}: {e}"));
            }
        }
        true
    }

    /// Writes shard `si`'s resident set to a fresh sorted segment and
    /// clears it.
    fn flush_shard(&mut self, si: usize) -> io::Result<()> {
        if self.shards[si].ram.is_empty() {
            return Ok(());
        }
        let mut keys: Vec<u128> = self.shards[si].ram.iter().map(|s| s.0).collect();
        keys.sort_unstable();
        let path = self
            .dir
            .join(format!("shard{si:02}-seg{:04}.ccvs", self.segments_written));
        let header = Json::Obj(vec![
            ("schema".to_string(), Json::str(SPILL_SCHEMA)),
            ("shard".to_string(), Json::int(si as u64)),
            ("count".to_string(), Json::int(keys.len() as u64)),
            ("min".to_string(), Json::str(format!("{:032x}", keys[0]))),
            (
                "max".to_string(),
                Json::str(format!("{:032x}", keys[keys.len() - 1])),
            ),
        ]);
        let header_line = header.render_compact();
        let mut content: Vec<u8> =
            Vec::with_capacity(header_line.len() + 1 + keys.len() * REC_BYTES + 24);
        writeln!(content, "{header_line}")?;
        for k in &keys {
            writeln!(content, "V {k:032x}")?;
        }
        let trailer = crate::fxhash::integrity_trailer(&content);
        writeln!(content, "{trailer}")?;
        // Publish atomically: a crash (or injected fault) mid-flush
        // can fail or tear the file, but never leaves a half-written
        // segment without the reader being able to tell.
        persist::write_atomic(&path, &content, &self.fault, "spill.flush")?;
        let fences: Vec<u128> = keys.iter().step_by(FENCE_EVERY).copied().collect();
        let data_start = (header_line.len() + 1) as u64;
        let bytes = content.len() as u64;
        // Open read-only: probes must not hold a writable handle.
        let file = std::fs::File::open(&path)?;
        let shard = &mut self.shards[si];
        shard.segments.push(Segment {
            file,
            data_start,
            count: keys.len(),
            min: keys[0],
            max: keys[keys.len() - 1],
            fences,
        });
        shard.ram.clear();
        shard.ram.shrink_to_fit();
        self.segments_written += 1;
        self.spilled_bytes += bytes;
        Ok(())
    }

    /// Every admitted state, resident and spilled — snapshot capture
    /// for checkpointing. `None` if a segment could not be read back
    /// (the table degrades and the run proceeds without a snapshot).
    pub fn states(&mut self) -> Option<Vec<PackedState>> {
        let mut out = Vec::with_capacity(self.len);
        let mut failure = None;
        'shards: for shard in &mut self.shards {
            out.extend(shard.ram.iter().copied());
            for seg in &mut shard.segments {
                if let Err(e) = seg.read_all(&mut out) {
                    failure = Some(format!("reading back spill segment: {e}"));
                    break 'shards;
                }
            }
        }
        match failure {
            Some(message) => {
                self.degrade(message);
                None
            }
            None => Some(out),
        }
    }
}

/// Parses and validates a segment file — exposed for tooling and
/// tests; the engine itself only reads segments it just wrote.
pub fn read_segment(path: &Path) -> Result<Vec<PackedState>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let body = crate::fxhash::verify_trailer(&text)?;
    let mut lines = body.lines();
    let header_line = lines.next().ok_or("empty segment file")?;
    let header = Json::parse(header_line).map_err(|e| format!("malformed segment header: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or_default();
    if schema != SPILL_SCHEMA {
        return Err(format!(
            "unsupported segment schema '{schema}' (expected '{SPILL_SCHEMA}')"
        ));
    }
    let count = header
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("segment header lacks 'count'")? as usize;
    let mut states = Vec::with_capacity(count);
    for (i, line) in lines.enumerate() {
        let hex = line
            .strip_prefix("V ")
            .ok_or_else(|| format!("record {i}: missing 'V ' tag"))?;
        let state = u128::from_str_radix(hex, 16).map_err(|e| format!("record {i}: {e}"))?;
        states.push(PackedState(state));
    }
    if states.len() != count {
        return Err(format!(
            "segment header promises {count} records, file carries {}",
            states.len()
        ));
    }
    if !states.windows(2).all(|w| w[0] < w[1]) {
        return Err("segment records are not sorted strictly ascending".into());
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccv-spill-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A deterministic pseudo-random state stream (splitmix-ish).
    fn states(count: usize) -> Vec<PackedState> {
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..count)
            .map(|_| {
                x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(1);
                PackedState((x as u128) << 32 | (x >> 17) as u128)
            })
            .collect()
    }

    #[test]
    fn behaves_like_a_set_across_flushes() {
        let dir = tmp_dir("set");
        // ~64-byte budget per shard: constant flushing.
        let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(1024)));
        let mut reference = std::collections::HashSet::new();
        let all = states(4000);
        for (i, &s) in all.iter().enumerate() {
            assert_eq!(table.insert(s), reference.insert(s), "insert #{i}");
        }
        // Second pass: everything is a duplicate, much of it on disk.
        for &s in &all {
            assert!(!table.insert(s));
            assert!(table.contains(s));
        }
        assert!(!table.contains(PackedState(u128::MAX)));
        assert_eq!(table.len(), reference.len());
        assert!(table.segments_written() > 0, "tiny budget must spill");
        assert!(table.spilled_bytes() > 0);
        assert!(table.io_error().is_none(), "{:?}", table.io_error());
        // Resident footprint stays near the budget even though the
        // full set is ~30x larger.
        assert!(table.approx_ram_bytes() < 64 * 1024);
        assert!(table.total_bytes() > table.approx_ram_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn states_reads_back_everything() {
        let dir = tmp_dir("states");
        let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(512)));
        let all = states(1000);
        for &s in &all {
            table.insert(s);
        }
        let mut got = table.states().expect("segments must read back");
        let mut want: Vec<PackedState> = all.clone();
        got.sort_unstable();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_files_validate_and_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(256)));
        for &s in &states(500) {
            table.insert(s);
        }
        assert!(table.segments_written() > 0);
        let mut from_disk = Vec::new();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let segment = read_segment(&path).unwrap_or_else(|e| panic!("{e}"));
            assert!(!segment.is_empty());
            from_disk.extend(segment);
        }
        // Disk plus RAM is exactly the admitted set.
        let resident = table.len() - from_disk.len();
        assert!(resident <= table.len());
        for s in from_disk {
            assert!(table.contains(s));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unwritable_directory_degrades_not_panics() {
        let mut table = SpillVisited::new(&SpillConfig::new("/proc/nonexistent/spill", Some(1024)));
        // Table works as a RAM set despite the dead directory.
        for &s in &states(200) {
            table.insert(s);
        }
        assert_eq!(table.len(), 200);
        assert!(table.io_error().is_some());
        assert_eq!(table.segments_written(), 0);
    }

    #[test]
    fn corrupt_segments_are_rejected_by_the_reader() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ccvs");
        // A file body with a valid trailer still fails its own
        // validation rules; one without a trailer fails up front.
        let sealed = |body: &str| {
            format!(
                "{body}{}\n",
                crate::fxhash::integrity_trailer(body.as_bytes())
            )
        };
        std::fs::write(&path, "not json\nV 00\n").unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::write(&path, sealed("not json\nV 00\n")).unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::write(&path, sealed("{\"schema\":\"other\"}\n")).unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::write(
            &path,
            sealed(&format!(
                "{{\"schema\":\"{SPILL_SCHEMA}\",\"count\":5}}\nV 1\n"
            )),
        )
        .unwrap();
        assert!(read_segment(&path).unwrap_err().contains("promises"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_segments_fail_the_integrity_trailer() {
        let dir = tmp_dir("torn");
        let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(256)));
        for &s in &states(500) {
            table.insert(s);
        }
        assert!(table.segments_written() > 0);
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let full = std::fs::read(&path).unwrap();
        // Tear the file at an arbitrary point: validation must fail.
        std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_flush_fault_degrades_not_fails() {
        let dir = tmp_dir("fault-flush");
        let fault = ccv_observe::FaultHandle::from_spec("spill.flush:io").unwrap();
        let mut table = SpillVisited::with_fault(&SpillConfig::new(&dir, Some(512)), fault);
        let all = states(1000);
        for &s in &all {
            table.insert(s);
        }
        // The first flush failed and the table degraded, but it still
        // behaves as an exact set.
        assert!(table.io_error().unwrap().contains("injected fault"));
        for &s in &all {
            assert!(table.contains(s));
        }
        assert_eq!(table.len(), {
            let mut v = all.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_probe_fault_readmits_but_stays_safe() {
        let dir = tmp_dir("fault-probe");
        let fault = ccv_observe::FaultHandle::from_spec("spill.probe:io").unwrap();
        let mut table = SpillVisited::with_fault(&SpillConfig::new(&dir, Some(256)), fault);
        let all = states(600);
        for &s in &all {
            table.insert(s);
        }
        assert!(table.segments_written() > 0);
        // One probe failed somewhere along the way: the table degraded
        // and conservatively re-admitted, never dropped, a state.
        assert!(table.io_error().unwrap().contains("injected fault"));
        assert!(
            table.len() >= {
                let mut v = all.clone();
                v.sort_unstable();
                v.dedup();
                v.len()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fence_blocks_cover_exact_boundaries() {
        // Counts straddling FENCE_EVERY multiples exercise the last
        // short block and the fence binary search edges.
        for count in [1, 63, 64, 65, 128, 129] {
            let dir = tmp_dir(&format!("fence{count}"));
            let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(16)));
            let all = states(count);
            for &s in &all {
                table.insert(s);
            }
            for &s in &all {
                assert!(table.contains(s), "count={count}");
            }
            assert!(table.io_error().is_none());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
