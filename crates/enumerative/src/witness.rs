//! Concrete witnesses for verification failures.
//!
//! A symbolic counterexample is a path over composite states — a
//! *family* of scenarios. For debugging, engineers want one concrete
//! scenario: "with 2 caches, P0 writes, P1 reads, P0 evicts, P1 reads
//! stale". This module searches the explicit state space (smallest
//! machine first) for the shortest concrete path that exhibits a
//! violation — or that lands in a given symbolic target family — and
//! renders it as a step-by-step scenario.
//!
//! Because the explicit engine shares its transition semantics with
//! the symbolic one, Theorem 1 guarantees that any violation the
//! symbolic engine reports within the `n`-cache fragment is findable
//! here; conversely a witness constitutes independent, replayable
//! evidence for the symbolic verdict.

use crate::crosscheck::concrete_covered_by;
use crate::fxhash::FxHashMap;
use crate::packed::PackedState;
use crate::step::{check_concrete, successors_into, ConcreteStep};
use ccv_core::Composite;
use ccv_model::{ProcEvent, ProtocolSpec};
use std::collections::VecDeque;

/// One step of a concrete scenario.
#[derive(Clone, Debug)]
pub struct WitnessStep {
    /// Originating cache.
    pub cache: usize,
    /// Processor event issued.
    pub event: ProcEvent,
    /// Global state after the step.
    pub after: PackedState,
    /// Violation descriptions triggered by this step (stale accesses
    /// and permissibility violations of the resulting state).
    pub problems: Vec<String>,
}

/// A concrete counterexample scenario.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Number of caches in the scenario.
    pub n: usize,
    /// The steps, starting from the all-invalid state.
    pub steps: Vec<WitnessStep>,
}

impl Witness {
    /// Renders the scenario as a numbered script.
    pub fn render(&self, spec: &ProtocolSpec) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "witness with {} caches (block initially uncached, memory fresh):",
            self.n
        );
        for (i, s) in self.steps.iter().enumerate() {
            let action = match s.event {
                ProcEvent::Read => "reads the block",
                ProcEvent::Write => "writes the block",
                ProcEvent::Replace => "evicts the block",
                ProcEvent::Complete => "completes its pending bus transaction",
            };
            let _ = write!(
                out,
                "  {}. P{} {action} -> {}",
                i + 1,
                s.cache,
                s.after.render(self.n, spec)
            );
            if !s.problems.is_empty() {
                let _ = write!(out, "   !! {}", s.problems.join("; "));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// True iff the final step carries violations.
    pub fn ends_in_violation(&self) -> bool {
        self.steps.last().is_some_and(|s| !s.problems.is_empty())
    }
}

/// BFS over the explicit state space of `n` caches until `accept`
/// fires for a `(step, problems)` pair; returns the path from the
/// initial state.
fn bfs_witness(
    spec: &ProtocolSpec,
    n: usize,
    max_states: usize,
    mut accept: impl FnMut(&ConcreteStep, &[String]) -> bool,
) -> Option<Witness> {
    // parent: state -> (previous state, step, problems)
    let mut parent: FxHashMap<PackedState, (PackedState, usize, ProcEvent, Vec<String>)> =
        FxHashMap::default();
    let mut queue: VecDeque<PackedState> = VecDeque::new();
    let init = PackedState::INITIAL;
    parent.insert(init, (init, usize::MAX, ProcEvent::Read, Vec::new()));
    queue.push_back(init);
    let mut buf: Vec<ConcreteStep> = Vec::new();

    let reconstruct =
        |parent: &FxHashMap<PackedState, (PackedState, usize, ProcEvent, Vec<String>)>,
         mut state: PackedState|
         -> Vec<WitnessStep> {
            let mut rev = Vec::new();
            loop {
                let (prev, cache, event, problems) = parent.get(&state).expect("linked").clone();
                if cache == usize::MAX {
                    break;
                }
                rev.push(WitnessStep {
                    cache,
                    event,
                    after: state,
                    problems,
                });
                state = prev;
            }
            rev.reverse();
            rev
        };

    while let Some(current) = queue.pop_front() {
        buf.clear();
        successors_into(spec, current, n, &mut buf);
        for s in &buf {
            let mut problems: Vec<String> = s.errors.iter().map(|e| format!("{e:?}")).collect();
            problems.extend(check_concrete(spec, s.to, n));
            let is_new = !parent.contains_key(&s.to);
            if is_new {
                parent.insert(s.to, (current, s.cache, s.event, problems.clone()));
            }
            if accept(s, &problems) {
                // Accept may fire on an already-known state reached by a
                // violating transition; link through a fresh key in that
                // case by reconstructing via the current edge.
                let mut steps = reconstruct(&parent, current);
                steps.push(WitnessStep {
                    cache: s.cache,
                    event: s.event,
                    after: s.to,
                    problems,
                });
                return Some(Witness { n, steps });
            }
            if is_new {
                if parent.len() >= max_states {
                    return None;
                }
                queue.push_back(s.to);
            }
        }
    }
    None
}

/// Finds the shortest concrete violation scenario, trying machine
/// sizes `1..=max_n` in order. Returns `None` for correct protocols.
///
/// ```
/// use ccv_enum::find_violation_witness;
/// use ccv_model::protocols;
///
/// // The forgotten-write-back bug shows up on a single cache:
/// // write, evict (data lost), read stale memory.
/// let w = find_violation_witness(
///     &protocols::illinois_missing_writeback(), 4, 1 << 20,
/// ).expect("a violation scenario exists");
/// assert_eq!(w.n, 1);
/// assert!(w.ends_in_violation());
///
/// // ...while correct Illinois has none at any tested size.
/// assert!(find_violation_witness(&protocols::illinois(), 3, 1 << 20).is_none());
/// ```
pub fn find_violation_witness(
    spec: &ProtocolSpec,
    max_n: usize,
    max_states: usize,
) -> Option<Witness> {
    for n in 1..=max_n {
        if let Some(w) = bfs_witness(spec, n, max_states, |_, problems| !problems.is_empty()) {
            return Some(w);
        }
    }
    None
}

/// Finds the shortest concrete path into the family of `target`
/// (a symbolic composite state), trying sizes `1..=max_n`.
pub fn find_state_witness(
    spec: &ProtocolSpec,
    target: &Composite,
    max_n: usize,
    max_states: usize,
) -> Option<Witness> {
    for n in 1..=max_n {
        if let Some(w) = bfs_witness(spec, n, max_states, |s, _| {
            concrete_covered_by(spec, s.to, n, target)
        }) {
            return Some(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_core::{run_expansion, Options};
    use ccv_model::protocols::{all_buggy, illinois, illinois_missing_writeback};

    #[test]
    fn correct_protocol_has_no_violation_witness() {
        assert!(find_violation_witness(&illinois(), 3, 1 << 20).is_none());
    }

    #[test]
    fn every_mutant_has_a_violation_witness() {
        for (spec, why) in all_buggy() {
            let w = find_violation_witness(&spec, 4, 1 << 20)
                .unwrap_or_else(|| panic!("{} ({why}): no witness", spec.name()));
            assert!(w.ends_in_violation(), "{}", spec.name());
            assert!(!w.steps.is_empty(), "{}", spec.name());
            // The rendering names every step's processor.
            let text = w.render(&spec);
            assert!(text.contains("P0"), "{}: {text}", spec.name());
        }
    }

    #[test]
    fn writeback_witness_is_the_classic_scenario() {
        // Write, evict (losing the data), read stale.
        let spec = illinois_missing_writeback();
        let w = find_violation_witness(&spec, 2, 1 << 20).expect("witness");
        assert!(
            w.steps.len() <= 4,
            "expected a short scenario, got {}",
            w.steps.len()
        );
        assert!(w.steps.iter().any(|s| s.event == ProcEvent::Write));
        assert!(w
            .steps
            .iter()
            .any(|s| s.event == ProcEvent::Replace || s.event == ProcEvent::Read));
    }

    #[test]
    fn every_essential_state_of_illinois_is_concretely_reachable() {
        // Theorem 1 gives coverage; witnesses give the converse —
        // every essential family has a concrete member reachable at
        // small n (the essential states are not over-approximations).
        let spec = illinois();
        let exp = run_expansion(&spec, &Options::default());
        for target in exp.essential_states() {
            let w = find_state_witness(&spec, target, 3, 1 << 20)
                .unwrap_or_else(|| panic!("{} unreachable", target.render(&spec)));
            // Path found; final state is in the family by construction.
            assert!(w.steps.len() <= 6 || !w.steps.is_empty());
        }
    }

    #[test]
    fn witness_sizes_start_small() {
        // The missing-writeback bug manifests with a single cache.
        let spec = illinois_missing_writeback();
        let w = find_violation_witness(&spec, 4, 1 << 20).unwrap();
        assert_eq!(w.n, 1, "a uniprocessor already exhibits the bug");
    }
}
