//! # ccv-enum — explicit-state enumeration baselines
//!
//! The conventional reachability analysis the paper improves upon
//! (§3.1): exhaustive exploration of the Cartesian-product state space
//! of a **fixed** number of caches, here in three flavours:
//!
//! * [`explicit::enumerate`] — the sequential worklist of the paper's
//!   Figure 2, with exact-duplicate pruning ([`Dedup::Exact`]) or the
//!   counting-equivalence pruning of Definition 5
//!   ([`Dedup::Counting`]);
//! * [`parallel::enumerate_parallel`] — a lock-free work-stealing
//!   parallel search (persistent worker pool + the [`visited`]
//!   claim-once set) producing identical reachable sets, visit counts
//!   and violation sets for any thread count;
//! * [`crosscheck()`](crosscheck::crosscheck) — the Theorem 1 validation harness: every state
//!   reached explicitly must be covered by a symbolic essential state
//!   of `ccv-core`.
//!
//! These engines exist to *measure* the state-space explosion the
//! symbolic method avoids (experiment E4) and to cross-validate the
//! two implementations against each other (experiment E7). They track
//! the same augmented data-consistency variables (`cdata`/`mdata`,
//! Definition 4) and detect the same violations.
//!
//! ```
//! use ccv_enum::{enumerate, EnumOptions};
//! use ccv_model::protocols;
//!
//! let spec = protocols::illinois();
//! // Exhaustive search over all interleavings of 3 caches.
//! let result = enumerate(&spec, &EnumOptions::new(3));
//! assert!(result.is_clean());
//! // The explicit space for 3 caches is already far larger than the
//! // symbolic one (5 essential states for any number of caches).
//! assert!(result.distinct > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod checkpoint;
pub mod crosscheck;
pub mod explicit;
pub mod fxhash;
pub mod packed;
pub mod parallel;
pub mod spill;
pub mod step;
pub mod visited;
pub mod witness;

pub use api::{api_backend, install_api_backend};
pub use checkpoint::{protocol_hash, Checkpoint, CHECKPOINT_SCHEMA};
pub use crosscheck::{
    attach_crosscheck, concrete_covered_by, crosscheck, crosscheck_with, CrossCheck,
};
pub use explicit::{
    enumerate, enumerate_resumed, naive_visit_estimate, raw_state_space, reachable_states, Dedup,
    EnumError, EnumOptions, EnumResult, EnumSnapshot, ResumeSeed,
};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use packed::{PackedState, MAX_CACHES};
pub use parallel::{enumerate_parallel, enumerate_parallel_resumed};
pub use spill::{read_segment, SpillConfig, SpillVisited, DEFAULT_SPILL_THRESHOLD, SPILL_SCHEMA};
pub use step::{
    check_concrete, context_of, describe_violations, is_violating, step_into, successors_into,
    ConcreteError, ConcreteStep, ErrorMask,
};
pub use visited::{AtomicVisited, ClaimStats};
pub use witness::{find_state_witness, find_violation_witness, Witness, WitnessStep};
