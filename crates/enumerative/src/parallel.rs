//! Parallel level-synchronous frontier search.
//!
//! The state-space explosion that motivates the paper (§3.1) is also a
//! textbook data-parallel workload: each BFS level's states can be
//! expanded independently. This engine parallelises the exhaustive
//! search of `explicit.rs` with `crossbeam` scoped threads and a
//! sharded visited set behind `parking_lot` mutexes:
//!
//! * the frontier is split into near-equal chunks, one per worker;
//! * each worker expands its chunk, canonicalises successors and
//!   claims them in the visited shard selected by the state's hash
//!   (shard count ≫ thread count keeps contention negligible);
//! * newly claimed states form the worker's slice of the next
//!   frontier; slices are concatenated at the level barrier.
//!
//! The reachable set, distinct-state count and visit count are
//! identical to the sequential engine's (claiming is atomic per state,
//! so exactly one worker wins each state); only discovery *order* —
//! and therefore error ordering — differs. The unit tests assert the
//! sequential/parallel agreement.

use crate::explicit::{Dedup, EnumError, EnumOptions, EnumResult};
use crate::fxhash::{FxHashSet, FxHasher};
use crate::packed::{PackedState, MAX_CACHES};
use crate::step::{check_concrete, successors_into, ConcreteStep};
use ccv_model::ProtocolSpec;
use ccv_observe::{Counter, Gauge, Phase};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};

/// Number of visited-set shards (power of two).
const SHARDS: usize = 64;

/// A sharded concurrent visited set.
struct Visited {
    shards: Vec<Mutex<FxHashSet<PackedState>>>,
}

impl Visited {
    fn new() -> Visited {
        Visited {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard_of(state: PackedState) -> usize {
        let mut h = FxHasher::default();
        state.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Atomically claims `state`; returns `true` iff it was new.
    fn claim(&self, state: PackedState) -> bool {
        self.shards[Self::shard_of(state)].lock().insert(state)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Runs the exhaustive search in parallel on `threads` workers.
///
/// Produces the same `distinct`/`visits` totals and the same violation
/// *set* as [`crate::explicit::enumerate`]; error ordering may differ.
/// `stop_at_first_error` stops at a level boundary (workers finish
/// their chunk first).
pub fn enumerate_parallel(spec: &ProtocolSpec, opts: &EnumOptions, threads: usize) -> EnumResult {
    assert!(opts.n >= 1 && opts.n <= MAX_CACHES);
    assert!(threads >= 1);

    let canon = |s: PackedState| match opts.dedup {
        Dedup::Exact => s,
        Dedup::Counting => s.canonical(opts.n),
    };

    let sink = &opts.common.sink;
    let visited = Visited::new();
    let mut frontier: Vec<PackedState> = Vec::new();
    let mut errors: Vec<EnumError> = Vec::new();
    let mut visits = 0usize;
    let mut dedup_misses = 0u64;
    let mut level = 0usize;
    // Frontier states claimed per worker slot, across all levels.
    let mut worker_claims: Vec<u64> = vec![0; threads];
    let truncated = AtomicBool::new(false);
    let stop = AtomicBool::new(false);

    sink.phase_enter(Phase::Enumerate);
    sink.gauge(Gauge::Threads, threads as u64);

    let init = PackedState::INITIAL;
    visited.claim(canon(init));
    let init_violations = check_concrete(spec, init, opts.n);
    if !init_violations.is_empty() {
        errors.push(EnumError {
            state: init,
            descriptions: init_violations,
        });
        if opts.common.stop_at_first_error {
            stop.store(true, Ordering::Relaxed);
        }
    }
    frontier.push(init);
    sink.frontier(0, 1);

    while !frontier.is_empty() && !stop.load(Ordering::Relaxed) {
        let chunk_size = frontier.len().div_ceil(threads);
        let chunks: Vec<&[PackedState]> = frontier.chunks(chunk_size).collect();

        // (next-frontier slice, errors, visit count) per worker.
        let results: Vec<(Vec<PackedState>, Vec<EnumError>, usize)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|chunk| {
                        let visited = &visited;
                        let truncated = &truncated;
                        scope.spawn(move |_| {
                            let mut next: Vec<PackedState> = Vec::new();
                            let mut errs: Vec<EnumError> = Vec::new();
                            let mut my_visits = 0usize;
                            let mut buf: Vec<ConcreteStep> = Vec::new();
                            for &state in *chunk {
                                buf.clear();
                                successors_into(spec, state, opts.n, &mut buf);
                                for s in &buf {
                                    my_visits += 1;
                                    let mut descriptions: Vec<String> = s
                                        .errors
                                        .iter()
                                        .map(|e| format!("{e:?} via cache {} {}", s.cache, s.event))
                                        .collect();
                                    if visited.claim(canon(s.to)) {
                                        descriptions.extend(check_concrete(spec, s.to, opts.n));
                                        next.push(s.to);
                                    }
                                    if !descriptions.is_empty() {
                                        errs.push(EnumError {
                                            state: s.to,
                                            descriptions,
                                        });
                                    }
                                }
                            }
                            if visited.len() >= opts.common.budget {
                                truncated.store(true, Ordering::Relaxed);
                            }
                            (next, errs, my_visits)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("worker panicked");

        frontier.clear();
        for (i, (next, errs, v)) in results.into_iter().enumerate() {
            visits += v;
            worker_claims[i] += next.len() as u64;
            dedup_misses += next.len() as u64;
            if !errs.is_empty() {
                errors.extend(errs);
                if opts.common.stop_at_first_error {
                    stop.store(true, Ordering::Relaxed);
                }
            }
            frontier.extend(next);
        }
        if !frontier.is_empty() {
            level += 1;
            sink.frontier(level, frontier.len());
        }
        if truncated.load(Ordering::Relaxed) {
            break;
        }
    }

    let distinct = visited.len();
    if sink.is_enabled() {
        sink.count(Counter::Visits, visits as u64);
        sink.count(Counter::DedupMisses, dedup_misses);
        sink.count(Counter::DedupHits, visits as u64 - dedup_misses);
        sink.count(Counter::Errors, errors.len() as u64);
        sink.gauge(Gauge::DistinctStates, distinct as u64);
        sink.gauge(Gauge::Levels, level as u64 + 1);
        for (i, claims) in worker_claims.iter().enumerate() {
            sink.worker(i, *claims);
        }
        sink.progress(&format!(
            "enumerated {} distinct states in {} visits across {} levels ({} workers)",
            distinct,
            visits,
            level + 1,
            threads
        ));
    }
    sink.phase_exit(Phase::Enumerate);

    EnumResult {
        n: opts.n,
        distinct,
        visits,
        errors,
        truncated: truncated.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::enumerate;
    use ccv_model::protocols::{dragon, illinois, illinois_missing_writeback};

    #[test]
    fn parallel_matches_sequential_distinct_and_visits() {
        let spec = illinois();
        for n in 1..=4 {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            for threads in [1, 2, 4] {
                let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), threads);
                assert_eq!(par.distinct, seq.distinct, "n={n} t={threads}");
                assert_eq!(par.visits, seq.visits, "n={n} t={threads}");
                assert!(par.is_clean());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_counting_dedup() {
        let spec = dragon();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert_eq!(par.distinct, seq.distinct);
        assert_eq!(par.visits, seq.visits);
    }

    #[test]
    fn parallel_finds_the_same_bugs() {
        let spec = illinois_missing_writeback();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert!(!seq.errors.is_empty());
        assert!(!par.errors.is_empty());
        // Same violating state set (order-insensitive).
        let mut a: Vec<u128> = seq.errors.iter().map(|e| e.state.0).collect();
        let mut b: Vec<u128> = par.errors.iter().map(|e| e.state.0).collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let spec = illinois();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 1);
        assert_eq!(seq.distinct, par.distinct);
        assert_eq!(seq.visits, par.visits);
    }
}
