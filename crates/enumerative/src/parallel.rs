//! Lock-free work-stealing parallel reachability.
//!
//! The state-space explosion that motivates the paper (§3.1) is a
//! textbook irregular-parallel workload: every reached state can be
//! expanded independently, but the frontier's shape is unpredictable.
//! Earlier revisions parallelised the search level-synchronously —
//! respawning a thread pool per BFS level and joining at a barrier —
//! which serialised on the barrier exactly when levels were narrow and
//! on the mutex-sharded visited set exactly when they were wide. This
//! engine replaces both:
//!
//! * **one persistent worker pool** (`std::thread::scope`) spawned
//!   once per run, never joined until the search finishes;
//! * **work stealing** instead of level barriers: each worker owns a
//!   private LIFO stack plus a small mutex-guarded public deque. A
//!   worker expands from its stack, periodically publishing the older
//!   half when its public deque is empty; idle workers steal batches
//!   from the *front* of a victim's public deque (round-robin victim
//!   scan, `try_lock` only — a busy victim is skipped, never waited
//!   on), so the critical sections are short and amortised over up to
//!   `STEAL_CAP` states;
//! * **a lock-free visited set** ([`AtomicVisited`]): claiming a state
//!   is one CAS on the fast path, and the distinct-state count is a
//!   single atomic counter instead of locking all shards;
//! * **cooperative termination**: a global `pending` counter tracks
//!   claimed-but-unexpanded states (incremented *before* a state is
//!   pushed, decremented *after* its expansion completes), so an idle
//!   worker that observes `pending == 0` knows the search is complete.
//!   Budget exhaustion and `stop_at_first_error` propagate through a
//!   shared stop flag checked once per expansion.
//!
//! # Equivalence with the sequential engine
//!
//! Both engines enqueue the *dedup key* of each successor (the state
//! itself under [`Dedup::Exact`], its canonical form under
//! [`Dedup::Counting`]), and [`AtomicVisited::claim`] admits each key
//! exactly once, so the set of expanded states — and therefore the
//! `distinct`/`visits` totals and the violation *set* — is identical
//! to [`crate::explicit::enumerate`]'s, for any thread count.
//! Discovery *order*, and with it error ordering, is scheduling-
//! dependent. The unit tests and the differential matrix in
//! `tests/tests/engines_agree.rs` pin the agreement.

use crate::explicit::{Dedup, EnumError, EnumOptions, EnumResult};
use crate::packed::{PackedState, MAX_CACHES};
use crate::step::{describe_violations, is_violating, successors_into, ConcreteStep};
use crate::visited::AtomicVisited;
use ccv_model::ProtocolSpec;
use ccv_observe::{Counter, Gauge, Phase};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Most states moved from a worker's public deque to its private
/// stack in one refill.
const REFILL_BATCH: usize = 64;

/// Most states taken from a victim in one steal.
const STEAL_CAP: usize = 64;

/// Shared search state, borrowed by every worker.
struct Shared<'a> {
    spec: &'a ProtocolSpec,
    n: usize,
    dedup: Dedup,
    budget: usize,
    stop_at_first_error: bool,
    visited: AtomicVisited,
    /// Claimed-but-unexpanded states; 0 ⇒ the search is complete.
    pending: AtomicUsize,
    stop: AtomicBool,
    truncated: AtomicBool,
    /// One public deque per worker. Owners push/pop at the back,
    /// thieves steal batches from the front.
    queues: Vec<Mutex<VecDeque<PackedState>>>,
}

impl Shared<'_> {
    #[inline]
    fn canon(&self, s: PackedState) -> PackedState {
        match self.dedup {
            Dedup::Exact => s,
            Dedup::Counting => s.canonical(self.n),
        }
    }
}

/// Per-worker tallies, merged after the pool joins.
#[derive(Default)]
struct WorkerStats {
    visits: usize,
    dedup_hits: u64,
    dedup_misses: u64,
    claims: u64,
    steals: u64,
    claim_races: u64,
    peak_pending: usize,
    errors: Vec<EnumError>,
}

/// Moves up to [`REFILL_BATCH`] states from the worker's own public
/// deque (back first — the most recently published, preserving
/// locality) onto its private stack and pops one.
fn refill(w: usize, sh: &Shared<'_>, local: &mut Vec<PackedState>) -> Option<PackedState> {
    let mut q = sh.queues[w].lock();
    for _ in 0..REFILL_BATCH {
        match q.pop_back() {
            Some(s) => local.push(s),
            None => break,
        }
    }
    drop(q);
    local.pop()
}

/// Scans the other workers round-robin and steals up to half of the
/// first non-empty public deque found (front first — the states
/// published earliest, farthest from the victim's working set).
fn steal(
    w: usize,
    sh: &Shared<'_>,
    local: &mut Vec<PackedState>,
    stats: &mut WorkerStats,
) -> Option<PackedState> {
    let k = sh.queues.len();
    for off in 1..k {
        let victim = (w + off) % k;
        let Some(mut q) = sh.queues[victim].try_lock() else {
            continue;
        };
        let take = q.len().div_ceil(2).min(STEAL_CAP);
        if take == 0 {
            continue;
        }
        for _ in 0..take {
            local.push(q.pop_front().expect("len checked"));
        }
        drop(q);
        stats.steals += 1;
        return local.pop();
    }
    None
}

/// Expands one state: generates its successors, records stale-access
/// and structural violations, claims each successor's dedup key and
/// schedules the newly claimed ones.
fn expand(
    state: PackedState,
    w: usize,
    sh: &Shared<'_>,
    local: &mut Vec<PackedState>,
    buf: &mut Vec<ConcreteStep>,
    stats: &mut WorkerStats,
) {
    buf.clear();
    successors_into(sh.spec, state, sh.n, buf);
    for s in buf.iter() {
        stats.visits += 1;
        if !s.errors.is_empty() {
            let descriptions: Vec<String> = s
                .errors
                .iter()
                .map(|e| format!("{e:?} via cache {} {}", s.cache, s.event))
                .collect();
            stats.errors.push(EnumError {
                state: s.to,
                descriptions,
            });
            if sh.stop_at_first_error {
                sh.stop.store(true, Ordering::Release);
            }
        }
        let key = sh.canon(s.to);
        let claim = sh.visited.claim(key);
        stats.claim_races += claim.races as u64;
        if !claim.claimed {
            stats.dedup_hits += 1;
            continue;
        }
        stats.dedup_misses += 1;
        stats.claims += 1;
        if is_violating(sh.spec, key, sh.n) {
            stats.errors.push(EnumError {
                state: key,
                descriptions: describe_violations(sh.spec, key, sh.n),
            });
            if sh.stop_at_first_error {
                sh.stop.store(true, Ordering::Release);
            }
        }
        if sh.visited.len() >= sh.budget {
            sh.truncated.store(true, Ordering::Relaxed);
            sh.stop.store(true, Ordering::Release);
        } else {
            let now_pending = sh.pending.fetch_add(1, Ordering::Relaxed) + 1;
            stats.peak_pending = stats.peak_pending.max(now_pending);
            local.push(key);
        }
    }

    // Publish the older (shallower) half of a grown private stack so
    // idle workers have something to steal; only when our own public
    // deque has drained, so publication stays rare on the hot path.
    if local.len() > 1 {
        if let Some(mut q) = sh.queues[w].try_lock() {
            if q.is_empty() {
                let give = local.len() / 2;
                for s in local.drain(..give) {
                    q.push_back(s);
                }
            }
        }
    }
}

/// One worker: expand from the private stack, refill from the own
/// public deque, steal when both are empty, exit when the global
/// pending count hits zero (or a stop is signalled).
fn worker_loop(w: usize, sh: &Shared<'_>) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut local: Vec<PackedState> = Vec::new();
    let mut buf: Vec<ConcreteStep> = Vec::new();
    let mut idle = 0u32;
    loop {
        if sh.stop.load(Ordering::Relaxed) {
            break;
        }
        let state = local
            .pop()
            .or_else(|| refill(w, sh, &mut local))
            .or_else(|| steal(w, sh, &mut local, &mut stats));
        let Some(state) = state else {
            if sh.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // All remaining work sits in other workers' private
            // stacks. Back off progressively: stay polite on machines
            // with fewer cores than workers.
            idle += 1;
            if idle <= 8 {
                std::thread::yield_now();
            } else {
                let micros = (50u64 << (idle - 8).min(5)).min(1_000);
                std::thread::sleep(Duration::from_micros(micros));
            }
            continue;
        };
        idle = 0;
        expand(state, w, sh, &mut local, &mut buf, &mut stats);
        sh.pending.fetch_sub(1, Ordering::AcqRel);
    }
    stats
}

/// Runs the exhaustive search on `threads` persistent workers with
/// work stealing.
///
/// Produces the same `distinct`/`visits` totals and the same violation
/// *set* as [`crate::explicit::enumerate`] for any thread count; error
/// ordering is scheduling-dependent. `stop_at_first_error` propagates
/// cooperatively, so a few extra states may be expanded (and extra
/// errors recorded) before all workers observe the stop.
pub fn enumerate_parallel(spec: &ProtocolSpec, opts: &EnumOptions, threads: usize) -> EnumResult {
    assert!(opts.n >= 1 && opts.n <= MAX_CACHES);
    assert!(threads >= 1);
    assert!(
        spec.num_states() <= 16,
        "packed encoding supports at most 16 protocol states"
    );

    let sink = &opts.common.sink;
    sink.phase_enter(Phase::Enumerate);
    sink.gauge(Gauge::Threads, threads as u64);

    let sh = Shared {
        spec,
        n: opts.n,
        dedup: opts.dedup,
        budget: opts.common.budget,
        stop_at_first_error: opts.common.stop_at_first_error,
        visited: AtomicVisited::new(),
        pending: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
    };

    // The coordinator claims the initial state itself so the per-worker
    // claim counts sum to `distinct − 1`.
    let mut errors: Vec<EnumError> = Vec::new();
    let init = sh.canon(PackedState::INITIAL);
    sh.visited.claim(init);
    sink.frontier(0, 1);
    if is_violating(spec, init, opts.n) {
        errors.push(EnumError {
            state: init,
            descriptions: describe_violations(spec, init, opts.n),
        });
        if opts.common.stop_at_first_error {
            sh.stop.store(true, Ordering::Release);
        }
    }
    if !sh.stop.load(Ordering::Relaxed) {
        sh.pending.store(1, Ordering::Relaxed);
        sh.queues[0].lock().push_back(init);
    }

    let mut worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let sh = &sh;
                scope.spawn(move || worker_loop(w, sh))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut visits = 0usize;
    let mut dedup_hits = 0u64;
    let mut dedup_misses = 0u64;
    let mut steals = 0u64;
    let mut claim_races = 0u64;
    let mut peak_pending = 1usize;
    for stats in &mut worker_stats {
        visits += stats.visits;
        dedup_hits += stats.dedup_hits;
        dedup_misses += stats.dedup_misses;
        steals += stats.steals;
        claim_races += stats.claim_races;
        peak_pending = peak_pending.max(stats.peak_pending);
        errors.append(&mut stats.errors);
    }

    let distinct = sh.visited.len();
    if sink.is_enabled() {
        sink.count(Counter::Visits, visits as u64);
        sink.count(Counter::DedupHits, dedup_hits);
        sink.count(Counter::DedupMisses, dedup_misses);
        sink.count(Counter::Errors, errors.len() as u64);
        sink.count(Counter::Steals, steals);
        sink.count(Counter::ClaimRaces, claim_races);
        sink.gauge(Gauge::DistinctStates, distinct as u64);
        sink.gauge(Gauge::PeakPending, peak_pending as u64);
        for (i, stats) in worker_stats.iter().enumerate() {
            sink.worker(i, stats.claims);
        }
        sink.progress(&format!(
            "enumerated {distinct} distinct states in {visits} visits \
             ({threads} workers, {steals} steals)"
        ));
    }
    sink.phase_exit(Phase::Enumerate);

    EnumResult {
        n: opts.n,
        distinct,
        visits,
        errors,
        truncated: sh.truncated.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::enumerate;
    use ccv_model::protocols::{dragon, illinois, illinois_missing_writeback};

    #[test]
    fn parallel_matches_sequential_distinct_and_visits() {
        let spec = illinois();
        for n in 1..=4 {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            for threads in [1, 2, 4] {
                let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), threads);
                assert_eq!(par.distinct, seq.distinct, "n={n} t={threads}");
                assert_eq!(par.visits, seq.visits, "n={n} t={threads}");
                assert!(par.is_clean());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_counting_dedup() {
        let spec = dragon();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert_eq!(par.distinct, seq.distinct);
        assert_eq!(par.visits, seq.visits);
    }

    #[test]
    fn parallel_finds_the_same_bugs() {
        let spec = illinois_missing_writeback();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert!(!seq.errors.is_empty());
        assert!(!par.errors.is_empty());
        // Same violating state set (order-insensitive).
        let mut a: Vec<u128> = seq.errors.iter().map(|e| e.state.0).collect();
        let mut b: Vec<u128> = par.errors.iter().map(|e| e.state.0).collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let spec = illinois();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 1);
        assert_eq!(seq.distinct, par.distinct);
        assert_eq!(seq.visits, par.visits);
    }

    #[test]
    fn oversubscribed_pool_still_agrees() {
        // More workers than states in early levels: most workers spend
        // the run stealing or idling; counts must still be exact.
        let spec = dragon();
        let seq = enumerate(&spec, &EnumOptions::new(2).exact());
        let par = enumerate_parallel(&spec, &EnumOptions::new(2).exact(), 8);
        assert_eq!(par.distinct, seq.distinct);
        assert_eq!(par.visits, seq.visits);
    }

    #[test]
    fn budget_truncates_parallel_run() {
        let spec = illinois();
        let r = enumerate_parallel(&spec, &EnumOptions::new(4).max_states(5), 4);
        assert!(r.truncated);
        assert!(!r.is_clean());
        assert!(r.distinct >= 5);
    }
}
