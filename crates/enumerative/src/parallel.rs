//! Lock-free work-stealing parallel reachability.
//!
//! The state-space explosion that motivates the paper (§3.1) is a
//! textbook irregular-parallel workload: every reached state can be
//! expanded independently, but the frontier's shape is unpredictable.
//! Earlier revisions parallelised the search level-synchronously —
//! respawning a thread pool per BFS level and joining at a barrier —
//! which serialised on the barrier exactly when levels were narrow and
//! on the mutex-sharded visited set exactly when they were wide. This
//! engine replaces both:
//!
//! * **one persistent worker pool** (`std::thread::scope`) spawned
//!   once per run, never joined until the search finishes;
//! * **work stealing** instead of level barriers: each worker owns a
//!   private LIFO stack plus a small mutex-guarded public deque. A
//!   worker expands from its stack, periodically publishing the older
//!   half when its public deque is empty; idle workers steal batches
//!   from the *front* of a victim's public deque (round-robin victim
//!   scan, `try_lock` only — a busy victim is skipped, never waited
//!   on), so the critical sections are short and amortised over up to
//!   `STEAL_CAP` states;
//! * **a lock-free visited set** ([`AtomicVisited`]): claiming a state
//!   is one CAS on the fast path, and the distinct-state count is a
//!   single atomic counter instead of locking all shards;
//! * **cooperative termination**: a global `pending` counter tracks
//!   claimed-but-unexpanded states (incremented *before* a state is
//!   pushed, decremented *after* its expansion completes), so an idle
//!   worker that observes `pending == 0` knows the search is complete.
//!   Budget exhaustion and `stop_at_first_error` propagate through a
//!   shared stop flag checked once per expansion.
//!
//! # Equivalence with the sequential engine
//!
//! Both engines enqueue the *dedup key* of each successor (the state
//! itself under [`Dedup::Exact`], its canonical form under
//! [`Dedup::Counting`]), and [`AtomicVisited::claim`] admits each key
//! exactly once, so the set of expanded states — and therefore the
//! `distinct`/`visits` totals and the violation *set* — is identical
//! to [`crate::explicit::enumerate`]'s, for any thread count.
//! Discovery *order*, and with it error ordering, is scheduling-
//! dependent. The unit tests and the differential matrix in
//! `tests/tests/engines_agree.rs` pin the agreement.

use crate::explicit::{Dedup, EnumError, EnumOptions, EnumResult, EnumSnapshot, ResumeSeed};
use crate::packed::{PackedState, MAX_CACHES};
use crate::step::{describe_violations, is_violating, step_into, successors_into, ConcreteStep};
use crate::visited::AtomicVisited;
use ccv_model::{ProcEvent, ProtocolSpec};
use ccv_observe::{
    Counter, FaultHandle, FaultKind, Gauge, Governor, Phase, RuleStat, SinkHandle, SpanKind,
    StopCause, Track,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Most states moved from a worker's public deque to its private
/// stack in one refill.
const REFILL_BATCH: usize = 64;

/// Most states taken from a victim in one steal.
const STEAL_CAP: usize = 64;

/// Shared search state, borrowed by every worker.
struct Shared<'a> {
    spec: &'a ProtocolSpec,
    n: usize,
    dedup: Dedup,
    budget: usize,
    stop_at_first_error: bool,
    visited: AtomicVisited,
    /// The run's resource governor: deadline, memory cap, cancel
    /// token, first-stop-cause arbitration.
    gov: Governor,
    /// Test-only fault injection: worker 0 panics once its visit count
    /// reaches this threshold (see [`EnumOptions::inject_panic`]).
    panic_after: Option<usize>,
    /// Plan-driven fault injection (site `enum.worker`); the injected
    /// panic unwinds into the pool's regular containment.
    fault: FaultHandle,
    /// Claimed-but-unexpanded states; 0 ⇒ the search is complete.
    pending: AtomicUsize,
    stop: AtomicBool,
    /// One public deque per worker. Owners push/pop at the back,
    /// thieves steal batches from the front.
    queues: Vec<Mutex<VecDeque<PackedState>>>,
    /// The run's sink, shared so workers can emit timeline spans.
    sink: &'a SinkHandle,
    /// `sink.is_enabled()`, cached once — never re-polled per state.
    events: bool,
    /// Collect per-rule attribution (fixed-size per-worker arrays).
    rules: bool,
}

impl Shared<'_> {
    #[inline]
    fn canon(&self, s: PackedState) -> PackedState {
        match self.dedup {
            Dedup::Exact => s,
            Dedup::Counting => s.canonical(self.n),
        }
    }
}

/// Per-worker tallies, merged after the pool joins.
#[derive(Default)]
struct WorkerStats {
    visits: usize,
    dedup_hits: u64,
    dedup_misses: u64,
    claims: u64,
    steals: u64,
    claim_races: u64,
    peak_pending: usize,
    errors: Vec<EnumError>,
    /// Per-rule attribution, indexed by rule id (empty unless the run
    /// collects rule stats). Sized once at worker start, so the
    /// expansion loop never allocates for observability.
    rules: Vec<RuleStat>,
}

/// Moves up to [`REFILL_BATCH`] states from the worker's own public
/// deque (back first — the most recently published, preserving
/// locality) onto its private stack and pops one.
fn refill(w: usize, sh: &Shared<'_>, local: &mut Vec<PackedState>) -> Option<PackedState> {
    let mut q = sh.queues[w].lock();
    for _ in 0..REFILL_BATCH {
        match q.pop_back() {
            Some(s) => local.push(s),
            None => break,
        }
    }
    drop(q);
    local.pop()
}

/// Scans the other workers round-robin and steals up to half of the
/// first non-empty public deque found (front first — the states
/// published earliest, farthest from the victim's working set).
fn steal(
    w: usize,
    sh: &Shared<'_>,
    local: &mut Vec<PackedState>,
    stats: &mut WorkerStats,
) -> Option<PackedState> {
    let k = sh.queues.len();
    for off in 1..k {
        let victim = (w + off) % k;
        let Some(mut q) = sh.queues[victim].try_lock() else {
            continue;
        };
        let take = q.len().div_ceil(2).min(STEAL_CAP);
        if take == 0 {
            continue;
        }
        if sh.events {
            sh.sink.span_begin(SpanKind::Steal, w as u32 + 1);
        }
        for _ in 0..take {
            local.push(q.pop_front().expect("len checked"));
        }
        drop(q);
        if sh.events {
            sh.sink.span_end(SpanKind::Steal, w as u32 + 1);
        }
        stats.steals += 1;
        return local.pop();
    }
    None
}

/// Expands one state: generates its successors, records stale-access
/// and structural violations, claims each successor's dedup key and
/// schedules the newly claimed ones.
fn expand(
    state: PackedState,
    w: usize,
    sh: &Shared<'_>,
    local: &mut Vec<PackedState>,
    buf: &mut Vec<ConcreteStep>,
    stats: &mut WorkerStats,
) {
    buf.clear();
    if sh.rules {
        // Per-stimulus replica of `successors_into`'s double loop, so
        // each firing can be timed and attributed to its rule id.
        for i in 0..sh.n {
            for event in ProcEvent::ALL {
                if state.state(i).is_invalid() && event == ProcEvent::Replace {
                    continue;
                }
                let rid = sh.spec.rule_id(state.state(i), event);
                let before = buf.len();
                let start = Instant::now();
                step_into(sh.spec, state, sh.n, i, event, buf);
                let r = &mut stats.rules[rid];
                r.nanos += start.elapsed().as_nanos() as u64;
                r.firings += 1;
                r.states += (buf.len() - before) as u64;
            }
        }
    } else {
        successors_into(sh.spec, state, sh.n, buf);
    }
    for s in buf.iter() {
        stats.visits += 1;
        if !s.errors.is_empty() {
            let descriptions: Vec<String> = s
                .errors
                .iter()
                .map(|e| format!("{e:?} via cache {} {}", s.cache, s.event))
                .collect();
            stats.errors.push(EnumError {
                state: s.to,
                descriptions,
            });
            if sh.events {
                sh.sink
                    .violation(&format!("stale access via cache {} {}", s.cache, s.event));
            }
            if sh.rules {
                stats.rules[sh.spec.rule_id(state.state(s.cache), s.event)].violations += 1;
            }
            if sh.stop_at_first_error {
                sh.stop.store(true, Ordering::Release);
            }
        }
        let key = sh.canon(s.to);
        let claim = sh.visited.claim(key);
        stats.claim_races += claim.races as u64;
        if !claim.claimed {
            stats.dedup_hits += 1;
            if sh.rules {
                stats.rules[sh.spec.rule_id(state.state(s.cache), s.event)].dedup_hits += 1;
            }
            continue;
        }
        stats.dedup_misses += 1;
        stats.claims += 1;
        if is_violating(sh.spec, key, sh.n) {
            stats.errors.push(EnumError {
                state: key,
                descriptions: describe_violations(sh.spec, key, sh.n),
            });
            if sh.events {
                sh.sink.violation(&format!(
                    "violating state reached via cache {} {}",
                    s.cache, s.event
                ));
            }
            if sh.rules {
                stats.rules[sh.spec.rule_id(state.state(s.cache), s.event)].violations += 1;
            }
            if sh.stop_at_first_error {
                sh.stop.store(true, Ordering::Release);
            }
        }
        // Claimed keys are *always* enqueued — budget and governor
        // trips are taken at expansion granularity in `worker_loop`,
        // never mid-successor-loop, so a stopped run's frontier plus
        // visited set is an exact checkpoint of the search.
        let now_pending = sh.pending.fetch_add(1, Ordering::Relaxed) + 1;
        stats.peak_pending = stats.peak_pending.max(now_pending);
        local.push(key);
    }

    // Publish the older (shallower) half of a grown private stack so
    // idle workers have something to steal; only when our own public
    // deque has drained, so publication stays rare on the hot path.
    if local.len() > 1 {
        if let Some(mut q) = sh.queues[w].try_lock() {
            if q.is_empty() {
                let give = local.len() / 2;
                for s in local.drain(..give) {
                    q.push_back(s);
                }
            }
        }
    }
}

/// One worker: expand from the private stack, refill from the own
/// public deque, steal when both are empty, exit when the global
/// pending count hits zero (or a stop is signalled).
///
/// `local` and `stats` are owned by the spawning closure so that a
/// panicking worker's private stack still reaches the frontier drain
/// and its partial tallies still merge.
fn worker_loop(w: usize, sh: &Shared<'_>, local: &mut Vec<PackedState>, stats: &mut WorkerStats) {
    let tid = w as u32 + 1;
    if sh.rules {
        stats.rules = vec![RuleStat::default(); sh.spec.num_rules()];
    }
    let mut buf: Vec<ConcreteStep> = Vec::new();
    let mut expansions = 0usize;
    let mut idle = 0u32;
    // Busy intervals become WorkerBusy spans on the worker's own trace
    // track: one span per contiguous stretch of expansions, closed when
    // the worker runs dry (and reopened when it finds work again).
    let mut busy = false;
    let mut spans = 0u32;
    loop {
        if sh.stop.load(Ordering::Relaxed) {
            break;
        }
        let state = local
            .pop()
            .or_else(|| refill(w, sh, local))
            .or_else(|| steal(w, sh, local, stats));
        let Some(state) = state else {
            if busy {
                busy = false;
                spans += 1;
                sh.sink.span_end(SpanKind::WorkerBusy, tid);
                sh.sink
                    .sample(Track::Pending, sh.pending.load(Ordering::Relaxed) as u64);
                sh.sink.sample(Track::Visited, sh.visited.len() as u64);
            }
            if sh.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // All remaining work sits in other workers' private
            // stacks. Back off progressively: stay polite on machines
            // with fewer cores than workers.
            idle += 1;
            if idle <= 8 {
                std::thread::yield_now();
            } else {
                let micros = (50u64 << (idle - 8).min(5)).min(1_000);
                std::thread::sleep(Duration::from_micros(micros));
            }
            continue;
        };
        // Governed stop check, at expansion granularity: the claimed
        // state goes *back* on the private stack (it reaches the
        // checkpoint frontier), never half-expanded. The budget is
        // checked every expansion (one atomic read); the clock and
        // memory estimate only every `Governor::STRIDE`.
        if let Some(k) = sh.panic_after {
            if w == 0 && stats.visits >= k {
                local.push(state);
                panic!("injected worker fault (test hook, visits >= {k})");
            }
        }
        if sh.fault.is_enabled() {
            match sh.fault.fire("enum.worker") {
                Some(FaultKind::Panic) => {
                    // The claimed state reaches the frontier before
                    // the unwind, so the panic costs no coverage.
                    local.push(state);
                    panic!("injected fault: panic at enum.worker");
                }
                Some(FaultKind::SlowRead) => {
                    let millis = sh.fault.injector().map(|i| i.slow_millis()).unwrap_or(5);
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        let tripped = if expansions % Governor::STRIDE == 0 {
            sh.gov.poll(sh.visited.approx_bytes())
        } else {
            sh.gov.cancelled()
        };
        let tripped = tripped.or_else(|| {
            (sh.visited.len() >= sh.budget).then(|| sh.gov.stop(StopCause::BudgetExhausted))
        });
        if tripped.is_some() {
            sh.stop.store(true, Ordering::Release);
            local.push(state);
            break;
        }
        expansions += 1;
        if sh.events && !busy {
            busy = true;
            sh.sink.span_begin(SpanKind::WorkerBusy, tid);
            sh.sink
                .sample(Track::Pending, sh.pending.load(Ordering::Relaxed) as u64);
            sh.sink.sample(Track::Visited, sh.visited.len() as u64);
        }
        idle = 0;
        expand(state, w, sh, local, &mut buf, stats);
        sh.pending.fetch_sub(1, Ordering::AcqRel);
    }
    if busy {
        spans += 1;
        sh.sink.span_end(SpanKind::WorkerBusy, tid);
    }
    if sh.events && spans == 0 {
        // A worker that never found work still gets one (degenerate)
        // complete span, so every worker track exists in the trace.
        sh.sink.span_begin(SpanKind::WorkerBusy, tid);
        sh.sink.span_end(SpanKind::WorkerBusy, tid);
    }
}

/// Runs the exhaustive search on `threads` persistent workers with
/// work stealing.
///
/// Produces the same `distinct`/`visits` totals and the same violation
/// *set* as [`crate::explicit::enumerate`] for any thread count; error
/// ordering is scheduling-dependent. `stop_at_first_error` propagates
/// cooperatively, so a few extra states may be expanded (and extra
/// errors recorded) before all workers observe the stop.
pub fn enumerate_parallel(spec: &ProtocolSpec, opts: &EnumOptions, threads: usize) -> EnumResult {
    enumerate_parallel_resumed(spec, opts, threads, None)
}

/// [`enumerate_parallel`], optionally continuing from a checkpoint
/// seed. The resumed search pre-claims every previously visited state
/// and distributes the saved frontier round-robin across the workers;
/// totals are reported cumulatively, so a budget-split run's final
/// counts equal an uninterrupted run's.
pub fn enumerate_parallel_resumed(
    spec: &ProtocolSpec,
    opts: &EnumOptions,
    threads: usize,
    seed: Option<ResumeSeed>,
) -> EnumResult {
    assert!(opts.n >= 1 && opts.n <= MAX_CACHES);
    assert!(threads >= 1);
    assert!(
        spec.num_states() <= 16,
        "packed encoding supports at most 16 protocol states"
    );

    let sink = &opts.common.sink;
    let events = sink.is_enabled();
    let rules_on = opts.common.rule_stats && events;
    sink.phase_enter(Phase::Enumerate);
    sink.gauge(Gauge::Threads, threads as u64);

    let sh = Shared {
        spec,
        n: opts.n,
        dedup: opts.dedup,
        budget: opts.common.budget,
        stop_at_first_error: opts.common.stop_at_first_error,
        visited: AtomicVisited::new(),
        gov: opts.common.governor(),
        panic_after: opts.panic_after,
        fault: opts.common.fault.clone(),
        pending: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        sink,
        events,
        rules: rules_on,
    };

    let mut errors: Vec<EnumError> = Vec::new();
    let mut visits_base = 0usize;
    match seed {
        None => {
            // The coordinator claims the initial state itself so the
            // per-worker claim counts sum to `distinct − 1`.
            let init = sh.canon(PackedState::INITIAL);
            sh.visited.claim(init);
            sink.frontier(0, 1);
            if is_violating(spec, init, opts.n) {
                if events {
                    sink.violation("initial state violates coherence");
                }
                errors.push(EnumError {
                    state: init,
                    descriptions: describe_violations(spec, init, opts.n),
                });
                if opts.common.stop_at_first_error {
                    sh.stop.store(true, Ordering::Release);
                }
            }
            if !sh.stop.load(Ordering::Relaxed) {
                sh.pending.store(1, Ordering::Relaxed);
                sh.queues[0].lock().push_back(init);
            }
        }
        Some(seed) => {
            for s in &seed.visited {
                sh.visited.claim(*s);
            }
            visits_base = seed.visits;
            errors = seed.errors;
            sink.frontier(0, seed.frontier.len());
            sh.pending.store(seed.frontier.len(), Ordering::Relaxed);
            for (i, s) in seed.frontier.into_iter().enumerate() {
                sh.queues[i % threads].lock().push_back(s);
            }
        }
    }

    // Worker panics are caught at the closure boundary: the first
    // payload becomes the run's stop detail, the governor records
    // `WorkerPanic`, and the surviving workers drain cooperatively —
    // the pending counter is never left dangling behind a dead thread.
    let panic_note: Mutex<Option<String>> = Mutex::new(None);
    let outcomes: Vec<(WorkerStats, Vec<PackedState>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let sh = &sh;
                let panic_note = &panic_note;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let mut local: Vec<PackedState> = Vec::new();
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        worker_loop(w, sh, &mut local, &mut stats)
                    }));
                    if let Err(payload) = run {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_string());
                        let mut note = panic_note.lock();
                        if note.is_none() {
                            *note = Some(format!("worker {w}: {msg}"));
                        }
                        sh.gov.stop(StopCause::WorkerPanic);
                        sh.stop.store(true, Ordering::Release);
                    }
                    (stats, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught in the closure"))
            .collect()
    });
    let mut frontier: Vec<PackedState> = Vec::new();
    let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(threads);
    for (stats, local) in outcomes {
        frontier.extend(local);
        worker_stats.push(stats);
    }
    for q in &sh.queues {
        frontier.extend(q.lock().drain(..));
    }

    // The coordinator's merge of per-worker tallies is the Drain leg
    // of the run's timeline (tid 0 = main thread).
    if events {
        sink.span_begin(SpanKind::Drain, 0);
    }
    let mut visits = visits_base;
    let mut dedup_hits = 0u64;
    let mut dedup_misses = 0u64;
    let mut steals = 0u64;
    let mut claim_races = 0u64;
    let mut peak_pending = 1usize;
    let mut rules_total: Vec<RuleStat> = if rules_on {
        vec![RuleStat::default(); spec.num_rules()]
    } else {
        Vec::new()
    };
    for stats in &mut worker_stats {
        visits += stats.visits;
        dedup_hits += stats.dedup_hits;
        dedup_misses += stats.dedup_misses;
        steals += stats.steals;
        claim_races += stats.claim_races;
        peak_pending = peak_pending.max(stats.peak_pending);
        errors.append(&mut stats.errors);
        for (rid, r) in stats.rules.iter().enumerate() {
            rules_total[rid].merge(r);
        }
    }

    let distinct = sh.visited.len();
    if events {
        sink.count(Counter::Visits, visits as u64);
        sink.count(Counter::DedupHits, dedup_hits);
        sink.count(Counter::DedupMisses, dedup_misses);
        sink.count(Counter::Errors, errors.len() as u64);
        sink.count(Counter::Steals, steals);
        sink.count(Counter::ClaimRaces, claim_races);
        sink.gauge(Gauge::DistinctStates, distinct as u64);
        sink.gauge(Gauge::PeakPending, peak_pending as u64);
        sink.sample(Track::Pending, sh.pending.load(Ordering::Relaxed) as u64);
        sink.sample(Track::Visited, distinct as u64);
        for (i, stats) in worker_stats.iter().enumerate() {
            sink.worker(i, stats.claims);
        }
        if rules_on {
            let mut firings_total = 0u64;
            for (rid, r) in rules_total.iter().enumerate() {
                if r.firings > 0 || r.states > 0 {
                    sink.rule_stats(&spec.rule_name(rid), *r);
                }
                firings_total += r.firings;
            }
            sink.count(Counter::RuleFirings, firings_total);
        }
        sink.progress(&format!(
            "enumerated {distinct} distinct states in {visits} visits \
             ({threads} workers, {steals} steals)"
        ));
        sink.span_end(SpanKind::Drain, 0);
    }

    let mut stopped = sh.gov.stop_info(frontier.len());
    if let Some(info) = &mut stopped {
        if info.cause == StopCause::WorkerPanic {
            info.detail = panic_note.into_inner();
        }
    }
    let truncated = stopped.is_some();
    sink.count(Counter::BudgetPolls, sh.gov.polls());
    if let Some(info) = &stopped {
        sink.count(Counter::BudgetStops, 1);
        sink.stopped(info.cause.name(), info.detail.as_deref());
    }
    sink.gauge(Gauge::VisitedBytes, sh.visited.approx_bytes());
    sink.phase_exit(Phase::Enumerate);

    let snapshot = (opts.capture_snapshot && truncated).then(|| EnumSnapshot {
        visited: sh.visited.states(),
        frontier: frontier.clone(),
    });
    EnumResult {
        n: opts.n,
        distinct,
        visits,
        errors,
        truncated,
        stopped,
        snapshot,
        // The work-stealing engine never spills (the unified API
        // routes spill requests to the sequential engine).
        spill_degraded: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::enumerate;
    use ccv_model::protocols::{dragon, illinois, illinois_missing_writeback};

    #[test]
    fn parallel_matches_sequential_distinct_and_visits() {
        let spec = illinois();
        for n in 1..=4 {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            for threads in [1, 2, 4] {
                let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), threads);
                assert_eq!(par.distinct, seq.distinct, "n={n} t={threads}");
                assert_eq!(par.visits, seq.visits, "n={n} t={threads}");
                assert!(par.is_clean());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_counting_dedup() {
        let spec = dragon();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert_eq!(par.distinct, seq.distinct);
        assert_eq!(par.visits, seq.visits);
    }

    #[test]
    fn parallel_finds_the_same_bugs() {
        let spec = illinois_missing_writeback();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 4);
        assert!(!seq.errors.is_empty());
        assert!(!par.errors.is_empty());
        // Same violating state set (order-insensitive).
        let mut a: Vec<u128> = seq.errors.iter().map(|e| e.state.0).collect();
        let mut b: Vec<u128> = par.errors.iter().map(|e| e.state.0).collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let spec = illinois();
        let seq = enumerate(&spec, &EnumOptions::new(3));
        let par = enumerate_parallel(&spec, &EnumOptions::new(3), 1);
        assert_eq!(seq.distinct, par.distinct);
        assert_eq!(seq.visits, par.visits);
    }

    #[test]
    fn oversubscribed_pool_still_agrees() {
        // More workers than states in early levels: most workers spend
        // the run stealing or idling; counts must still be exact.
        let spec = dragon();
        let seq = enumerate(&spec, &EnumOptions::new(2).exact());
        let par = enumerate_parallel(&spec, &EnumOptions::new(2).exact(), 8);
        assert_eq!(par.distinct, seq.distinct);
        assert_eq!(par.visits, seq.visits);
    }

    #[test]
    fn budget_truncates_parallel_run() {
        let spec = illinois();
        let r = enumerate_parallel(&spec, &EnumOptions::new(4).max_states(5), 4);
        assert!(r.truncated);
        assert!(!r.is_clean());
        assert!(r.distinct >= 5);
        let info = r.stopped.expect("truncated runs carry stop info");
        assert_eq!(info.cause, StopCause::BudgetExhausted);
    }

    /// Runs `f` under a watchdog so a deadlocked pool fails the test
    /// instead of hanging the suite forever.
    fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        rx.recv_timeout(Duration::from_secs(30))
            .expect("enumeration deadlocked: no result within 30s")
    }

    #[test]
    fn panicking_worker_reports_instead_of_deadlocking() {
        for threads in [1usize, 2, 8] {
            let r = with_watchdog(move || {
                let spec = illinois();
                enumerate_parallel(&spec, &EnumOptions::new(4).exact().inject_panic(3), threads)
            });
            assert!(r.truncated, "t={threads}");
            let info = r.stopped.expect("panic is a recorded stop cause");
            assert_eq!(info.cause, StopCause::WorkerPanic, "t={threads}");
            let detail = info.detail.expect("panic payload captured");
            assert!(detail.contains("injected"), "t={threads}: {detail}");
        }
    }

    #[test]
    fn cancelled_token_drains_the_pool_cleanly() {
        use ccv_observe::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let r = with_watchdog({
            let token = token.clone();
            move || {
                let spec = illinois();
                enumerate_parallel(&spec, &EnumOptions::new(4).cancel(token), 4)
            }
        });
        assert!(r.truncated);
        assert_eq!(r.stopped.unwrap().cause, StopCause::Cancelled);
        // The token is an input: the engine must not un-cancel it.
        assert!(token.is_cancelled());
    }

    #[test]
    fn budget_split_parallel_resume_matches_uninterrupted() {
        let spec = dragon();
        let full = enumerate(&spec, &EnumOptions::new(3).exact());
        for threads in [2usize, 4] {
            let leg1 = enumerate_parallel(
                &spec,
                &EnumOptions::new(3)
                    .exact()
                    .max_states(20)
                    .capture_snapshot(true),
                threads,
            );
            assert!(leg1.truncated, "t={threads}");
            let snap = leg1.snapshot.expect("snapshot captured");
            assert_eq!(snap.visited.len(), leg1.distinct, "t={threads}");
            let seed = ResumeSeed {
                visited: snap.visited,
                frontier: snap.frontier,
                visits: leg1.visits,
                errors: leg1.errors,
            };
            let leg2 = enumerate_parallel_resumed(
                &spec,
                &EnumOptions::new(3).exact(),
                threads,
                Some(seed),
            );
            assert!(!leg2.truncated, "t={threads}");
            assert_eq!(leg2.distinct, full.distinct, "t={threads}");
            assert_eq!(leg2.visits, full.visits, "t={threads}");
        }
    }

    #[test]
    fn sequential_checkpoint_resumes_on_the_parallel_engine() {
        // Engines share the frontier/visited format, so a checkpoint
        // from one resumes on the other with identical totals.
        let spec = illinois();
        let full = enumerate(&spec, &EnumOptions::new(3).exact());
        let leg1 = enumerate(
            &spec,
            &EnumOptions::new(3)
                .exact()
                .max_states(5)
                .capture_snapshot(true),
        );
        assert!(leg1.truncated);
        let snap = leg1.snapshot.unwrap();
        let seed = ResumeSeed {
            visited: snap.visited,
            frontier: snap.frontier,
            visits: leg1.visits,
            errors: leg1.errors,
        };
        let leg2 = enumerate_parallel_resumed(&spec, &EnumOptions::new(3).exact(), 4, Some(seed));
        assert_eq!(leg2.distinct, full.distinct);
        assert_eq!(leg2.visits, full.visits);
    }

    #[test]
    fn parallel_rule_attribution_matches_sequential_totals() {
        use ccv_observe::{EventSink, Metrics};
        use std::sync::Arc;

        let spec = illinois();
        let plain = enumerate(&spec, &EnumOptions::new(3).exact());

        let metrics = Arc::new(Metrics::new());
        let opts = EnumOptions::new(3)
            .exact()
            .sink(metrics.clone() as Arc<dyn EventSink>)
            .rule_stats(true);
        let attributed = enumerate_parallel(&spec, &opts, 4);
        assert_eq!(attributed.distinct, plain.distinct);
        assert_eq!(attributed.visits, plain.visits);

        let snap = metrics.snapshot();
        let firings: u64 = snap.rules.values().map(|r| r.firings).sum();
        let states: u64 = snap.rules.values().map(|r| r.states).sum();
        let dedup: u64 = snap.rules.values().map(|r| r.dedup_hits).sum();
        assert_eq!(firings, snap.counter(Counter::RuleFirings));
        assert_eq!(states, attributed.visits as u64);
        assert_eq!(dedup, snap.counter(Counter::DedupHits));
    }

    #[test]
    fn every_worker_emits_balanced_busy_spans() {
        use ccv_observe::EventSink;
        use std::collections::HashMap;
        use std::sync::Arc;

        #[derive(Default)]
        struct SpanLedger {
            // tid → (begins, ends); `open` counts currently-open spans
            // per tid and must never go negative.
            per_tid: Mutex<HashMap<u32, (u64, u64)>>,
            unbalanced: AtomicBool,
        }
        impl EventSink for SpanLedger {
            fn span_begin(&self, _kind: SpanKind, tid: u32) {
                self.per_tid.lock().entry(tid).or_default().0 += 1;
            }
            fn span_end(&self, _kind: SpanKind, tid: u32) {
                let mut map = self.per_tid.lock();
                let e = map.entry(tid).or_default();
                e.1 += 1;
                if e.1 > e.0 {
                    self.unbalanced.store(true, Ordering::Relaxed);
                }
            }
        }

        let spec = illinois();
        let ledger = Arc::new(SpanLedger::default());
        let threads = 4;
        let opts = EnumOptions::new(4).sink(ledger.clone() as Arc<dyn EventSink>);
        enumerate_parallel(&spec, &opts, threads);

        assert!(!ledger.unbalanced.load(Ordering::Relaxed));
        let map = ledger.per_tid.lock();
        // Coordinator track (Drain span) plus every worker track.
        assert!(map.contains_key(&0), "coordinator emitted no span");
        for w in 0..threads {
            let tid = w as u32 + 1;
            let (begins, ends) = map[&tid];
            assert!(begins >= 1, "worker {w} emitted no span");
            assert_eq!(begins, ends, "worker {w} spans unbalanced");
        }
    }
}
