//! Packed concrete global states.
//!
//! The explicit-state engines enumerate the Cartesian product of `n`
//! individual cache states (Definition 2), augmented with the
//! data-consistency context variables of Definition 4. To keep the
//! visited set compact and hashing cheap, an entire augmented global
//! state packs into a single `u128`:
//!
//! ```text
//! bits   0..64   cache protocol states, 4 bits each (n ≤ 16)
//! bits  64..96   cache cdata values,    2 bits each
//! bit       96   mdata (0 = fresh, 1 = obsolete)
//! ```
//!
//! The per-cache layout also gives a cheap **counting-equivalence**
//! canonicalisation (Definition 5): sort the per-cache
//! `(state, cdata)` codes — permutations of symmetric caches then
//! collapse to one representative.

use ccv_model::{CData, MData, ProtocolSpec, StateId};
use core::fmt;

/// Maximum number of caches an explicit state can describe.
pub const MAX_CACHES: usize = 16;

/// A packed augmented global state for `n ≤ 16` caches.
///
/// The cache count is *not* stored; every accessor takes the index and
/// the engines carry `n` alongside (it is constant per run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedState(pub u128);

impl PackedState {
    /// The initial state: every cache invalid with no data, memory
    /// fresh.
    pub const INITIAL: PackedState = PackedState(0);

    /// Protocol state of cache `i`.
    #[inline]
    pub fn state(self, i: usize) -> StateId {
        debug_assert!(i < MAX_CACHES);
        StateId(((self.0 >> (4 * i)) & 0xF) as u8)
    }

    /// Returns a copy with cache `i` in `s`.
    #[inline]
    pub fn with_state(self, i: usize, s: StateId) -> PackedState {
        debug_assert!(i < MAX_CACHES);
        debug_assert!(s.0 < 16, "state id exceeds 4-bit packing");
        let shift = 4 * i;
        PackedState((self.0 & !(0xFu128 << shift)) | ((s.0 as u128) << shift))
    }

    /// Data freshness of cache `i`.
    #[inline]
    pub fn cdata(self, i: usize) -> CData {
        debug_assert!(i < MAX_CACHES);
        match (self.0 >> (64 + 2 * i)) & 0x3 {
            0 => CData::NoData,
            1 => CData::Fresh,
            _ => CData::Obsolete,
        }
    }

    /// Returns a copy with cache `i` holding `cd`.
    #[inline]
    pub fn with_cdata(self, i: usize, cd: CData) -> PackedState {
        debug_assert!(i < MAX_CACHES);
        let code: u128 = match cd {
            CData::NoData => 0,
            CData::Fresh => 1,
            CData::Obsolete => 2,
        };
        let shift = 64 + 2 * i;
        PackedState((self.0 & !(0x3u128 << shift)) | (code << shift))
    }

    /// Memory freshness.
    #[inline]
    pub fn mdata(self) -> MData {
        if (self.0 >> 96) & 1 == 0 {
            MData::Fresh
        } else {
            MData::Obsolete
        }
    }

    /// Returns a copy with the given memory freshness.
    #[inline]
    pub fn with_mdata(self, m: MData) -> PackedState {
        match m {
            MData::Fresh => PackedState(self.0 & !(1u128 << 96)),
            MData::Obsolete => PackedState(self.0 | (1u128 << 96)),
        }
    }

    /// The combined 6-bit per-cache code used for canonical sorting.
    #[inline]
    fn cache_code(self, i: usize) -> u8 {
        let s = ((self.0 >> (4 * i)) & 0xF) as u8;
        let c = ((self.0 >> (64 + 2 * i)) & 0x3) as u8;
        (s << 2) | c
    }

    /// Counting-equivalence canonical form (Definition 5): the
    /// representative with per-cache codes sorted ascending. Two states
    /// are permutations of each other iff their canonical forms are
    /// equal.
    ///
    /// The 6-bit codes are sorted by a counting sort over the 64
    /// possible values — branchless histogram + emit, measurably faster
    /// than a comparison sort at `n ≤ 16` and allocation-free, since
    /// this runs once per visit in `Dedup::Counting` mode.
    pub fn canonical(self, n: usize) -> PackedState {
        debug_assert!(n <= MAX_CACHES);
        let mut histogram = [0u8; 64];
        for i in 0..n {
            histogram[self.cache_code(i) as usize] += 1;
        }
        let mut out = PackedState(0).with_mdata(self.mdata());
        let mut slot = 0usize;
        for (code, &count) in histogram.iter().enumerate() {
            for _ in 0..count {
                out = out.with_state(slot, StateId((code >> 2) as u8));
                out = out.with_cdata(
                    slot,
                    match code & 0x3 {
                        0 => CData::NoData,
                        1 => CData::Fresh,
                        _ => CData::Obsolete,
                    },
                );
                slot += 1;
            }
        }
        out
    }

    /// Number of caches among the first `n` whose state holds a copy.
    pub fn copies(self, n: usize, spec: &ProtocolSpec) -> usize {
        (0..n)
            .filter(|&i| spec.attrs(self.state(i)).holds_copy)
            .count()
    }

    /// Renders the state with protocol names, e.g.
    /// `[Dirty Inv Inv | fresh nodata nodata | m:obsolete]`.
    pub fn render(self, n: usize, spec: &ProtocolSpec) -> String {
        let states: Vec<&str> = (0..n)
            .map(|i| spec.state(self.state(i)).short.as_str())
            .collect();
        let data: Vec<&str> = (0..n).map(|i| self.cdata(i).label()).collect();
        format!(
            "[{} | {} | m:{}]",
            states.join(" "),
            data.join(" "),
            self.mdata()
        )
    }
}

impl fmt::Debug for PackedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedState({:#034x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_all_invalid_fresh() {
        let s = PackedState::INITIAL;
        for i in 0..MAX_CACHES {
            assert_eq!(s.state(i), StateId::INVALID);
            assert_eq!(s.cdata(i), CData::NoData);
        }
        assert_eq!(s.mdata(), MData::Fresh);
    }

    #[test]
    fn state_roundtrip_does_not_disturb_neighbours() {
        let mut s = PackedState::INITIAL;
        s = s.with_state(3, StateId(5)).with_state(4, StateId(9));
        assert_eq!(s.state(3), StateId(5));
        assert_eq!(s.state(4), StateId(9));
        assert_eq!(s.state(2), StateId(0));
        assert_eq!(s.state(5), StateId(0));
        s = s.with_state(3, StateId(1));
        assert_eq!(s.state(3), StateId(1));
        assert_eq!(s.state(4), StateId(9));
    }

    #[test]
    fn cdata_roundtrip() {
        let mut s = PackedState::INITIAL;
        s = s
            .with_cdata(0, CData::Fresh)
            .with_cdata(15, CData::Obsolete);
        assert_eq!(s.cdata(0), CData::Fresh);
        assert_eq!(s.cdata(15), CData::Obsolete);
        assert_eq!(s.cdata(7), CData::NoData);
        s = s.with_cdata(0, CData::NoData);
        assert_eq!(s.cdata(0), CData::NoData);
        assert_eq!(s.cdata(15), CData::Obsolete);
    }

    #[test]
    fn mdata_roundtrip() {
        let s = PackedState::INITIAL.with_mdata(MData::Obsolete);
        assert_eq!(s.mdata(), MData::Obsolete);
        assert_eq!(s.with_mdata(MData::Fresh).mdata(), MData::Fresh);
    }

    #[test]
    fn canonical_collapses_permutations() {
        let a = PackedState::INITIAL
            .with_state(0, StateId(2))
            .with_cdata(0, CData::Fresh)
            .with_state(1, StateId(1))
            .with_cdata(1, CData::Obsolete);
        let b = PackedState::INITIAL
            .with_state(1, StateId(2))
            .with_cdata(1, CData::Fresh)
            .with_state(0, StateId(1))
            .with_cdata(0, CData::Obsolete);
        assert_ne!(a, b);
        assert_eq!(a.canonical(2), b.canonical(2));
        // Canonicalisation is idempotent.
        assert_eq!(a.canonical(2).canonical(2), a.canonical(2));
    }

    #[test]
    fn canonical_distinguishes_different_multisets() {
        let a = PackedState::INITIAL
            .with_state(0, StateId(2))
            .with_cdata(0, CData::Fresh);
        let b = PackedState::INITIAL
            .with_state(0, StateId(3))
            .with_cdata(0, CData::Fresh);
        assert_ne!(a.canonical(2), b.canonical(2));
        // ...and different cdata on the same state.
        let c = PackedState::INITIAL
            .with_state(0, StateId(2))
            .with_cdata(0, CData::Obsolete);
        assert_ne!(a.canonical(2), c.canonical(2));
        // ...and mdata.
        assert_ne!(a.canonical(2), a.with_mdata(MData::Obsolete).canonical(2));
    }

    #[test]
    fn copies_counts_valid_states() {
        let spec = ccv_model::protocols::illinois();
        let sh = spec.state_by_name("Shared").unwrap();
        let s = PackedState::INITIAL.with_state(0, sh).with_state(2, sh);
        assert_eq!(s.copies(3, &spec), 2);
        assert_eq!(s.copies(1, &spec), 1);
    }

    #[test]
    fn render_is_readable() {
        let spec = ccv_model::protocols::illinois();
        let d = spec.state_by_name("Dirty").unwrap();
        let s = PackedState::INITIAL
            .with_state(0, d)
            .with_cdata(0, CData::Fresh)
            .with_mdata(MData::Obsolete);
        let r = s.render(2, &spec);
        assert!(r.contains("Dirty"), "{r}");
        assert!(r.contains("m:obsolete"), "{r}");
    }
}
