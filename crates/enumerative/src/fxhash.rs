//! A minimal Fx-style hasher for small integer keys.
//!
//! The enumerative engines hash millions of packed `u128` states; the
//! standard library's SipHash is needlessly slow for this (see the
//! perf-book guidance on alternative hashers). To stay within the
//! project's approved dependency set we implement the classic
//! multiply-rotate Fx hash in ~40 lines rather than pulling in
//! `rustc-hash`; the algorithm is the one used by the Rust compiler.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc "Fx" hash: one rotate-xor-multiply per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let bh = BuildHasherDefault::<FxHasher>::default();
        bh.hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"state"), hash_of(&"state"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&0u128), hash_of(&(1u128 << 64)));
        assert_ne!(hash_of(&0u128), hash_of(&1u128));
    }

    #[test]
    fn set_and_map_work() {
        let mut s: FxHashSet<u128> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
    }

    #[test]
    fn byte_stream_hashing_covers_partial_chunks() {
        // 9 bytes exercises the chunked `write` path.
        assert_ne!(hash_of(&[0u8; 9][..]), hash_of(&[1u8; 9][..]));
    }
}
