//! A minimal Fx-style hasher for small integer keys.
//!
//! The enumerative engines hash millions of packed `u128` states; the
//! standard library's SipHash is needlessly slow for this (see the
//! perf-book guidance on alternative hashers). To stay within the
//! project's approved dependency set we implement the classic
//! multiply-rotate Fx hash in ~40 lines rather than pulling in
//! `rustc-hash`; the algorithm is the one used by the Rust compiler.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc "Fx" hash: one rotate-xor-multiply per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Digest guarding a persisted file body: the Fx hash of the bytes
/// plus the length (so truncation to a zero-padded prefix cannot
/// collide). Both the checkpoint and spill-segment formats append it
/// as a final `C <016x>` trailer line.
pub fn integrity_digest(body: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(body);
    h.write_u64(body.len() as u64);
    h.finish()
}

/// Renders the integrity trailer line (without the newline) for
/// `body` — every byte of the file before the trailer itself.
pub fn integrity_trailer(body: &[u8]) -> String {
    format!("C {:016x}", integrity_digest(body))
}

/// Verifies a file's `C <hash>` integrity trailer and returns the
/// guarded body (everything before the trailer line). Rejects files
/// with no trailer, content after the trailer, a malformed digest, or
/// a digest that does not match — a torn or bit-flipped file can
/// never validate.
pub fn verify_trailer(text: &str) -> Result<&str, String> {
    let pos = match text.rfind("\nC ") {
        Some(p) => p + 1,
        None => return Err("missing integrity trailer".to_string()),
    };
    let body = &text[..pos];
    let line = text[pos..].trim_end_matches('\n');
    if line.contains('\n') {
        return Err("content after the integrity trailer".to_string());
    }
    let hex = line.strip_prefix("C ").expect("located by prefix");
    let stated = u64::from_str_radix(hex.trim(), 16)
        .map_err(|e| format!("malformed integrity trailer: {e}"))?;
    if integrity_digest(body.as_bytes()) != stated {
        return Err("integrity trailer mismatch: file is torn or corrupt".to_string());
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let bh = BuildHasherDefault::<FxHasher>::default();
        bh.hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"state"), hash_of(&"state"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&0u128), hash_of(&(1u128 << 64)));
        assert_ne!(hash_of(&0u128), hash_of(&1u128));
    }

    #[test]
    fn set_and_map_work() {
        let mut s: FxHashSet<u128> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
    }

    #[test]
    fn byte_stream_hashing_covers_partial_chunks() {
        // 9 bytes exercises the chunked `write` path.
        assert_ne!(hash_of(&[0u8; 9][..]), hash_of(&[1u8; 9][..]));
    }

    #[test]
    fn trailer_round_trips_and_rejects_tampering() {
        let body = "header\nV 1\nV 2\n";
        let file = format!("{body}{}\n", integrity_trailer(body.as_bytes()));
        assert_eq!(verify_trailer(&file).unwrap(), body);
        // Flip one body byte.
        let tampered = file.replacen("V 1", "V 3", 1);
        assert!(verify_trailer(&tampered).unwrap_err().contains("mismatch"));
        // Drop the trailer entirely.
        assert!(verify_trailer(body).unwrap_err().contains("missing"));
        // Content after the trailer.
        let appended = format!("{file}V 9\n");
        assert!(verify_trailer(&appended).is_err());
        // Truncate into the trailer digits.
        let truncated = &file[..file.len() - 4];
        assert!(verify_trailer(truncated).is_err());
    }

    #[test]
    fn digest_distinguishes_zero_padded_truncation() {
        assert_ne!(integrity_digest(b"ab"), integrity_digest(b"ab\0"));
    }
}
