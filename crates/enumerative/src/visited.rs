//! Lock-free concurrent visited set for packed global states.
//!
//! The work-stealing engine (`parallel.rs`) claims millions of states
//! per second from many threads; a mutex-per-shard hash set serialises
//! exactly the hot path. [`AtomicVisited`] replaces it with an
//! open-addressing table whose *claim* operation is lock-free: one
//! compare-and-swap on the fast path, no locks anywhere, no entry ever
//! moved or freed.
//!
//! # Layout
//!
//! The table is split into [`SHARDS`] independent shards selected by
//! the low bits of the state's hash. Each shard is a chain of lazily
//! allocated segments (`OnceLock<Box<[Slot]>>`) whose sizes grow
//! geometrically (×`GROWTH`), so the structure needs no global resize
//! — a full segment simply overflows into the next, larger one, and
//! published slots stay valid forever.
//!
//! A slot packs a 97-bit [`PackedState`] into two `AtomicU64`s:
//!
//! ```text
//! lo = status(2 bits, 63..62) | state bits 61..0
//! hi = state bits 96..62
//! ```
//!
//! with `status ∈ {EMPTY = 0b00, RESERVED = 0b01, PUBLISHED = 0b10}`.
//!
//! # Claim protocol
//!
//! To claim state `s`, a thread walks `s`'s *deterministic* probe
//! sequence — a pure function of `hash(s)`: `PROBE_LIMIT` linear
//! probes in segment 0, then the same in segment 1, and so on. At each
//! slot it loads `lo` (`Acquire`) and:
//!
//! 1. **`EMPTY`** — CAS `lo` from `0` to `RESERVED | s.lo62`
//!    (`AcqRel`). On success it is the unique winner: it stores `hi`
//!    (`Release`), then publishes `lo = PUBLISHED | s.lo62`
//!    (`Release`), bumps the size counter and returns `true`. On
//!    failure another thread moved the slot first; re-examine it.
//! 2. **foreign low bits** — the slot permanently belongs to a state
//!    with different low bits; move to the next probe position.
//! 3. **matching low bits, `RESERVED`** — a writer of *some* state with
//!    the same low 62 bits is mid-publish; spin until `PUBLISHED`
//!    (the window is two plain stores, so the wait is bounded and
//!    tiny), counting a claim race.
//! 4. **matching low bits, `PUBLISHED`** — load `hi` (`Acquire`) and
//!    compare. Equal: `s` is already visited, return `false`.
//!    Different: a colliding state owns the slot; next probe position.
//!
//! # Why exactly one thread wins each state
//!
//! Slots are monotonic: `EMPTY → RESERVED → PUBLISHED`, the low bits
//! are set by the reserving CAS and never change afterwards, and slots
//! are never freed. Therefore "which state occupies probe position
//! `p`" only ever transitions from *undecided* to *decided-forever*,
//! and every thread claiming `s` walks the same probe sequence,
//! skipping exactly the positions decided for other states and
//! stopping at the first position that is either undecided or decided
//! for `s`. All claimers of `s` converge on that slot; the reserving
//! CAS arbitrates, so exactly one returns `true` and every other
//! claimer — even one arriving mid-publish — observes `s` there and
//! returns `false`. The linearization point of a winning claim is its
//! successful CAS; of a losing claim, the load that observed the
//! matching occupant. A full argument with the memory-ordering
//! obligations is given in `docs/perf.md`.
//!
//! The size counter is a plain `AtomicUsize` incremented by winners —
//! `len()` is one relaxed load instead of the 64 shard locks the old
//! mutex design needed.

use crate::fxhash::FxHasher;
use crate::packed::PackedState;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of independent shards (power of two).
pub const SHARDS: usize = 64;

/// Linear probes attempted per segment before overflowing to the next.
const PROBE_LIMIT: usize = 8;

/// Slots in a shard's first segment (power of two).
const BASE_SLOTS: usize = 1 << 12;

/// Geometric growth factor between consecutive segments (power of two).
const GROWTH: usize = 4;

/// Maximum segments per shard. Capacity is effectively unbounded: the
/// last segments are larger than any enumerable state space.
const SEGMENTS: usize = 16;

const STATUS_SHIFT: u32 = 62;
const LOW_MASK: u64 = (1 << STATUS_SHIFT) - 1;
const RESERVED: u64 = 0b01 << STATUS_SHIFT;
const PUBLISHED: u64 = 0b10 << STATUS_SHIFT;

/// One open-addressing slot: a 97-bit state in two atomic words.
#[derive(Default)]
struct Slot {
    lo: AtomicU64,
    hi: AtomicU64,
}

struct Shard {
    segments: [OnceLock<Box<[Slot]>>; SEGMENTS],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            segments: [const { OnceLock::new() }; SEGMENTS],
        }
    }

    fn segment(&self, idx: usize) -> &[Slot] {
        // Racing initialisations are possible; OnceLock keeps one
        // winner and drops the losers' allocations. Segments are
        // small relative to the states they hold, so the waste is
        // negligible and only happens once per segment.
        self.segments[idx].get_or_init(|| {
            let len = BASE_SLOTS * GROWTH.pow(idx as u32);
            (0..len).map(|_| Slot::default()).collect()
        })
    }
}

/// Outcome counters of a single [`AtomicVisited::claim`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClaimStats {
    /// The state was not in the set and this call inserted it.
    pub claimed: bool,
    /// CAS losses and reserved-slot spins encountered — a direct
    /// measure of inter-thread contention on the set.
    pub races: u32,
}

/// A lock-free concurrent set of [`PackedState`]s supporting exactly
/// two operations: atomic claim-if-absent and a constant-time size
/// read. Entries can never be removed.
pub struct AtomicVisited {
    shards: Vec<Shard>,
    size: AtomicUsize,
}

impl Default for AtomicVisited {
    fn default() -> AtomicVisited {
        AtomicVisited::new()
    }
}

impl AtomicVisited {
    /// Creates an empty set. Only the first segment of each shard is
    /// allocated eagerly; growth is lazy and lock-free thereafter.
    pub fn new() -> AtomicVisited {
        let shards: Vec<Shard> = (0..SHARDS).map(|_| Shard::new()).collect();
        AtomicVisited {
            shards,
            size: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn hash_of(state: PackedState) -> u64 {
        let mut h = FxHasher::default();
        state.hash(&mut h);
        h.finish()
    }

    /// Atomically claims `state`. Returns `claimed = true` iff the
    /// state was absent and this call inserted it; exactly one of any
    /// set of concurrent claims of the same state wins.
    ///
    /// Lock-free: the fast path is one load and (for new states) one
    /// CAS; no path acquires a lock or blocks unboundedly.
    pub fn claim(&self, state: PackedState) -> ClaimStats {
        let h = Self::hash_of(state);
        let shard = &self.shards[(h as usize) & (SHARDS - 1)];
        let probe_base = (h >> 6) as usize;
        let lo62 = (state.0 as u64) & LOW_MASK;
        let hi = (state.0 >> STATUS_SHIFT) as u64;
        let reserved = RESERVED | lo62;
        let published = PUBLISHED | lo62;
        let mut races = 0u32;

        for seg_idx in 0..SEGMENTS {
            let seg = shard.segment(seg_idx);
            let mask = seg.len() - 1;
            for p in 0..PROBE_LIMIT {
                let slot = &seg[probe_base.wrapping_add(p) & mask];
                let mut cur = slot.lo.load(Ordering::Acquire);
                loop {
                    if cur == 0 {
                        match slot.lo.compare_exchange(
                            0,
                            reserved,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                slot.hi.store(hi, Ordering::Release);
                                slot.lo.store(published, Ordering::Release);
                                self.size.fetch_add(1, Ordering::Relaxed);
                                return ClaimStats {
                                    claimed: true,
                                    races,
                                };
                            }
                            Err(actual) => {
                                // Lost the reservation race; re-examine
                                // what the winner put there.
                                races += 1;
                                cur = actual;
                                continue;
                            }
                        }
                    }
                    if cur & LOW_MASK != lo62 {
                        // Slot permanently owned by a state with
                        // different low bits: next probe position.
                        break;
                    }
                    if cur & PUBLISHED != 0 {
                        if slot.hi.load(Ordering::Acquire) == hi {
                            return ClaimStats {
                                claimed: false,
                                races,
                            };
                        }
                        // 62-bit collision with a different state.
                        break;
                    }
                    // RESERVED with matching low bits: the winner is
                    // between its CAS and its publish store — a
                    // two-instruction window. Spin until published.
                    races += 1;
                    std::hint::spin_loop();
                    cur = slot.lo.load(Ordering::Acquire);
                }
            }
        }
        // 128 probe positions across segments totalling > 10^9 slots
        // per shard were all taken by colliding states — statistically
        // impossible before memory exhaustion.
        panic!("AtomicVisited: probe chain exhausted");
    }

    /// Number of states in the set: one atomic load, no locking.
    ///
    /// Concurrent with claims this is a lower bound (winners increment
    /// *after* publishing); quiescent, it is exact.
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Acquire)
    }

    /// Approximate heap footprint in bytes: the sum of all allocated
    /// segments. Lock-free (walks the `OnceLock`s without initialising
    /// them), so the governor can poll it from any worker.
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for shard in &self.shards {
            for seg in shard.segments.iter().filter_map(|s| s.get()) {
                bytes += (seg.len() * std::mem::size_of::<Slot>()) as u64;
            }
        }
        bytes
    }

    /// Collects every published state, in shard/slot order.
    ///
    /// Intended for quiescent use (checkpointing after the worker pool
    /// has joined); concurrent with claims it returns the states whose
    /// publication happened-before the corresponding slot load.
    pub fn states(&self) -> Vec<PackedState> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for seg in shard.segments.iter().filter_map(|s| s.get()) {
                for slot in seg.iter() {
                    let lo = slot.lo.load(Ordering::Acquire);
                    if lo & PUBLISHED != 0 {
                        let hi = slot.hi.load(Ordering::Acquire);
                        out.push(PackedState(
                            ((hi as u128) << STATUS_SHIFT) | (lo & LOW_MASK) as u128,
                        ));
                    }
                }
            }
        }
        out
    }

    /// True iff no state has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_once_and_remembers() {
        let v = AtomicVisited::new();
        let s = PackedState(0x1234_5678_9abc_def0);
        assert!(v.claim(s).claimed);
        assert!(!v.claim(s).claimed);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn distinguishes_states_straddling_the_word_split() {
        // States identical in the low 62 bits but different above —
        // the `hi` comparison must separate them.
        let v = AtomicVisited::new();
        let low = PackedState(0x0fff_ffff_ffff_ffff);
        let a = PackedState(low.0 | (1u128 << 62));
        let b = PackedState(low.0 | (1u128 << 96));
        for s in [low, a, b] {
            assert!(v.claim(s).claimed, "{s:?} should be new");
        }
        for s in [low, a, b] {
            assert!(!v.claim(s).claimed, "{s:?} should be present");
        }
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn many_states_fill_multiple_segments() {
        // Enough states to overflow first segments of most shards.
        let v = AtomicVisited::new();
        let total = (SHARDS * BASE_SLOTS) / 2;
        for i in 0..total {
            // Spread bits so hashes are non-trivial.
            let s = PackedState((i as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << 97) - 1));
            v.claim(s);
        }
        let n = v.len();
        for i in 0..total {
            let s = PackedState((i as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << 97) - 1));
            assert!(!v.claim(s).claimed);
        }
        assert_eq!(v.len(), n, "re-claiming must not grow the set");
    }

    #[test]
    fn states_roundtrips_claims_and_bytes_grow() {
        let v = AtomicVisited::new();
        assert_eq!(v.states(), Vec::new());
        let mut expect: Vec<u128> = Vec::new();
        for i in 0..1000u128 {
            let s = PackedState(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << 97) - 1));
            assert!(v.claim(s).claimed);
            expect.push(s.0);
        }
        let mut got: Vec<u128> = v.states().iter().map(|s| s.0).collect();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
        // At least the touched first segments are accounted for.
        assert!(v.approx_bytes() >= (BASE_SLOTS * std::mem::size_of::<Slot>()) as u64);
    }

    #[test]
    fn concurrent_claims_have_exactly_one_winner_per_state() {
        const THREADS: usize = 8;
        const STATES: usize = 10_000;
        let v = AtomicVisited::new();
        let wins: Vec<AtomicUsize> = (0..STATES).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (v, wins) = (&v, &wins);
                scope.spawn(move || {
                    // Every thread claims every state; interleave
                    // starting points to maximise collisions.
                    for k in 0..STATES {
                        let i = (k + t * 37) % STATES;
                        let s = PackedState(
                            (i as u128).wrapping_mul(0x2545_f491_4f6c_dd1d) & ((1 << 97) - 1),
                        );
                        if v.claim(s).claimed {
                            wins[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (i, w) in wins.iter().enumerate() {
            assert_eq!(w.load(Ordering::Relaxed), 1, "state {i} won {w:?} times");
        }
        assert_eq!(v.len(), STATES);
    }
}
