//! Sequential exhaustive state-space search (Figure 2 of the paper).
//!
//! The classical reachability baseline the paper improves upon: a
//! worklist of concrete global states for a **fixed** number of caches
//! `n`, with a visited set for pruning. Two pruning disciplines are
//! provided:
//!
//! * [`Dedup::Exact`] — prune exact duplicates (the algorithm of
//!   Figure 2 verbatim);
//! * [`Dedup::Counting`] — prune up to cache permutation (the counting
//!   equivalence of Definition 5, §3.1.1), collapsing the `n!`
//!   symmetric orderings of a tuple.
//!
//! The engine reports the number of *state visits* (generated
//! successors, the `n·k·mⁿ` quantity of §3.1) and the number of
//! distinct states, and checks every reached state for structural and
//! data violations — the quantities compared against the symbolic
//! engine in experiments E4 and E7.

use crate::fxhash::FxHashSet;
use crate::packed::{PackedState, MAX_CACHES};
use crate::spill::{SpillConfig, SpillVisited};
use crate::step::{describe_violations, is_violating, step_into, successors_into, ConcreteStep};
use ccv_model::{ProcEvent, ProtocolSpec};
use ccv_observe::{
    CancelToken, CommonOptions, Counter, FaultKind, Gauge, Governor, Phase, RuleStat, SpanKind,
    StopCause, StopInfo, Track,
};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Duplicate-pruning discipline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Dedup {
    /// Prune exact duplicates only (Figure 2).
    Exact,
    /// Prune up to cache permutation (Definition 5).
    #[default]
    Counting,
}

/// Options for an enumeration run.
///
/// `#[non_exhaustive]`: construct with [`EnumOptions::new`] and refine
/// with the builder methods. Settings shared with the other engines
/// live in the embedded [`CommonOptions`]; for the enumerator the
/// budget caps *distinct* states as an explosion backstop.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct EnumOptions {
    /// Number of caches (1 ..= 16).
    pub n: usize,
    /// Pruning discipline.
    pub dedup: Dedup,
    /// Settings shared by every engine (budget = max distinct states).
    pub common: CommonOptions,
    /// Capture the visited set and frontier into
    /// [`EnumResult::snapshot`] when the run stops early, so it can be
    /// checkpointed and resumed.
    pub capture_snapshot: bool,
    /// Test-only fault injection: the parallel engine's worker 0
    /// panics once its visit tally reaches this value. Exercises the
    /// pool's panic containment; ignored by the sequential engine.
    pub panic_after: Option<usize>,
    /// Spill the visited table to disk segments past a resident-byte
    /// budget (out-of-core enumeration). Sequential engine only; the
    /// unified API routes spill requests there.
    pub spill: Option<SpillConfig>,
}

impl EnumOptions {
    /// Default options for `n` caches.
    pub fn new(n: usize) -> EnumOptions {
        EnumOptions {
            n,
            dedup: Dedup::Counting,
            common: CommonOptions::default().budget(50_000_000),
            capture_snapshot: false,
            panic_after: None,
            spill: None,
        }
    }

    /// Selects exact-duplicate pruning (chainable).
    pub fn exact(mut self) -> EnumOptions {
        self.dedup = Dedup::Exact;
        self
    }

    /// Sets the pruning discipline.
    pub fn dedup(mut self, dedup: Dedup) -> EnumOptions {
        self.dedup = dedup;
        self
    }

    /// Caps the number of distinct states.
    pub fn max_states(mut self, max_states: usize) -> EnumOptions {
        self.common.budget = max_states;
        self
    }

    /// Stops at the first violation found.
    pub fn stop_at_first_error(mut self, stop: bool) -> EnumOptions {
        self.common.stop_at_first_error = stop;
        self
    }

    /// Attaches an observability sink.
    pub fn sink(mut self, sink: impl Into<ccv_observe::SinkHandle>) -> EnumOptions {
        self.common.sink = sink.into();
        self
    }

    /// Collects per-rule attribution (reported through
    /// [`rule_stats`](ccv_observe::EventSink::rule_stats) at exit).
    pub fn rule_stats(mut self, on: bool) -> EnumOptions {
        self.common.rule_stats = on;
        self
    }

    /// Stops the run once this much wall-clock time has elapsed.
    pub fn deadline(mut self, deadline: Duration) -> EnumOptions {
        self.common.deadline = Some(deadline);
        self
    }

    /// Stops the run once the visited table exceeds roughly this many
    /// bytes.
    pub fn max_bytes(mut self, max_bytes: u64) -> EnumOptions {
        self.common.max_bytes = Some(max_bytes);
        self
    }

    /// Uses `cancel` as the run's cooperative cancellation token.
    pub fn cancel(mut self, cancel: CancelToken) -> EnumOptions {
        self.common.cancel = cancel;
        self
    }

    /// Captures the visited set + frontier on an early stop (see
    /// [`EnumResult::snapshot`]).
    pub fn capture_snapshot(mut self, on: bool) -> EnumOptions {
        self.capture_snapshot = on;
        self
    }

    /// Test hook: makes the parallel engine's worker 0 panic after
    /// `visits` visits, to exercise panic containment.
    #[doc(hidden)]
    pub fn inject_panic(mut self, visits: usize) -> EnumOptions {
        self.panic_after = Some(visits);
        self
    }

    /// Spills the visited table to disk segments under `config`
    /// (see [`crate::spill`]).
    pub fn spill(mut self, config: SpillConfig) -> EnumOptions {
        self.spill = Some(config);
        self
    }
}

/// Search state carried from a stopped run into a resumed one — the
/// payload of a checkpoint file (see [`crate::checkpoint`]).
///
/// Resuming is exact: every state in `visited` was already claimed
/// and violation-checked, every state in `frontier` is claimed but
/// not yet expanded, so the resumed run expands exactly the states
/// the uninterrupted run would have, and the combined `visits`,
/// `distinct` and violation totals are identical for any interleaving
/// of stops.
#[derive(Clone, Debug, Default)]
pub struct ResumeSeed {
    /// Every state claimed so far (includes the frontier).
    pub visited: Vec<PackedState>,
    /// Claimed-but-unexpanded states, in worklist order.
    pub frontier: Vec<PackedState>,
    /// Successor visits performed so far.
    pub visits: usize,
    /// Violations found so far, in discovery order.
    pub errors: Vec<EnumError>,
}

/// The visited set and frontier of an early-stopped run, captured when
/// [`EnumOptions::capture_snapshot`] is set.
#[derive(Clone, Debug)]
pub struct EnumSnapshot {
    /// Every claimed state.
    pub visited: Vec<PackedState>,
    /// Claimed-but-unexpanded states, in worklist order.
    pub frontier: Vec<PackedState>,
}

/// A violation found during enumeration.
#[derive(Clone, Debug)]
pub struct EnumError {
    /// The offending state.
    pub state: PackedState,
    /// Violation descriptions (structural and stale-access).
    pub descriptions: Vec<String>,
}

/// Result of an enumeration run.
#[derive(Clone, Debug)]
pub struct EnumResult {
    /// Number of caches.
    pub n: usize,
    /// Distinct states reached (after dedup).
    pub distinct: usize,
    /// Generated successors (the §3.1 "state visits" metric).
    pub visits: usize,
    /// Violations found, in discovery order.
    pub errors: Vec<EnumError>,
    /// True if the run stopped before exhausting the space (budget,
    /// deadline, memory cap, cancellation or a worker panic).
    pub truncated: bool,
    /// Why and in what state the run stopped early; always `Some`
    /// when `truncated` is true.
    pub stopped: Option<StopInfo>,
    /// Visited set + frontier for checkpointing, when the run stopped
    /// early and [`EnumOptions::capture_snapshot`] was set.
    pub snapshot: Option<EnumSnapshot>,
    /// The spill table's first I/O error, when a spilling run
    /// degraded to in-RAM operation. The run stays exact — no
    /// reachable state is dropped and the violation set is unchanged
    /// — but the memory bound is lost and states may be re-expanded.
    pub spill_degraded: Option<String>,
}

impl EnumResult {
    /// True iff the full space was explored without violations.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && !self.truncated
    }
}

/// The sequential enumerator's visited set: fully resident, or
/// sharded with disk spill for out-of-core runs (see [`crate::spill`]).
/// Either backend is an exact set — the reached states, visit counts
/// and violations are identical; only where the bytes live differs.
enum VisitedTable {
    Ram(FxHashSet<PackedState>),
    Spill(Box<SpillVisited>),
}

impl VisitedTable {
    fn new(opts: &EnumOptions) -> VisitedTable {
        match &opts.spill {
            None => VisitedTable::Ram(FxHashSet::default()),
            Some(config) => VisitedTable::Spill(Box::new(SpillVisited::with_fault(
                config,
                opts.common.fault.clone(),
            ))),
        }
    }

    fn insert(&mut self, key: PackedState) -> bool {
        match self {
            VisitedTable::Ram(set) => set.insert(key),
            VisitedTable::Spill(table) => table.insert(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            VisitedTable::Ram(set) => set.len(),
            VisitedTable::Spill(table) => table.len(),
        }
    }

    /// Resident footprint — what the governor's memory cap polls.
    /// Deliberately excludes spilled segment bytes: flushing is what
    /// lets a run proceed under a `max_bytes` budget its full state
    /// space could never fit in.
    fn approx_ram_bytes(&self) -> u64 {
        match self {
            // Hash-table capacity, one control byte per slot besides
            // the state.
            VisitedTable::Ram(set) => {
                (set.capacity() * (std::mem::size_of::<PackedState>() + 1)) as u64
            }
            VisitedTable::Spill(table) => table.approx_ram_bytes(),
        }
    }

    /// Full footprint including on-disk segments — what the
    /// `visited_bytes` gauge reports.
    fn total_bytes(&self) -> u64 {
        match self {
            VisitedTable::Ram(_) => self.approx_ram_bytes(),
            VisitedTable::Spill(table) => table.total_bytes(),
        }
    }

    /// Every admitted state (snapshot capture); `None` if a spill
    /// segment could not be read back.
    fn states(&mut self) -> Option<Vec<PackedState>> {
        match self {
            VisitedTable::Ram(set) => Some(set.iter().copied().collect()),
            VisitedTable::Spill(table) => table.states(),
        }
    }

    /// `(segments written, bytes spilled)` when spilling is on.
    fn spill_stats(&self) -> Option<(u64, u64)> {
        match self {
            VisitedTable::Ram(_) => None,
            VisitedTable::Spill(table) => Some((table.segments_written(), table.spilled_bytes())),
        }
    }

    fn io_error(&self) -> Option<&str> {
        match self {
            VisitedTable::Ram(_) => None,
            VisitedTable::Spill(table) => table.io_error(),
        }
    }
}

/// Approximate resident footprint of the sequential search state,
/// polled by the governor's memory cap: the visited table's RAM
/// portion plus worklist capacity.
fn approx_table_bytes(visited: &VisitedTable, work: &VecDeque<PackedState>) -> u64 {
    visited.approx_ram_bytes() + (work.capacity() * std::mem::size_of::<PackedState>()) as u64
}

/// Runs the exhaustive search from the all-invalid initial state.
pub fn enumerate(spec: &ProtocolSpec, opts: &EnumOptions) -> EnumResult {
    enumerate_resumed(spec, opts, None)
}

/// [`enumerate`], optionally continuing from a stopped run's
/// [`ResumeSeed`] instead of the initial state.
pub fn enumerate_resumed(
    spec: &ProtocolSpec,
    opts: &EnumOptions,
    seed: Option<ResumeSeed>,
) -> EnumResult {
    assert!(
        opts.n >= 1 && opts.n <= MAX_CACHES,
        "n must be in 1..={MAX_CACHES}"
    );
    assert!(
        spec.num_states() <= 16,
        "packed encoding supports at most 16 protocol states"
    );

    let canon = |s: PackedState| match opts.dedup {
        Dedup::Exact => s,
        Dedup::Counting => s.canonical(opts.n),
    };

    let sink = &opts.common.sink;
    let gov = opts.common.governor();
    // Queried once: hot loops must not re-poll every tee'd sink.
    let events = sink.is_enabled();
    let rules_on = opts.common.rule_stats && events;
    // Fixed-size attribution table indexed by rule id, merged into the
    // sink once at exit — the kernel loop stays allocation-free.
    let mut rule_stats: Vec<RuleStat> = if rules_on {
        vec![RuleStat::default(); spec.num_rules()]
    } else {
        Vec::new()
    };
    let mut visited = VisitedTable::new(opts);
    let mut work: VecDeque<PackedState> = VecDeque::new();
    let mut errors: Vec<EnumError> = Vec::new();
    let mut visits = 0usize;
    // Counters accumulated locally and reported once — the successor
    // loop runs millions of times in the differential suites.
    let mut dedup_hits = 0u64;
    let mut dedup_misses = 0u64;
    // The FIFO worklist explores level by level; track the boundary so
    // per-level frontier sizes can be reported.
    let mut level = 0usize;
    let mut next_level = 0usize;

    sink.phase_enter(Phase::Enumerate);
    sink.gauge(Gauge::Threads, 1);

    match seed {
        None => {
            sink.frontier(0, 1);
            // The worklist holds dedup *keys* (canonical representatives
            // under counting dedup), so the set of expanded states — and
            // with it the violation set — is a deterministic function of
            // the options, shared exactly with the work-stealing engine.
            let init = canon(PackedState::INITIAL);
            visited.insert(init);
            if is_violating(spec, init, opts.n) {
                sink.violation("initial state violates coherence");
                errors.push(EnumError {
                    state: init,
                    descriptions: describe_violations(spec, init, opts.n),
                });
            }
            // An initial-state violation honors stop_at_first_error like
            // any other: don't explore a space already known to be broken.
            if errors.is_empty() || !opts.common.stop_at_first_error {
                work.push_back(init);
            }
        }
        Some(seed) => {
            // States in the seed's visited set were already claimed and
            // violation-checked; the frontier continues in its saved
            // worklist order, so a budget-split run expands exactly the
            // states — in exactly the order — the uninterrupted run
            // would have.
            for s in seed.visited {
                visited.insert(s);
            }
            work.extend(seed.frontier);
            visits = seed.visits;
            errors = seed.errors;
            sink.frontier(0, work.len());
        }
    }
    let mut level_remaining = work.len().max(1);

    let mut expansions = 0usize;
    let mut succ_buf: Vec<ConcreteStep> = Vec::new();
    let fault_on = opts.common.fault.is_enabled();
    sink.span_begin(SpanKind::WorkerBusy, 0);
    'outer: while let Some(current) = work.pop_front() {
        // Governed stop checks run at expansion granularity: a popped
        // state goes back to the front of the worklist, so the frontier
        // is exact and a resumed run loses nothing. Full polls (clock +
        // memory) are strided; the token check in between is one load.
        let tripped = if expansions % Governor::STRIDE == 0 {
            gov.poll(approx_table_bytes(&visited, &work))
        } else {
            gov.cancelled()
        };
        let tripped = tripped.or_else(|| {
            (visited.len() >= opts.common.budget).then(|| gov.stop(StopCause::BudgetExhausted))
        });
        if tripped.is_some() {
            work.push_front(current);
            break 'outer;
        }
        // Fault site `enum.worker`: a `panic` firing stops the run
        // with the same contained `WorkerPanic` outcome the parallel
        // pool produces — truncated, resumable, never unwinding out
        // of the engine.
        if fault_on {
            match opts.common.fault.fire("enum.worker") {
                Some(FaultKind::Panic) => {
                    work.push_front(current);
                    gov.stop(StopCause::WorkerPanic);
                    break 'outer;
                }
                Some(FaultKind::SlowRead) => {
                    let millis = opts
                        .common
                        .fault
                        .injector()
                        .map(|i| i.slow_millis())
                        .unwrap_or(5);
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        expansions += 1;
        succ_buf.clear();
        if rules_on {
            // Same (cache, event) double loop as `successors_into`,
            // with the stimulus boundaries observed so firings, yields
            // and kernel time attribute to the rule that fired.
            for i in 0..opts.n {
                for event in ProcEvent::ALL {
                    if current.state(i).is_invalid() && event == ProcEvent::Replace {
                        continue;
                    }
                    let rid = spec.rule_id(current.state(i), event);
                    let before = succ_buf.len();
                    let start = Instant::now();
                    step_into(spec, current, opts.n, i, event, &mut succ_buf);
                    rule_stats[rid].nanos += start.elapsed().as_nanos() as u64;
                    rule_stats[rid].firings += 1;
                    rule_stats[rid].states += (succ_buf.len() - before) as u64;
                }
            }
        } else {
            successors_into(spec, current, opts.n, &mut succ_buf);
        }
        for s in &succ_buf {
            visits += 1;
            if !s.errors.is_empty() {
                if events {
                    sink.violation(&format!("stale access via cache {} {}", s.cache, s.event));
                }
                if rules_on {
                    rule_stats[spec.rule_id(current.state(s.cache), s.event)].violations += 1;
                }
                let descriptions: Vec<String> = s
                    .errors
                    .iter()
                    .map(|e| format!("{e:?} via cache {} {}", s.cache, s.event))
                    .collect();
                errors.push(EnumError {
                    state: s.to,
                    descriptions,
                });
                if opts.common.stop_at_first_error {
                    break 'outer;
                }
            }
            let key = canon(s.to);
            if visited.insert(key) {
                dedup_misses += 1;
                if is_violating(spec, key, opts.n) {
                    if events {
                        sink.violation(&format!(
                            "violating state reached via cache {} {}",
                            s.cache, s.event
                        ));
                    }
                    if rules_on {
                        rule_stats[spec.rule_id(current.state(s.cache), s.event)].violations += 1;
                    }
                    errors.push(EnumError {
                        state: key,
                        descriptions: describe_violations(spec, key, opts.n),
                    });
                    if opts.common.stop_at_first_error {
                        break 'outer;
                    }
                }
                work.push_back(key);
                next_level += 1;
            } else {
                dedup_hits += 1;
                if rules_on {
                    rule_stats[spec.rule_id(current.state(s.cache), s.event)].dedup_hits += 1;
                }
            }
        }
        level_remaining -= 1;
        if level_remaining == 0 {
            level += 1;
            if next_level > 0 {
                sink.frontier(level, next_level);
            }
            if events {
                sink.sample(Track::Pending, work.len() as u64);
                sink.sample(Track::Visited, visited.len() as u64);
            }
            level_remaining = next_level;
            next_level = 0;
        }
    }
    sink.span_end(SpanKind::WorkerBusy, 0);

    let stopped = gov.stop_info(work.len());
    let truncated = stopped.is_some();
    sink.count(Counter::Visits, visits as u64);
    sink.count(Counter::DedupHits, dedup_hits);
    sink.count(Counter::DedupMisses, dedup_misses);
    sink.count(Counter::Errors, errors.len() as u64);
    sink.count(Counter::BudgetPolls, gov.polls());
    if let Some(info) = &stopped {
        sink.count(Counter::BudgetStops, 1);
        sink.stopped(info.cause.name(), info.detail.as_deref());
    }
    sink.gauge(Gauge::DistinctStates, visited.len() as u64);
    sink.gauge(Gauge::Levels, level as u64);
    // Unlike the governor's poll, the gauge reports the *full* table
    // footprint, spilled segments included.
    sink.gauge(
        Gauge::VisitedBytes,
        visited.total_bytes() + (work.capacity() * std::mem::size_of::<PackedState>()) as u64,
    );
    if let Some((segments, bytes)) = visited.spill_stats() {
        sink.count(Counter::SpillSegments, segments);
        sink.count(Counter::SpillBytes, bytes);
    }
    if let Some(err) = visited.io_error() {
        sink.progress(&format!("spill degraded to in-RAM operation: {err}"));
    }
    if rules_on {
        let mut firings_total = 0u64;
        for (rid, stat) in rule_stats.iter().enumerate() {
            if stat.firings > 0 {
                firings_total += stat.firings;
                sink.rule_stats(&spec.rule_name(rid), *stat);
            }
        }
        sink.count(Counter::RuleFirings, firings_total);
    }
    if events {
        sink.progress(&format!(
            "enumerate(n={}): {} distinct states, {} visits",
            opts.n,
            visited.len(),
            visits
        ));
    }
    sink.phase_exit(Phase::Enumerate);

    let snapshot = (opts.capture_snapshot && truncated)
        .then(|| visited.states())
        .flatten()
        .map(|all| EnumSnapshot {
            visited: all,
            frontier: work.iter().copied().collect(),
        });
    EnumResult {
        n: opts.n,
        distinct: visited.len(),
        visits,
        errors,
        truncated,
        stopped,
        snapshot,
        spill_degraded: visited.io_error().map(str::to_string),
    }
}

/// Collects the full reachable set (used by the Theorem 1 cross-check).
/// Always uses exact dedup so that every concrete state is present.
pub fn reachable_states(spec: &ProtocolSpec, n: usize, max_states: usize) -> Vec<PackedState> {
    assert!((1..=MAX_CACHES).contains(&n));
    let mut visited: FxHashSet<PackedState> = FxHashSet::default();
    let mut work: VecDeque<PackedState> = VecDeque::new();
    visited.insert(PackedState::INITIAL);
    work.push_back(PackedState::INITIAL);
    let mut succ_buf: Vec<ConcreteStep> = Vec::new();
    while let Some(current) = work.pop_front() {
        succ_buf.clear();
        successors_into(spec, current, n, &mut succ_buf);
        for s in &succ_buf {
            if visited.insert(s.to) {
                assert!(
                    visited.len() <= max_states,
                    "reachable set exceeded {max_states} states"
                );
                work.push_back(s.to);
            }
        }
    }
    visited.into_iter().collect()
}

/// Upper bound `mⁿ` on the raw state space of §3.1 (protocol states
/// only, ignoring the data augmentation), saturating at `usize::MAX`.
pub fn raw_state_space(spec: &ProtocolSpec, n: usize) -> usize {
    let m = spec.num_states();
    let mut acc: usize = 1;
    for _ in 0..n {
        acc = acc.saturating_mul(m);
    }
    acc
}

/// The §3.1 lower estimate of exhaustive expansion work: `n · k · mⁿ`.
pub fn naive_visit_estimate(spec: &ProtocolSpec, n: usize) -> usize {
    raw_state_space(spec, n)
        .saturating_mul(n)
        .saturating_mul(ProcEvent::COUNT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::{illinois, illinois_missing_invalidation, msi};

    #[test]
    fn illinois_enumeration_is_clean_for_small_n() {
        let spec = illinois();
        for n in 1..=4 {
            let r = enumerate(&spec, &EnumOptions::new(n));
            assert!(r.is_clean(), "n={n}: {:?}", r.errors.first());
            assert!(r.distinct >= 2);
        }
    }

    #[test]
    fn counting_dedup_never_exceeds_exact() {
        let spec = illinois();
        for n in 1..=4 {
            let exact = enumerate(&spec, &EnumOptions::new(n).exact());
            let counting = enumerate(&spec, &EnumOptions::new(n));
            assert!(
                counting.distinct <= exact.distinct,
                "n={n}: counting {} > exact {}",
                counting.distinct,
                exact.distinct
            );
            assert!(exact.is_clean() && counting.is_clean());
        }
    }

    #[test]
    fn exact_state_count_grows_with_n() {
        let spec = illinois();
        let d2 = enumerate(&spec, &EnumOptions::new(2).exact()).distinct;
        let d3 = enumerate(&spec, &EnumOptions::new(3).exact()).distinct;
        let d4 = enumerate(&spec, &EnumOptions::new(4).exact()).distinct;
        assert!(d2 < d3 && d3 < d4, "explosion expected: {d2} {d3} {d4}");
    }

    #[test]
    fn counting_state_count_grows_polynomially() {
        // Counting equivalence should grow much slower than exact.
        let spec = illinois();
        let exact5 = enumerate(&spec, &EnumOptions::new(5).exact()).distinct;
        let count5 = enumerate(&spec, &EnumOptions::new(5)).distinct;
        assert!(count5 * 4 < exact5, "counting {count5} vs exact {exact5}");
    }

    #[test]
    fn buggy_protocol_is_caught_with_two_caches() {
        let spec = illinois_missing_invalidation();
        let r = enumerate(&spec, &EnumOptions::new(2));
        assert!(!r.errors.is_empty());
    }

    #[test]
    fn single_cache_systems_are_trivially_clean() {
        for spec in [msi(), illinois()] {
            let r = enumerate(&spec, &EnumOptions::new(1));
            assert!(r.is_clean(), "{}", spec.name());
        }
    }

    #[test]
    fn stop_at_first_error_returns_one() {
        let spec = illinois_missing_invalidation();
        let r = enumerate(&spec, &EnumOptions::new(3).stop_at_first_error(true));
        assert_eq!(r.errors.len(), 1);
    }

    #[test]
    fn reachable_states_contains_initial() {
        let spec = msi();
        let all = reachable_states(&spec, 2, 1 << 20);
        assert!(all.contains(&PackedState::INITIAL));
        assert!(all.len() >= 3);
    }

    #[test]
    fn estimates_match_section_3_1() {
        let spec = illinois(); // m = 4, k = 3
        assert_eq!(raw_state_space(&spec, 3), 64);
        assert_eq!(naive_visit_estimate(&spec, 3), 64 * 3 * 3);
    }

    #[test]
    fn max_states_truncates() {
        let spec = illinois();
        let r = enumerate(&spec, &EnumOptions::new(4).max_states(5));
        assert!(r.truncated);
        assert!(!r.is_clean());
        let info = r.stopped.expect("truncated runs carry stop info");
        assert_eq!(info.cause, StopCause::BudgetExhausted);
        assert!(info.frontier > 0, "budget stop leaves a frontier");
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let spec = illinois();
        let r = enumerate(&spec, &EnumOptions::new(3).deadline(Duration::ZERO));
        assert!(r.truncated);
        assert_eq!(r.stopped.unwrap().cause, StopCause::DeadlineExpired);
    }

    #[test]
    fn tiny_memory_cap_stops_the_run() {
        let spec = illinois();
        let r = enumerate(&spec, &EnumOptions::new(4).exact().max_bytes(1));
        assert!(r.truncated);
        assert_eq!(r.stopped.unwrap().cause, StopCause::MemoryExhausted);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_expansion() {
        let spec = illinois();
        let token = CancelToken::new();
        token.cancel();
        let r = enumerate(&spec, &EnumOptions::new(3).cancel(token));
        assert!(r.truncated);
        assert_eq!(r.stopped.unwrap().cause, StopCause::Cancelled);
        // The initial state was claimed but never expanded.
        assert_eq!(r.distinct, 1);
        assert_eq!(r.visits, 0);
    }

    #[test]
    fn untruncated_runs_capture_no_snapshot() {
        let spec = illinois();
        let r = enumerate(&spec, &EnumOptions::new(2).capture_snapshot(true));
        assert!(!r.truncated);
        assert!(r.stopped.is_none());
        assert!(r.snapshot.is_none());
    }

    #[test]
    fn budget_split_resume_matches_uninterrupted() {
        let spec = illinois();
        let full = enumerate(&spec, &EnumOptions::new(3).exact());
        assert!(!full.truncated);

        let leg1 = enumerate(
            &spec,
            &EnumOptions::new(3)
                .exact()
                .max_states(5)
                .capture_snapshot(true),
        );
        assert!(leg1.truncated);
        let snap = leg1.snapshot.expect("snapshot captured");
        assert_eq!(snap.visited.len(), leg1.distinct);
        let seed = ResumeSeed {
            visited: snap.visited,
            frontier: snap.frontier,
            visits: leg1.visits,
            errors: leg1.errors,
        };
        let leg2 = enumerate_resumed(&spec, &EnumOptions::new(3).exact(), Some(seed));
        assert!(!leg2.truncated);
        assert!(leg2.stopped.is_none());
        assert_eq!(leg2.distinct, full.distinct);
        assert_eq!(leg2.visits, full.visits);
        assert_eq!(leg2.errors.len(), full.errors.len());
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccv-explicit-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spilled_run_equals_in_ram_run() {
        let spec = illinois();
        for (dedup, n) in [(Dedup::Exact, 4), (Dedup::Counting, 5)] {
            let ram = enumerate(&spec, &EnumOptions::new(n).dedup(dedup));
            let dir = spill_dir(&format!("eq{n}"));
            // A few hundred bytes of budget: constant segment churn.
            let spilled = enumerate(
                &spec,
                &EnumOptions::new(n)
                    .dedup(dedup)
                    .spill(SpillConfig::new(&dir, Some(512))),
            );
            assert_eq!(spilled.distinct, ram.distinct, "n={n} {dedup:?}");
            assert_eq!(spilled.visits, ram.visits, "n={n} {dedup:?}");
            assert_eq!(spilled.errors.len(), ram.errors.len());
            assert!(spilled.is_clean());
            assert!(
                std::fs::read_dir(&dir).unwrap().count() > 0,
                "tiny budget must produce segment files"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn spilled_run_finds_the_same_violations() {
        let spec = illinois_missing_invalidation();
        let ram = enumerate(&spec, &EnumOptions::new(3));
        let dir = spill_dir("bug");
        let spilled = enumerate(
            &spec,
            &EnumOptions::new(3).spill(SpillConfig::new(&dir, Some(256))),
        );
        assert_eq!(spilled.errors.len(), ram.errors.len());
        assert_eq!(spilled.distinct, ram.distinct);
        let mut a: Vec<_> = spilled.errors.iter().map(|e| e.state).collect();
        let mut b: Vec<_> = ram.errors.iter().map(|e| e.state).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_run_completes_under_a_budget_that_stops_the_ram_run() {
        let spec = illinois();
        // Pick a byte cap between the spill table's bounded resident
        // footprint and the full in-RAM table. n must be large enough
        // that the run crosses a governor poll stride (512 expansions)
        // while the table is big.
        let cap = 16 * 1024;
        let ram = enumerate(&spec, &EnumOptions::new(10).exact().max_bytes(cap));
        assert!(ram.truncated, "cap must stop the in-RAM run");
        assert_eq!(ram.stopped.unwrap().cause, StopCause::MemoryExhausted);

        let dir = spill_dir("cap");
        let spilled = enumerate(
            &spec,
            &EnumOptions::new(10)
                .exact()
                .max_bytes(cap)
                .spill(SpillConfig::new(&dir, Some(2 * 1024))),
        );
        assert!(
            !spilled.truncated,
            "spilling must complete under the same cap: {:?}",
            spilled.stopped
        );
        let unconstrained = enumerate(&spec, &EnumOptions::new(10).exact());
        assert_eq!(spilled.distinct, unconstrained.distinct);
        assert_eq!(spilled.visits, unconstrained.visits);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_run_survives_checkpoint_resume() {
        let spec = illinois();
        let full = enumerate(&spec, &EnumOptions::new(6).exact());

        let dir1 = spill_dir("ck1");
        let leg1 = enumerate(
            &spec,
            &EnumOptions::new(6)
                .exact()
                .max_states(40)
                .capture_snapshot(true)
                .spill(SpillConfig::new(&dir1, Some(256))),
        );
        assert!(leg1.truncated);
        let snap = leg1.snapshot.expect("spilled snapshot must read back");
        assert_eq!(snap.visited.len(), leg1.distinct);
        let seed = ResumeSeed {
            visited: snap.visited,
            frontier: snap.frontier,
            visits: leg1.visits,
            errors: leg1.errors,
        };
        // Resume into a *fresh* spill directory: the checkpoint is the
        // hand-off, not the segment files.
        let dir2 = spill_dir("ck2");
        let leg2 = enumerate_resumed(
            &spec,
            &EnumOptions::new(6)
                .exact()
                .spill(SpillConfig::new(&dir2, Some(256))),
            Some(seed),
        );
        assert!(!leg2.truncated);
        assert_eq!(leg2.distinct, full.distinct);
        assert_eq!(leg2.visits, full.visits);
        assert_eq!(leg2.errors.len(), full.errors.len());
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn spill_metrics_are_reported() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois();
        let dir = spill_dir("metrics");
        let metrics = Arc::new(Metrics::new());
        let r = enumerate(
            &spec,
            &EnumOptions::new(5)
                .spill(SpillConfig::new(&dir, Some(256)))
                .sink(metrics.clone() as Arc<_>),
        );
        assert!(r.is_clean());
        let snap = metrics.snapshot();
        assert!(snap.counter(Counter::SpillSegments) > 0);
        assert!(snap.counter(Counter::SpillBytes) > 0);
        // The gauge covers RAM + disk, so it must dominate the bytes
        // actually spilled.
        assert!(
            snap.gauge(Gauge::VisitedBytes).unwrap() >= snap.counter(Counter::SpillBytes),
            "visited_bytes must include on-disk segments"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rule_attribution_matches_the_run_totals() {
        use ccv_observe::{Counter, Metrics};
        use std::sync::Arc;

        let spec = illinois();
        let plain = enumerate(&spec, &EnumOptions::new(3));

        let metrics = Arc::new(Metrics::new());
        let attributed = enumerate(
            &spec,
            &EnumOptions::new(3)
                .sink(metrics.clone() as Arc<_>)
                .rule_stats(true),
        );
        // Attribution must not change what the engine explores.
        assert_eq!(attributed.distinct, plain.distinct);
        assert_eq!(attributed.visits, plain.visits);

        let snap = metrics.snapshot();
        let firings: u64 = snap.rules.values().map(|s| s.firings).sum();
        assert_eq!(firings, snap.counter(Counter::RuleFirings));
        let states: u64 = snap.rules.values().map(|s| s.states).sum();
        assert_eq!(states, attributed.visits as u64);
        let dedup: u64 = snap.rules.values().map(|s| s.dedup_hits).sum();
        assert_eq!(dedup, snap.counter(Counter::DedupHits));
        // Rule names come from the protocol's state shorts.
        for name in snap.rules.keys() {
            let (state, event) = name.split_once(':').unwrap();
            assert!(spec.state_by_name(state).is_some(), "unknown state {state}");
            assert!(matches!(event, "R" | "W" | "Z"));
        }
    }

    #[test]
    fn violations_are_attributed_to_rules() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois_missing_invalidation();
        let metrics = Arc::new(Metrics::new());
        let r = enumerate(
            &spec,
            &EnumOptions::new(2)
                .sink(metrics.clone() as Arc<_>)
                .rule_stats(true),
        );
        assert!(!r.errors.is_empty());
        let snap = metrics.snapshot();
        let violations: u64 = snap.rules.values().map(|s| s.violations).sum();
        assert_eq!(violations, r.errors.len() as u64);
    }
}
