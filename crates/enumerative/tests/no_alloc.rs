//! Pins the allocation-freedom of the enumeration kernel.
//!
//! The successor kernel (`successors_into`), the violation fast path
//! (`is_violating`) and counting canonicalisation (`canonical`) run
//! millions of times per enumeration; PR 2 rebuilt them around
//! fixed-capacity stack storage and a packed error mask precisely so
//! that the hot loop never touches the allocator. This test installs a
//! counting `GlobalAlloc` and asserts that a warm kernel pass over an
//! entire reachable state space performs **zero** heap allocations.
//!
//! (This lives in an integration test because the library itself is
//! `#![forbid(unsafe_code)]`; implementing `GlobalAlloc` requires
//! `unsafe` and belongs in a separate compilation unit.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ccv_enum::{is_violating, reachable_states, successors_into, ConcreteStep};
use ccv_model::protocols;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warm_kernel_pass_performs_zero_allocations() {
    let spec = protocols::dragon();
    let n = 8;

    // Cold phase: collect the space and warm the successor buffer.
    // Allocations here are expected and uncounted.
    let states = reachable_states(&spec, n, 1 << 20);
    assert!(states.len() > 1000, "state space unexpectedly small");
    let mut buf: Vec<ConcreteStep> = Vec::with_capacity(1024);

    // Hot phase: one full kernel pass over every reachable state.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut violations = 0usize;
    let mut successors = 0usize;
    let mut canon_acc = 0u128;
    for &gs in &states {
        buf.clear();
        successors_into(&spec, gs, n, &mut buf);
        successors += buf.len();
        for s in &buf {
            if is_violating(&spec, s.to, n) {
                violations += 1;
            }
            canon_acc ^= s.to.canonical(n).0;
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "kernel allocated on the hot path ({} allocations over {} states)",
        after - before,
        states.len()
    );
    // Sanity: the pass did real work and the compiler kept it.
    assert!(successors > states.len());
    assert_eq!(violations, 0, "Dragon is a correct protocol");
    std::hint::black_box(canon_acc);
}
