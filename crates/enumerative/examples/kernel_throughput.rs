//! Successor-kernel microbenchmark: raw `successors_into` throughput
//! over every reachable state of a few bundled protocols, isolated
//! from hashing, deduplication and scheduling. Useful for attributing
//! engine-level speedups to the kernel itself (see `docs/perf.md`).
//!
//! ```text
//! cargo run --release -p ccv-enum --example kernel_throughput
//! ```

use std::time::Instant;

/// Roughly how many state expansions to time per protocol.
const TARGET_EXPANSIONS: usize = 2_000_000;

fn main() {
    for (name, spec) in [
        ("illinois", ccv_model::protocols::illinois()),
        ("dragon", ccv_model::protocols::dragon()),
        ("berkeley", ccv_model::protocols::berkeley()),
    ] {
        let n = 8usize;
        let states = ccv_enum::reachable_states(&spec, n, 1 << 24);
        let mut buf = Vec::with_capacity(1024);
        let mut total = 0usize;
        // One warm-up sweep before timing.
        for &gs in &states {
            buf.clear();
            ccv_enum::successors_into(&spec, gs, n, &mut buf);
        }
        let reps = (TARGET_EXPANSIONS / states.len().max(1)).max(1);
        let t0 = Instant::now();
        for _ in 0..reps {
            for &gs in &states {
                buf.clear();
                ccv_enum::successors_into(&spec, gs, n, &mut buf);
                total += buf.len();
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name} n={n}: {:.2}M successors/s ({} states x {} reps)",
            total as f64 / dt / 1e6,
            states.len(),
            reps
        );
        std::hint::black_box(total);
    }
}
