//! A hand-rolled JSON value: renderer and parser.
//!
//! Deliberately dependency-free. The renderer produces pretty-printed,
//! deterministic output (object keys keep insertion order); the parser
//! accepts standard JSON and exists mostly so tests can read back what
//! the metrics exporter wrote.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered with minimal digits; integers stay integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line (used for NDJSON event records).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing whitespace is allowed; any
    /// other trailing content is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::str("illinois")),
            ("visits".to_string(), Json::int(22)),
            ("ok".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            (
                "sizes".to_string(),
                Json::Arr(vec![Json::int(1), Json::int(2)]),
            ),
        ]);
        let text = doc.render();
        assert!(text.contains("\"visits\": 22"));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn roundtrip_compact_and_escapes() {
        let doc = Json::Obj(vec![(
            "msg".to_string(),
            Json::str("line1\nline2\t\"quoted\" \\"),
        )]);
        let text = doc.render_compact();
        assert!(!text.contains('\n'));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1.5, "x"], "c": -2}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap()[0].as_f64(),
            Some(1.5)
        );
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x")
        );
        assert_eq!(doc.get("c").unwrap().as_u64(), None);
        assert_eq!(doc.get("c").unwrap().as_f64(), Some(-2.0));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
