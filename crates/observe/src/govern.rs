//! Resource governance: budgets, deadlines, memory caps and
//! cooperative cancellation.
//!
//! Every engine loop in ccv is potentially unbounded — a buggy
//! protocol or a large cache count can run forever or exhaust memory
//! with no verdict to show for it. This module gives all engines one
//! shared vocabulary for stopping *early but honestly*:
//!
//! * [`CancelToken`] — a cheap cloneable flag (one `AtomicU8`) that a
//!   CLI signal handler, a sibling worker or a test flips to request
//!   a stop. Engines poll it cooperatively.
//! * [`Governor`] — wraps the token together with an optional
//!   wall-clock deadline and approximate memory cap, and arbitrates
//!   the *first* stop cause when several trip at once.
//! * [`StopCause`] / [`StopInfo`] — why and in what state a run
//!   stopped, attached to engine results so reports can render an
//!   `INCONCLUSIVE` verdict with the reason instead of silently
//!   pretending the run finished.
//!
//! Polling discipline: checking the token is one relaxed atomic load
//! and is fine at rule-firing granularity. Reading the clock is not —
//! engines call [`Governor::poll`] every [`Governor::STRIDE`] firings
//! and [`Governor::cancelled`] (token only) in between, so a
//! governed run costs a branch per firing and a clock read per
//! stride.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token state: the run is proceeding.
const RUNNING: u8 = 0;
/// Token state: an external party (Ctrl-C, a test, an embedding
/// application) asked the run to stop.
const CANCELLED: u8 = 1;
/// Token state: the run itself tripped a resource budget.
const EXHAUSTED: u8 = 2;
/// Token state: the party the run was serving went away (a client
/// dropped its connection mid-request), so the result has no
/// recipient and the work should stop.
const DISCONNECTED: u8 = 3;

/// Process-global cancellation flag backing [`CancelToken::global`].
/// Written by [`request_global_cancel`], which is async-signal-safe.
static GLOBAL_CANCEL: AtomicU8 = AtomicU8::new(RUNNING);

/// Flips the process-global cancellation flag (the one behind
/// [`CancelToken::global`]). Performs exactly one atomic store, so it
/// is safe to call from a signal handler.
pub fn request_global_cancel() {
    GLOBAL_CANCEL.store(CANCELLED, Ordering::Release);
}

/// Resets the process-global cancellation flag. For use between runs
/// in one process (tests, batch drivers) — not from signal handlers.
pub fn reset_global_cancel() {
    GLOBAL_CANCEL.store(RUNNING, Ordering::Release);
}

#[derive(Clone, Debug)]
enum Flag {
    Shared(Arc<AtomicU8>),
    Global,
}

/// A shared cooperative cancellation flag.
///
/// Clones observe the same underlying state (`Running`, `Cancelled`
/// or `BudgetExhausted`). Cancellation wins over exhaustion: once a
/// token is cancelled, [`CancelToken::exhaust`] no longer changes it,
/// so the user's Ctrl-C is never re-labelled as a budget stop.
#[derive(Clone, Debug)]
pub struct CancelToken(Flag);

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token in the `Running` state, independent of all
    /// others.
    pub fn new() -> CancelToken {
        CancelToken(Flag::Shared(Arc::new(AtomicU8::new(RUNNING))))
    }

    /// The process-global token, shared by every call to this
    /// function. A signal handler flips it via
    /// [`request_global_cancel`]; the CLI hands this token to engines
    /// so Ctrl-C stops them cooperatively.
    pub fn global() -> CancelToken {
        CancelToken(Flag::Global)
    }

    fn cell(&self) -> &AtomicU8 {
        match &self.0 {
            Flag::Shared(cell) => cell,
            Flag::Global => &GLOBAL_CANCEL,
        }
    }

    /// Requests cancellation (external intent: Ctrl-C, test, caller).
    pub fn cancel(&self) {
        self.cell().store(CANCELLED, Ordering::Release);
    }

    /// Requests cancellation because the party the run is serving
    /// disconnected (e.g. a `ccv serve` client dropped its socket
    /// mid-stream). Engines observe it like any other cancellation
    /// but report it as [`StopCause::Disconnected`], so a vanished
    /// client is never mislabelled as a user's Ctrl-C. An explicit
    /// [`CancelToken::cancel`] is sticky and wins over a later
    /// disconnect.
    pub fn request_cancel(&self) {
        let _ = self.cell().compare_exchange(
            RUNNING,
            DISCONNECTED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Marks the run as budget-exhausted, unless it was already
    /// cancelled (cancellation is sticky and wins).
    pub fn exhaust(&self) {
        let _ =
            self.cell()
                .compare_exchange(RUNNING, EXHAUSTED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Returns the token to `Running`. Use between runs that share a
    /// token; racing this against an in-flight run is a logic error.
    pub fn reset(&self) {
        self.cell().store(RUNNING, Ordering::Release);
    }

    /// True if the token is in any non-`Running` state.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.cell().load(Ordering::Relaxed) != RUNNING
    }

    /// True if the token was explicitly cancelled (as opposed to
    /// budget-exhausted).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cell().load(Ordering::Relaxed) == CANCELLED
    }

    /// True if cancellation was requested because the requesting
    /// party disconnected (see [`CancelToken::request_cancel`]).
    #[inline]
    pub fn is_disconnected(&self) -> bool {
        self.cell().load(Ordering::Relaxed) == DISCONNECTED
    }
}

/// Why a run stopped before reaching a conclusive verdict.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopCause {
    /// The state / visit budget was exhausted.
    BudgetExhausted,
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The approximate memory cap was exceeded.
    MemoryExhausted,
    /// The run was cancelled externally (Ctrl-C, caller request).
    Cancelled,
    /// A worker thread panicked; the pool drained and reported
    /// instead of deadlocking.
    WorkerPanic,
    /// The party the run was serving disconnected mid-request (a
    /// `ccv serve` client dropped its socket), so the run stopped
    /// rather than compute a result nobody will read.
    Disconnected,
}

impl StopCause {
    /// Stable snake_case name, used in metrics exports, NDJSON events
    /// and checkpoint headers.
    pub fn name(self) -> &'static str {
        match self {
            StopCause::BudgetExhausted => "budget_exhausted",
            StopCause::DeadlineExpired => "deadline_expired",
            StopCause::MemoryExhausted => "memory_exhausted",
            StopCause::Cancelled => "cancelled",
            StopCause::WorkerPanic => "worker_panic",
            StopCause::Disconnected => "disconnected",
        }
    }

    /// Human-oriented phrasing for report rendering.
    pub fn describe(self) -> &'static str {
        match self {
            StopCause::BudgetExhausted => "state budget exhausted",
            StopCause::DeadlineExpired => "wall-clock deadline expired",
            StopCause::MemoryExhausted => "memory cap exceeded",
            StopCause::Cancelled => "cancelled",
            StopCause::WorkerPanic => "worker thread panicked",
            StopCause::Disconnected => "client disconnected",
        }
    }

    fn code(self) -> u8 {
        match self {
            StopCause::BudgetExhausted => 1,
            StopCause::DeadlineExpired => 2,
            StopCause::MemoryExhausted => 3,
            StopCause::Cancelled => 4,
            StopCause::WorkerPanic => 5,
            StopCause::Disconnected => 6,
        }
    }

    fn from_code(code: u8) -> Option<StopCause> {
        Some(match code {
            1 => StopCause::BudgetExhausted,
            2 => StopCause::DeadlineExpired,
            3 => StopCause::MemoryExhausted,
            4 => StopCause::Cancelled,
            5 => StopCause::WorkerPanic,
            6 => StopCause::Disconnected,
            _ => return None,
        })
    }
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// Why and in what state a run stopped early. Engines attach one of
/// these to their result when they give up before the fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StopInfo {
    /// The first cause that tripped.
    pub cause: StopCause,
    /// Free-form detail — e.g. the panic payload of a crashed worker.
    pub detail: Option<String>,
    /// States still awaiting expansion when the run stopped.
    pub frontier: usize,
    /// Wall-clock time from engine start to the stop.
    pub elapsed: Duration,
}

impl StopInfo {
    /// A stop with no detail message.
    pub fn new(cause: StopCause, frontier: usize, elapsed: Duration) -> StopInfo {
        StopInfo {
            cause,
            detail: None,
            frontier,
            elapsed,
        }
    }

    /// One-line rendering: cause, optional detail, frontier size.
    pub fn describe(&self) -> String {
        match &self.detail {
            Some(d) => format!("{} ({d})", self.cause),
            None => self.cause.to_string(),
        }
    }
}

/// Arbitrates early stops for one engine run.
///
/// A `Governor` is cheap to construct per run. It is thread-safe:
/// parallel workers share one by reference, and the first worker to
/// observe a tripped limit records the cause for everyone
/// (first-cause-wins arbitration via one `compare_exchange`).
#[derive(Debug)]
pub struct Governor {
    start: Instant,
    deadline: Option<Duration>,
    max_bytes: Option<u64>,
    token: CancelToken,
    /// First recorded stop cause as a `StopCause::code`, 0 = none.
    cause: AtomicU8,
    /// Full polls performed (clock + memory checks), for the
    /// `budget_polls` counter.
    polls: AtomicU64,
    /// Unused; reserves layout room for a future sampled field.
    _pad: AtomicU32,
}

impl Governor {
    /// Suggested number of rule firings between full [`Governor::poll`]
    /// calls. Between polls, [`Governor::cancelled`] (one atomic load)
    /// is cheap enough for every firing.
    pub const STRIDE: usize = 512;

    /// A governor over the given limits, started now.
    pub fn new(deadline: Option<Duration>, max_bytes: Option<u64>, token: CancelToken) -> Governor {
        Governor {
            start: Instant::now(),
            deadline,
            max_bytes,
            token,
            cause: AtomicU8::new(0),
            polls: AtomicU64::new(0),
            _pad: AtomicU32::new(0),
        }
    }

    /// Cheap check: has anyone (token or a sibling worker) already
    /// requested a stop? One relaxed load; no clock read.
    #[inline]
    pub fn cancelled(&self) -> Option<StopCause> {
        if let Some(cause) = StopCause::from_code(self.cause.load(Ordering::Relaxed)) {
            return Some(cause);
        }
        if self.token.is_stopped() {
            let cause = if self.token.is_cancelled() {
                StopCause::Cancelled
            } else if self.token.is_disconnected() {
                StopCause::Disconnected
            } else {
                StopCause::BudgetExhausted
            };
            return Some(self.stop(cause));
        }
        None
    }

    /// Full poll: token, deadline and memory. `bytes` is the caller's
    /// current approximate footprint (arena + visited table). Call
    /// every [`Governor::STRIDE`] firings.
    pub fn poll(&self, bytes: u64) -> Option<StopCause> {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if let Some(cause) = self.cancelled() {
            return Some(cause);
        }
        if let Some(deadline) = self.deadline {
            if self.start.elapsed() >= deadline {
                return Some(self.stop(StopCause::DeadlineExpired));
            }
        }
        if let Some(cap) = self.max_bytes {
            if bytes > cap {
                return Some(self.stop(StopCause::MemoryExhausted));
            }
        }
        None
    }

    /// Records `cause` as the run's stop cause if none is recorded
    /// yet and returns the winning (first) cause. Sibling workers
    /// sharing this governor observe it through
    /// [`Governor::cancelled`]. The external token is deliberately
    /// left untouched: it is an *input* — a budget stop in one run
    /// must not poison later runs that reuse the same options.
    pub fn stop(&self, cause: StopCause) -> StopCause {
        match self
            .cause
            .compare_exchange(0, cause.code(), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => cause,
            Err(prev) => StopCause::from_code(prev).unwrap_or(cause),
        }
    }

    /// The recorded stop cause, if the run stopped early.
    pub fn cause(&self) -> Option<StopCause> {
        StopCause::from_code(self.cause.load(Ordering::Acquire))
    }

    /// Wall-clock time since the governor was constructed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Number of full polls performed so far.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Builds the [`StopInfo`] for this run, if it stopped early.
    pub fn stop_info(&self, frontier: usize) -> Option<StopInfo> {
        self.cause()
            .map(|cause| StopInfo::new(cause, frontier, self.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_running() {
        let token = CancelToken::new();
        assert!(!token.is_stopped());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_wins_over_exhaust() {
        let token = CancelToken::new();
        token.cancel();
        token.exhaust();
        assert!(token.is_cancelled());
        token.reset();
        token.exhaust();
        assert!(token.is_stopped());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn global_token_reflects_signal_request() {
        reset_global_cancel();
        let token = CancelToken::global();
        assert!(!token.is_stopped());
        request_global_cancel();
        assert!(token.is_cancelled());
        reset_global_cancel();
        assert!(!token.is_stopped());
    }

    #[test]
    fn governor_unbounded_never_trips() {
        let gov = Governor::new(None, None, CancelToken::new());
        assert_eq!(gov.cancelled(), None);
        assert_eq!(gov.poll(u64::MAX), None);
        assert_eq!(gov.cause(), None);
        assert_eq!(gov.polls(), 1);
        assert!(gov.stop_info(10).is_none());
    }

    #[test]
    fn governor_trips_on_memory_cap() {
        let gov = Governor::new(None, Some(1024), CancelToken::new());
        assert_eq!(gov.poll(512), None);
        assert_eq!(gov.poll(2048), Some(StopCause::MemoryExhausted));
        // First cause is sticky.
        assert_eq!(gov.cause(), Some(StopCause::MemoryExhausted));
        let info = gov.stop_info(7).expect("stopped");
        assert_eq!(info.cause, StopCause::MemoryExhausted);
        assert_eq!(info.frontier, 7);
    }

    #[test]
    fn governor_trips_on_zero_deadline() {
        let gov = Governor::new(Some(Duration::ZERO), None, CancelToken::new());
        assert_eq!(gov.poll(0), Some(StopCause::DeadlineExpired));
    }

    #[test]
    fn governor_sees_token_cancel_on_cheap_path() {
        let token = CancelToken::new();
        let gov = Governor::new(None, None, token.clone());
        assert_eq!(gov.cancelled(), None);
        token.cancel();
        assert_eq!(gov.cancelled(), Some(StopCause::Cancelled));
    }

    #[test]
    fn first_cause_wins_and_leaves_token_alone() {
        let token = CancelToken::new();
        let gov = Governor::new(None, None, token.clone());
        assert_eq!(gov.stop(StopCause::WorkerPanic), StopCause::WorkerPanic);
        assert_eq!(gov.stop(StopCause::BudgetExhausted), StopCause::WorkerPanic);
        // Sibling workers observe the stop through the governor...
        assert_eq!(gov.cancelled(), Some(StopCause::WorkerPanic));
        // ...but the external token is an input and stays running, so
        // a later run reusing the same options is not poisoned.
        assert!(!token.is_stopped());
    }

    #[test]
    fn stop_cause_names_are_stable() {
        for cause in [
            StopCause::BudgetExhausted,
            StopCause::DeadlineExpired,
            StopCause::MemoryExhausted,
            StopCause::Cancelled,
            StopCause::WorkerPanic,
            StopCause::Disconnected,
        ] {
            assert_eq!(StopCause::from_code(cause.code()), Some(cause));
            assert!(!cause.name().is_empty());
            assert!(cause
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn disconnect_maps_to_its_own_cause() {
        let token = CancelToken::new();
        let gov = Governor::new(None, None, token.clone());
        token.request_cancel();
        assert!(token.is_stopped());
        assert!(token.is_disconnected());
        assert!(!token.is_cancelled());
        assert_eq!(gov.cancelled(), Some(StopCause::Disconnected));
    }

    #[test]
    fn explicit_cancel_is_sticky_over_disconnect() {
        let token = CancelToken::new();
        token.cancel();
        token.request_cancel();
        assert!(token.is_cancelled());
        assert!(!token.is_disconnected());
    }

    #[test]
    fn stop_info_describes_detail() {
        let mut info = StopInfo::new(StopCause::WorkerPanic, 3, Duration::from_millis(5));
        assert_eq!(info.describe(), "worker thread panicked");
        info.detail = Some("boom".to_string());
        assert_eq!(info.describe(), "worker thread panicked (boom)");
    }
}
