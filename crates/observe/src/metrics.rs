//! In-memory metrics collection and its JSON export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Counter, EventSink, Gauge, Phase, RuleStat};
use crate::json::Json;

const NUM_PHASES: usize = Phase::ALL.len();
const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_GAUGES: usize = Gauge::ALL.len();

/// Cap on the number of per-level frontier sizes retained verbatim.
/// Beyond this the histogram still aggregates every sample.
const MAX_LEVELS_KEPT: usize = 4096;

/// A log₂-bucket histogram of `usize` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// `buckets[i]` counts samples whose log₂ bucket is `i`
    /// (bucket 0 holds the value 0, bucket `i ≥ 1` holds values in
    /// `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), Json::int(self.count)),
            ("sum".to_string(), Json::int(self.sum)),
            ("max".to_string(), Json::int(self.max)),
            ("mean".to_string(), Json::Num(self.mean())),
            (
                "log2_buckets".to_string(),
                Json::Arr(self.buckets.iter().map(|&b| Json::int(b)).collect()),
            ),
        ])
    }
}

#[derive(Default)]
struct Shared {
    phase_entries: [Option<Instant>; NUM_PHASES],
    frontier: Histogram,
    frontier_levels: Vec<u64>,
    class_sizes: Histogram,
    bus_ops: BTreeMap<String, u64>,
    workers: BTreeMap<usize, u64>,
    rules: BTreeMap<String, RuleStat>,
    stop: Option<(String, Option<String>)>,
}

/// An [`EventSink`] that aggregates everything in memory.
///
/// Counters and gauges are lock-free atomics; histograms, phase entry
/// timestamps and the bus/worker maps sit behind one mutex that is
/// touched only on comparatively rare events (phase boundaries, level
/// completions), never per state visit.
pub struct Metrics {
    counters: [AtomicU64; NUM_COUNTERS],
    gauges: [AtomicU64; NUM_GAUGES],
    gauges_set: AtomicU64,
    phase_nanos: [AtomicU64; NUM_PHASES],
    shared: Mutex<Shared>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// An empty collector.
    pub fn new() -> Metrics {
        Metrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges_set: AtomicU64::new(0),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            shared: Mutex::new(Shared::default()),
        }
    }

    fn shared(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.shared
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// A point-in-time copy of everything collected so far.
    ///
    /// Phases still open when the snapshot is taken contribute the
    /// time accrued up to now.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shared = self.shared();
        let mut phase_nanos = [0u64; NUM_PHASES];
        for (i, nanos) in self.phase_nanos.iter().enumerate() {
            phase_nanos[i] = nanos.load(Ordering::Relaxed);
            if let Some(entered) = shared.phase_entries[i] {
                phase_nanos[i] += entered.elapsed().as_nanos() as u64;
            }
        }
        let gauges_set = self.gauges_set.load(Ordering::Relaxed);
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| {
                if gauges_set & (1 << i) != 0 {
                    Some(self.gauges[i].load(Ordering::Relaxed))
                } else {
                    None
                }
            }),
            phase_nanos,
            frontier: shared.frontier.clone(),
            frontier_levels: shared.frontier_levels.clone(),
            class_sizes: shared.class_sizes.clone(),
            bus_ops: shared.bus_ops.clone(),
            workers: shared.workers.clone(),
            rules: shared.rules.clone(),
            stop: shared.stop.clone(),
        }
    }
}

impl EventSink for Metrics {
    fn phase_enter(&self, phase: Phase) {
        self.shared().phase_entries[phase.index()] = Some(Instant::now());
    }

    fn phase_exit(&self, phase: Phase) {
        let mut shared = self.shared();
        if let Some(entered) = shared.phase_entries[phase.index()].take() {
            self.phase_nanos[phase.index()]
                .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    fn count(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
        self.gauges_set
            .fetch_or(1 << gauge.index(), Ordering::Relaxed);
    }

    fn frontier(&self, level: usize, size: usize) {
        let mut shared = self.shared();
        shared.frontier.record(size as u64);
        if level < MAX_LEVELS_KEPT {
            if shared.frontier_levels.len() <= level {
                shared.frontier_levels.resize(level + 1, 0);
            }
            shared.frontier_levels[level] = size as u64;
        }
    }

    fn class_size(&self, size: usize) {
        self.shared().class_sizes.record(size as u64);
    }

    fn bus_transaction(&self, op: &str) {
        self.count(Counter::BusOps, 1);
        let mut shared = self.shared();
        match shared.bus_ops.get_mut(op) {
            Some(n) => *n += 1,
            None => {
                shared.bus_ops.insert(op.to_string(), 1);
            }
        }
    }

    fn worker(&self, idx: usize, claims: u64) {
        self.shared().workers.insert(idx, claims);
    }

    fn rule_stats(&self, rule: &str, stat: RuleStat) {
        let mut shared = self.shared();
        match shared.rules.get_mut(rule) {
            Some(existing) => existing.merge(&stat),
            None => {
                shared.rules.insert(rule.to_string(), stat);
            }
        }
    }

    fn stopped(&self, cause: &str, detail: Option<&str>) {
        let mut shared = self.shared();
        // First stop wins: a run emits at most one, but a Tee'd batch
        // should keep the earliest cause.
        if shared.stop.is_none() {
            shared.stop = Some((cause.to_string(), detail.map(str::to_string)));
        }
    }
}

/// A point-in-time copy of a [`Metrics`] collector.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Counter totals, indexed by [`Counter::index`].
    pub counters: [u64; NUM_COUNTERS],
    /// Gauge readings, `None` when the gauge was never reported.
    pub gauges: [Option<u64>; NUM_GAUGES],
    /// Accumulated wall-clock nanoseconds per phase.
    pub phase_nanos: [u64; NUM_PHASES],
    /// Histogram of BFS frontier sizes.
    pub frontier: Histogram,
    /// Frontier size at each BFS level (capped at 4096 levels).
    pub frontier_levels: Vec<u64>,
    /// Histogram of symbolic-class concrete cover sizes.
    pub class_sizes: Histogram,
    /// Bus transactions by operation name.
    pub bus_ops: BTreeMap<String, u64>,
    /// Frontier states claimed, by worker index (parallel BFS only).
    pub workers: BTreeMap<usize, u64>,
    /// Per-rule attribution, by rule name (only when the engine ran
    /// with [`CommonOptions::rule_stats`](crate::CommonOptions) on).
    pub rules: BTreeMap<String, RuleStat>,
    /// Early-stop cause and optional detail, if the run was stopped
    /// by the resource governor (`None` for runs that completed).
    pub stop: Option<(String, Option<String>)>,
}

impl MetricsSnapshot {
    /// Total for one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Reading for one gauge, if it was ever reported.
    pub fn gauge(&self, gauge: Gauge) -> Option<u64> {
        self.gauges[gauge.index()]
    }

    /// Wall-clock nanoseconds accumulated in `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Renders the snapshot as a JSON object.
    ///
    /// The schema is documented in `docs/metrics-schema.md`: counters
    /// appear under `"counters"` (all of them, zeros included, so the
    /// shape is stable), reported gauges under `"gauges"`, per-phase
    /// wall time in milliseconds under `"phases"`, and the optional
    /// sections (`frontier_levels`, `bus_ops`, `workers`, histograms)
    /// only when non-empty.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();

        let phases: Vec<(String, Json)> = Phase::ALL
            .iter()
            .filter(|p| self.phase_nanos[p.index()] > 0)
            .map(|p| {
                (
                    p.name().to_string(),
                    Json::Obj(vec![(
                        "wall_ms".to_string(),
                        Json::Num(self.phase_nanos[p.index()] as f64 / 1.0e6),
                    )]),
                )
            })
            .collect();
        fields.push(("phases".to_string(), Json::Obj(phases)));

        fields.push((
            "counters".to_string(),
            Json::Obj(
                Counter::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), Json::int(self.counter(*c))))
                    .collect(),
            ),
        ));

        fields.push((
            "gauges".to_string(),
            Json::Obj(
                Gauge::ALL
                    .iter()
                    .filter_map(|g| self.gauge(*g).map(|v| (g.name().to_string(), Json::int(v))))
                    .collect(),
            ),
        ));

        if self.frontier.count > 0 || self.class_sizes.count > 0 {
            let mut hists = Vec::new();
            if self.frontier.count > 0 {
                hists.push(("frontier".to_string(), self.frontier.to_json()));
            }
            if self.class_sizes.count > 0 {
                hists.push(("class_size".to_string(), self.class_sizes.to_json()));
            }
            fields.push(("histograms".to_string(), Json::Obj(hists)));
        }

        if !self.frontier_levels.is_empty() {
            fields.push((
                "frontier_levels".to_string(),
                Json::Arr(self.frontier_levels.iter().map(|&s| Json::int(s)).collect()),
            ));
        }

        if !self.bus_ops.is_empty() {
            fields.push((
                "bus_ops".to_string(),
                Json::Obj(
                    self.bus_ops
                        .iter()
                        .map(|(op, n)| (op.clone(), Json::int(*n)))
                        .collect(),
                ),
            ));
        }

        if !self.workers.is_empty() {
            fields.push((
                "workers".to_string(),
                Json::Obj(
                    self.workers
                        .iter()
                        .map(|(idx, n)| (idx.to_string(), Json::int(*n)))
                        .collect(),
                ),
            ));
        }

        if let Some((cause, detail)) = &self.stop {
            let mut stop = vec![("cause".to_string(), Json::Str(cause.clone()))];
            if let Some(detail) = detail {
                stop.push(("detail".to_string(), Json::Str(detail.clone())));
            }
            fields.push(("stop".to_string(), Json::Obj(stop)));
        }

        if !self.rules.is_empty() {
            fields.push((
                "rules".to_string(),
                Json::Obj(
                    self.rules
                        .iter()
                        .map(|(name, stat)| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    ("firings".to_string(), Json::int(stat.firings)),
                                    ("states".to_string(), Json::int(stat.states)),
                                    ("dedup_hits".to_string(), Json::int(stat.dedup_hits)),
                                    ("violations".to_string(), Json::int(stat.violations)),
                                    ("wall_ns".to_string(), Json::int(stat.nanos)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }

        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_and_gauges_aggregate() {
        let m = Metrics::new();
        m.count(Counter::Visits, 20);
        m.count(Counter::Visits, 2);
        m.gauge(Gauge::EssentialStates, 5);
        let snap = m.snapshot();
        assert_eq!(snap.counter(Counter::Visits), 22);
        assert_eq!(snap.counter(Counter::Prunes), 0);
        assert_eq!(snap.gauge(Gauge::EssentialStates), Some(5));
        assert_eq!(snap.gauge(Gauge::DistinctStates), None);
    }

    #[test]
    fn phases_accumulate_wall_time() {
        let m = Metrics::new();
        m.phase_enter(Phase::Expand);
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.phase_exit(Phase::Expand);
        let snap = m.snapshot();
        assert!(snap.phase_nanos(Phase::Expand) >= 1_000_000);
        assert_eq!(snap.phase_nanos(Phase::Graph), 0);
    }

    #[test]
    fn histograms_and_maps() {
        let m = Metrics::new();
        m.frontier(0, 1);
        m.frontier(1, 8);
        m.frontier(2, 3);
        m.class_size(100);
        m.bus_transaction("ReadMiss");
        m.bus_transaction("ReadMiss");
        m.bus_transaction("WriteMiss");
        m.worker(0, 40);
        m.worker(1, 60);
        let snap = m.snapshot();
        assert_eq!(snap.frontier_levels, vec![1, 8, 3]);
        assert_eq!(snap.frontier.count, 3);
        assert_eq!(snap.frontier.max, 8);
        assert_eq!(snap.class_sizes.sum, 100);
        assert_eq!(snap.bus_ops["ReadMiss"], 2);
        assert_eq!(snap.counter(Counter::BusOps), 3);
        assert_eq!(snap.workers[&1], 60);
    }

    #[test]
    fn json_export_is_parseable_and_stable() {
        let m = Metrics::new();
        m.count(Counter::Visits, 22);
        m.gauge(Gauge::EssentialStates, 5);
        m.phase_enter(Phase::Expand);
        m.phase_exit(Phase::Expand);
        let text = m.snapshot().to_json().render();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("visits").unwrap().as_u64(),
            Some(22)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("essential_states")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        // Zero counters are present so the schema is stable.
        assert_eq!(
            doc.get("counters").unwrap().get("prunes").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn rule_stats_merge_into_table_and_export() {
        let m = Metrics::new();
        m.rule_stats(
            "Inv:R",
            RuleStat {
                firings: 3,
                states: 3,
                dedup_hits: 1,
                violations: 0,
                nanos: 500,
            },
        );
        m.rule_stats(
            "Inv:R",
            RuleStat {
                firings: 2,
                states: 1,
                dedup_hits: 1,
                violations: 1,
                nanos: 250,
            },
        );
        m.rule_stats(
            "Dirty:Z",
            RuleStat {
                firings: 1,
                ..RuleStat::default()
            },
        );
        let snap = m.snapshot();
        assert_eq!(snap.rules.len(), 2);
        assert_eq!(snap.rules["Inv:R"].firings, 5);
        assert_eq!(snap.rules["Inv:R"].nanos, 750);
        let doc = Json::parse(&snap.to_json().render()).unwrap();
        let rules = doc.get("rules").unwrap();
        assert_eq!(
            rules.get("Inv:R").unwrap().get("firings").unwrap().as_u64(),
            Some(5)
        );
        assert_eq!(
            rules
                .get("Dirty:Z")
                .unwrap()
                .get("wall_ns")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn stop_cause_exports_and_first_wins() {
        let m = Metrics::new();
        let snap = m.snapshot();
        assert!(snap.stop.is_none());
        assert!(Json::parse(&snap.to_json().render())
            .unwrap()
            .get("stop")
            .is_none());

        m.stopped("budget_exhausted", None);
        m.stopped("cancelled", Some("late"));
        let snap = m.snapshot();
        assert_eq!(snap.stop, Some(("budget_exhausted".to_string(), None)));
        let doc = Json::parse(&snap.to_json().render()).unwrap();
        assert_eq!(
            doc.get("stop")
                .unwrap()
                .get("cause")
                .unwrap()
                .as_str()
                .map(str::to_string),
            Some("budget_exhausted".to_string())
        );
    }

    #[test]
    fn rules_section_absent_when_empty() {
        let m = Metrics::new();
        m.count(Counter::Visits, 1);
        let doc = Json::parse(&m.snapshot().to_json().render()).unwrap();
        assert!(doc.get("rules").is_none());
    }

    #[test]
    fn concurrent_counting_is_consistent() {
        let m = Arc::new(Metrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.count(Counter::Expansions, 1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter(Counter::Expansions), 4000);
    }
}
