//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names *sites* (stable string identifiers compiled
//! into the code, e.g. `checkpoint.write` or `client.connect`), and
//! for each site a fault *kind* plus a trigger window: fire starting
//! at the N-th time the site is reached, for M occurrences. Plans are
//! parsed from a compact spec string so they travel through CLI flags
//! and request options unchanged:
//!
//! ```text
//! site:kind[@after][xtimes][,site:kind…][,seed=N]
//! ```
//!
//! * `kind` — one of `io` (the operation fails with an I/O error),
//!   `torn` (a write is truncated mid-way but still published, so the
//!   reader must detect it), `panic` (the worker panics), `disconnect`
//!   (the peer socket drops mid-stream) and `slow` (the operation is
//!   delayed).
//! * `@after` — 1-based index of the first hit that fires (default 1:
//!   the very first time the site is reached).
//! * `xtimes` — how many consecutive hits fire (default 1); `x*`
//!   means every hit from `@after` on.
//! * `seed=N` — seeds the deterministic delay used by `slow` faults,
//!   so a plan replays identically across runs.
//!
//! Example: `spill.flush:io@2,client.connect:disconnect x0` is
//! invalid (`x0`), while `spill.flush:io@2,client.connect:io` injects
//! one I/O error on the second spill flush and one connect failure.
//!
//! Engines hold a [`FaultHandle`] — the same shape as
//! [`SinkHandle`](crate::event::SinkHandle): a cheap clone wrapping
//! `Option<Arc<…>>`, so a disabled handle costs one branch per site
//! and injects nothing. Every trigger decision is a deterministic
//! function of the plan and the per-rule hit counter — replaying the
//! same plan against the same workload fires the same faults.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What goes wrong when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a synthetic I/O error.
    IoError,
    /// A write is truncated part-way but still published; the
    /// consumer must detect the torn file on read.
    TornWrite,
    /// The worker thread panics at the site.
    Panic,
    /// The peer connection is dropped mid-stream.
    Disconnect,
    /// The operation is delayed by a deterministic, seed-derived
    /// duration before proceeding normally.
    SlowRead,
}

impl FaultKind {
    /// The spec-string name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io",
            FaultKind::TornWrite => "torn",
            FaultKind::Panic => "panic",
            FaultKind::Disconnect => "disconnect",
            FaultKind::SlowRead => "slow",
        }
    }

    fn parse(name: &str) -> Option<FaultKind> {
        match name {
            "io" => Some(FaultKind::IoError),
            "torn" => Some(FaultKind::TornWrite),
            "panic" => Some(FaultKind::Panic),
            "disconnect" => Some(FaultKind::Disconnect),
            "slow" => Some(FaultKind::SlowRead),
            _ => None,
        }
    }
}

/// One `site:kind[@after][xtimes]` entry of a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// The site identifier the rule arms (exact match).
    pub site: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// 1-based hit index of the first firing.
    pub after: u64,
    /// Number of consecutive firings; `None` means every hit from
    /// `after` on.
    pub times: Option<u64>,
}

impl FaultRule {
    fn parse(entry: &str) -> Result<FaultRule, String> {
        let (site, rest) = entry
            .split_once(':')
            .ok_or_else(|| format!("fault rule '{entry}' lacks ':kind'"))?;
        if site.is_empty() {
            return Err(format!("fault rule '{entry}' has an empty site"));
        }
        // rest = kind[@after][xtimes]; kind names contain no '@'/'x'
        // ambiguity because every kind name is letter-only and the
        // suffixes are anchored by '@' and a trailing 'x<digits|*>'.
        let (rest, times) = match rest.rsplit_once('x') {
            Some((head, "*")) => (head, None),
            Some((head, tail)) if tail.chars().all(|c| c.is_ascii_digit()) && !tail.is_empty() => {
                let t: u64 = tail
                    .parse()
                    .map_err(|e| format!("fault rule '{entry}': bad repeat count: {e}"))?;
                if t == 0 {
                    return Err(format!("fault rule '{entry}': repeat count must be >= 1"));
                }
                (head, Some(t))
            }
            _ => (rest, Some(1)),
        };
        let (kind_name, after) = match rest.split_once('@') {
            Some((k, a)) => {
                let after: u64 = a
                    .parse()
                    .map_err(|e| format!("fault rule '{entry}': bad '@after' index: {e}"))?;
                if after == 0 {
                    return Err(format!("fault rule '{entry}': '@after' is 1-based"));
                }
                (k, after)
            }
            None => (rest, 1),
        };
        let kind = FaultKind::parse(kind_name)
            .ok_or_else(|| format!("fault rule '{entry}': unknown kind '{kind_name}' (expected io|torn|panic|disconnect|slow)"))?;
        Ok(FaultRule {
            site: site.to_string(),
            kind,
            after,
            times,
        })
    }
}

/// A parsed, replayable set of fault rules plus the delay seed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the deterministic `slow` delay (and anything else
    /// that wants plan-scoped pseudo-randomness).
    pub seed: u64,
    /// The armed rules, in spec order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses a comma-separated plan spec (see the module docs for
    /// the grammar). Whitespace around entries is ignored.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry: String = entry.chars().filter(|c| !c.is_whitespace()).collect();
            let entry = entry.as_str();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|e| format!("fault plan: bad seed '{seed}': {e}"))?;
                continue;
            }
            plan.rules.push(FaultRule::parse(entry)?);
        }
        if plan.rules.is_empty() {
            return Err("fault plan names no rules".to_string());
        }
        Ok(plan)
    }
}

/// The armed injector: a plan plus per-rule hit counters.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Times each rule's site was reached.
    hits: Vec<AtomicU64>,
    /// Times each rule actually fired.
    fired: Vec<AtomicU64>,
}

impl FaultInjector {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let n = plan.rules.len();
        FaultInjector {
            plan,
            hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fired: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The plan this injector was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers one hit of `site` against every matching rule and
    /// returns the fault to inject, if any fired. Deterministic: the
    /// decision depends only on the plan and this rule's hit count.
    pub fn fire(&self, site: &str) -> Option<FaultKind> {
        let mut result = None;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let hit = self.hits[i].fetch_add(1, Ordering::Relaxed) + 1;
            let in_window = hit >= rule.after
                && match rule.times {
                    Some(t) => hit < rule.after + t,
                    None => true,
                };
            if in_window {
                self.fired[i].fetch_add(1, Ordering::Relaxed);
                if result.is_none() {
                    result = Some(rule.kind);
                }
            }
        }
        result
    }

    /// Total number of fault firings so far, across all rules.
    pub fn fired_total(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }

    /// Deterministic delay for `slow` faults, derived from the plan
    /// seed: 5–36 ms, identical across replays of the same plan.
    pub fn slow_millis(&self) -> u64 {
        5 + (self.plan.seed.wrapping_mul(0x9e3779b97f4a7c15) >> 59)
    }
}

/// A cheap, cloneable handle that is either armed with a
/// [`FaultInjector`] or disabled. Mirrors
/// [`SinkHandle`](crate::event::SinkHandle): engines hold one and
/// probe their sites through it; a disabled handle is one `None`
/// branch per probe.
#[derive(Clone, Debug, Default)]
pub struct FaultHandle(Option<Arc<FaultInjector>>);

impl FaultHandle {
    /// A handle injecting nothing (the default everywhere).
    pub fn disabled() -> FaultHandle {
        FaultHandle(None)
    }

    /// Arms a handle with `plan`.
    pub fn new(plan: FaultPlan) -> FaultHandle {
        FaultHandle(Some(Arc::new(FaultInjector::new(plan))))
    }

    /// Parses `spec` and arms a handle with the result.
    pub fn from_spec(spec: &str) -> Result<FaultHandle, String> {
        Ok(FaultHandle::new(FaultPlan::parse(spec)?))
    }

    /// True when a plan is armed.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The armed injector, if any (for post-run reporting).
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.0.as_deref()
    }

    /// Probes `site`: registers a hit and returns the fault to
    /// inject, if one fired. `None` (at zero cost) when disabled.
    pub fn fire(&self, site: &str) -> Option<FaultKind> {
        self.0.as_ref()?.fire(site)
    }

    /// Probes `site` for the I/O-flavoured kinds: an [`IoError`]
    /// firing returns a synthetic error, a [`Panic`] firing panics,
    /// a [`SlowRead`] firing sleeps its deterministic delay and
    /// proceeds. Other kinds (and no firing) return `Ok`.
    ///
    /// [`IoError`]: FaultKind::IoError
    /// [`Panic`]: FaultKind::Panic
    /// [`SlowRead`]: FaultKind::SlowRead
    pub fn io(&self, site: &str) -> io::Result<()> {
        let Some(inj) = self.0.as_ref() else {
            return Ok(());
        };
        match inj.fire(site) {
            Some(FaultKind::IoError) => Err(injected_io_error(site)),
            Some(FaultKind::Panic) => panic!("injected fault: panic at {site}"),
            Some(FaultKind::SlowRead) => {
                std::thread::sleep(std::time::Duration::from_millis(inj.slow_millis()));
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// The synthetic error every injected [`FaultKind::IoError`] carries;
/// the message always embeds the site so failures are attributable.
pub fn injected_io_error(site: &str) -> io::Error {
    io::Error::other(format!("injected fault: io error at {site}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse("a.b:io, c:torn@3 ,d:panic@2x4,e:slow x*,seed=7").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                site: "a.b".into(),
                kind: FaultKind::IoError,
                after: 1,
                times: Some(1)
            }
        );
        assert_eq!(
            plan.rules[1],
            FaultRule {
                site: "c".into(),
                kind: FaultKind::TornWrite,
                after: 3,
                times: Some(1)
            }
        );
        assert_eq!(
            plan.rules[2],
            FaultRule {
                site: "d".into(),
                kind: FaultKind::Panic,
                after: 2,
                times: Some(4)
            }
        );
        assert_eq!(
            plan.rules[3],
            FaultRule {
                site: "e".into(),
                kind: FaultKind::SlowRead,
                after: 1,
                times: None
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "nocolon",
            ":io",
            "s:unknownkind",
            "s:io@0",
            "s:io@x",
            "s:iox0",
            "seed=abc",
            "seed=1",
        ] {
            assert!(
                FaultPlan::parse(bad).is_err(),
                "spec '{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn fires_inside_the_window_only() {
        let h = FaultHandle::from_spec("s:io@2x2").unwrap();
        assert_eq!(h.fire("s"), None);
        assert_eq!(h.fire("s"), Some(FaultKind::IoError));
        assert_eq!(h.fire("s"), Some(FaultKind::IoError));
        assert_eq!(h.fire("s"), None);
        assert_eq!(h.fire("other"), None);
        assert_eq!(h.injector().unwrap().fired_total(), 2);
    }

    #[test]
    fn star_fires_forever() {
        let h = FaultHandle::from_spec("s:torn x*").unwrap();
        for _ in 0..10 {
            assert_eq!(h.fire("s"), Some(FaultKind::TornWrite));
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = FaultHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.fire("anything"), None);
        assert!(h.io("anything").is_ok());
    }

    #[test]
    fn io_probe_maps_kinds() {
        let h = FaultHandle::from_spec("r:io").unwrap();
        let err = h.io("r").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(h.io("r").is_ok(), "window exhausted");
        // Torn is a writer-side kind; io() ignores it.
        let h = FaultHandle::from_spec("w:torn").unwrap();
        assert!(h.io("w").is_ok());
    }

    #[test]
    #[should_panic(expected = "injected fault: panic")]
    fn io_probe_panics_on_panic_kind() {
        let h = FaultHandle::from_spec("p:panic").unwrap();
        let _ = h.io("p");
    }

    #[test]
    fn replay_is_deterministic() {
        let run = |spec: &str| {
            let h = FaultHandle::from_spec(spec).unwrap();
            (0..6).map(|_| h.fire("s")).collect::<Vec<_>>()
        };
        assert_eq!(run("s:io@3x2,seed=9"), run("s:io@3x2,seed=9"));
    }
}
