//! The event vocabulary and the sink trait engines emit into.

use std::fmt;
use std::sync::Arc;

/// A top-level stage of a verification run.
///
/// Phases nest at most conceptually — sinks receive balanced
/// `phase_enter`/`phase_exit` pairs and may time them.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Symbolic worklist expansion (ccv-core).
    Expand,
    /// Reachability-graph construction over essential states.
    Graph,
    /// Coherence condition checking on the expansion result.
    Check,
    /// Explicit-state enumeration (ccv-enum).
    Enumerate,
    /// Trace simulation against the memory oracle (ccv-sim).
    Simulate,
    /// Theorem 1 crosscheck of symbolic vs. concrete state spaces.
    Crosscheck,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 6] = [
        Phase::Expand,
        Phase::Graph,
        Phase::Check,
        Phase::Enumerate,
        Phase::Simulate,
        Phase::Crosscheck,
    ];

    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Expand => "expand",
            Phase::Graph => "graph",
            Phase::Check => "check",
            Phase::Enumerate => "enumerate",
            Phase::Simulate => "simulate",
            Phase::Crosscheck => "crosscheck",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonic counter an engine increments as it works.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Composite states visited by the symbolic engine (paper's
    /// "number of visits"; 22 for Illinois, Appendix A.2).
    Visits,
    /// States removed by containment pruning: successors covered by a
    /// surviving state, plus survivors displaced by a new state.
    Prunes,
    /// Containment tests performed while deduplicating the worklist.
    ContainmentChecks,
    /// Protocol rules that fired during expansion.
    RuleFirings,
    /// Worklist states popped and expanded.
    Expansions,
    /// Coherence violations recorded.
    Errors,
    /// Explicit-enumeration states already present in the visited set.
    DedupHits,
    /// Explicit-enumeration states newly inserted into the visited set.
    DedupMisses,
    /// Latest-value oracle comparisons performed by the simulator.
    OracleChecks,
    /// Memory accesses the simulator consumed from its trace.
    Accesses,
    /// Bus transactions broadcast by the simulated machine.
    BusOps,
    /// Work batches a parallel enumeration worker stole from a peer.
    Steals,
    /// Visited-set claim attempts that collided with a concurrent
    /// claimer (lost CAS or observed an in-flight reservation).
    ClaimRaces,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 13] = [
        Counter::Visits,
        Counter::Prunes,
        Counter::ContainmentChecks,
        Counter::RuleFirings,
        Counter::Expansions,
        Counter::Errors,
        Counter::DedupHits,
        Counter::DedupMisses,
        Counter::OracleChecks,
        Counter::Accesses,
        Counter::BusOps,
        Counter::Steals,
        Counter::ClaimRaces,
    ];

    /// Stable snake_case name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Visits => "visits",
            Counter::Prunes => "prunes",
            Counter::ContainmentChecks => "containment_checks",
            Counter::RuleFirings => "rule_firings",
            Counter::Expansions => "expansions",
            Counter::Errors => "errors",
            Counter::DedupHits => "dedup_hits",
            Counter::DedupMisses => "dedup_misses",
            Counter::OracleChecks => "oracle_checks",
            Counter::Accesses => "accesses",
            Counter::BusOps => "bus_ops",
            Counter::Steals => "steals",
            Counter::ClaimRaces => "claim_races",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A last-write-wins measurement reported at the end of a phase.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// Essential states at the symbolic fixpoint (5 for Illinois).
    EssentialStates,
    /// Distinct concrete states found by explicit enumeration.
    DistinctStates,
    /// BFS levels completed by the enumerator.
    Levels,
    /// Worker threads used by the parallel enumerator.
    Threads,
    /// Peak number of discovered-but-unexpanded states observed by the
    /// work-stealing enumerator (its analogue of the largest frontier).
    PeakPending,
}

impl Gauge {
    /// Every gauge, in declaration order.
    pub const ALL: [Gauge; 5] = [
        Gauge::EssentialStates,
        Gauge::DistinctStates,
        Gauge::Levels,
        Gauge::Threads,
        Gauge::PeakPending,
    ];

    /// Stable snake_case name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::EssentialStates => "essential_states",
            Gauge::DistinctStates => "distinct_states",
            Gauge::Levels => "levels",
            Gauge::Threads => "threads",
            Gauge::PeakPending => "peak_pending",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Receiver for engine events.
///
/// Every method has a no-op default, so implementations override only
/// what they record. Methods take `&self`: sinks are shared across
/// worker threads and must synchronise internally.
pub trait EventSink: Send + Sync {
    /// Whether the sink currently wants events. Engines may skip
    /// building expensive event payloads when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// A phase began.
    fn phase_enter(&self, phase: Phase) {
        let _ = phase;
    }

    /// A phase ended.
    fn phase_exit(&self, phase: Phase) {
        let _ = phase;
    }

    /// `counter` advanced by `delta`.
    fn count(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// `gauge` now reads `value`.
    fn gauge(&self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// A BFS frontier at `level` holds `size` states.
    fn frontier(&self, level: usize, size: usize) {
        let _ = (level, size);
    }

    /// A symbolic equivalence class covers `size` concrete states.
    fn class_size(&self, size: usize) {
        let _ = size;
    }

    /// The simulated machine broadcast bus operation `op`.
    fn bus_transaction(&self, op: &str) {
        let _ = op;
    }

    /// Worker `idx` has claimed `claims` frontier states so far.
    fn worker(&self, idx: usize, claims: u64) {
        let _ = (idx, claims);
    }

    /// Free-form progress note (human-readable, one line).
    fn progress(&self, message: &str) {
        let _ = message;
    }
}

/// A cheap handle engines hold: either attached to a sink or disabled.
///
/// `SinkHandle::default()` is disabled; every emission through it is a
/// single branch on `None`, which keeps instrumented hot loops at
/// their uninstrumented speed. Cloning shares the underlying sink.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn EventSink>>);

impl SinkHandle {
    /// The disabled handle — all emissions are no-ops.
    pub const fn disabled() -> SinkHandle {
        SinkHandle(None)
    }

    /// A handle attached to `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle(Some(sink))
    }

    /// Whether a sink is attached and wants events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.0 {
            Some(sink) => sink.enabled(),
            None => false,
        }
    }

    /// See [`EventSink::phase_enter`].
    #[inline]
    pub fn phase_enter(&self, phase: Phase) {
        if let Some(sink) = &self.0 {
            sink.phase_enter(phase);
        }
    }

    /// See [`EventSink::phase_exit`].
    #[inline]
    pub fn phase_exit(&self, phase: Phase) {
        if let Some(sink) = &self.0 {
            sink.phase_exit(phase);
        }
    }

    /// See [`EventSink::count`].
    #[inline]
    pub fn count(&self, counter: Counter, delta: u64) {
        if let Some(sink) = &self.0 {
            sink.count(counter, delta);
        }
    }

    /// See [`EventSink::gauge`].
    #[inline]
    pub fn gauge(&self, gauge: Gauge, value: u64) {
        if let Some(sink) = &self.0 {
            sink.gauge(gauge, value);
        }
    }

    /// See [`EventSink::frontier`].
    #[inline]
    pub fn frontier(&self, level: usize, size: usize) {
        if let Some(sink) = &self.0 {
            sink.frontier(level, size);
        }
    }

    /// See [`EventSink::class_size`].
    #[inline]
    pub fn class_size(&self, size: usize) {
        if let Some(sink) = &self.0 {
            sink.class_size(size);
        }
    }

    /// See [`EventSink::bus_transaction`].
    #[inline]
    pub fn bus_transaction(&self, op: &str) {
        if let Some(sink) = &self.0 {
            sink.bus_transaction(op);
        }
    }

    /// See [`EventSink::worker`].
    #[inline]
    pub fn worker(&self, idx: usize, claims: u64) {
        if let Some(sink) = &self.0 {
            sink.worker(idx, claims);
        }
    }

    /// See [`EventSink::progress`].
    #[inline]
    pub fn progress(&self, message: &str) {
        if let Some(sink) = &self.0 {
            sink.progress(message);
        }
    }
}

impl From<Arc<dyn EventSink>> for SinkHandle {
    fn from(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle::new(sink)
    }
}

/// Fan-out sink: forwards every event to each attached sink in order.
///
/// Lets one run feed several consumers at once — e.g. a [`crate::Metrics`]
/// collector for the end-of-run summary *and* an [`crate::NdjsonSink`]
/// streaming progress lines.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl Tee {
    /// An empty tee (reports itself disabled until a sink is added).
    pub fn new() -> Tee {
        Tee::default()
    }

    /// Adds a downstream sink; builder-style.
    pub fn with(mut self, sink: Arc<dyn EventSink>) -> Tee {
        self.sinks.push(sink);
        self
    }
}

impl EventSink for Tee {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn phase_enter(&self, phase: Phase) {
        for s in &self.sinks {
            s.phase_enter(phase);
        }
    }

    fn phase_exit(&self, phase: Phase) {
        for s in &self.sinks {
            s.phase_exit(phase);
        }
    }

    fn count(&self, counter: Counter, delta: u64) {
        for s in &self.sinks {
            s.count(counter, delta);
        }
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        for s in &self.sinks {
            s.gauge(gauge, value);
        }
    }

    fn frontier(&self, level: usize, size: usize) {
        for s in &self.sinks {
            s.frontier(level, size);
        }
    }

    fn class_size(&self, size: usize) {
        for s in &self.sinks {
            s.class_size(size);
        }
    }

    fn bus_transaction(&self, op: &str) {
        for s in &self.sinks {
            s.bus_transaction(op);
        }
    }

    fn worker(&self, idx: usize, claims: u64) {
        for s in &self.sinks {
            s.worker(idx, claims);
        }
    }

    fn progress(&self, message: &str) {
        for s in &self.sinks {
            s.progress(message);
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(attached)"
        } else {
            "SinkHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        events: AtomicU64,
    }

    impl EventSink for CountingSink {
        fn count(&self, _counter: Counter, delta: u64) {
            self.events.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = SinkHandle::disabled();
        assert!(!handle.is_enabled());
        handle.count(Counter::Visits, 5);
        handle.phase_enter(Phase::Expand);
        handle.progress("nothing listens");
    }

    #[test]
    fn attached_handle_dispatches() {
        let sink = Arc::new(CountingSink::default());
        let handle = SinkHandle::new(sink.clone());
        assert!(handle.is_enabled());
        handle.count(Counter::Visits, 3);
        handle.count(Counter::Prunes, 4);
        // Default no-op methods are safe to call too.
        handle.frontier(0, 1);
        assert_eq!(sink.events.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let a = Arc::new(CountingSink::default());
        let b = Arc::new(CountingSink::default());
        let tee = Tee::new().with(a.clone()).with(b.clone());
        assert!(tee.enabled());
        let handle = SinkHandle::new(Arc::new(tee));
        handle.count(Counter::Visits, 2);
        assert_eq!(a.events.load(Ordering::Relaxed), 2);
        assert_eq!(b.events.load(Ordering::Relaxed), 2);
        assert!(!Tee::new().enabled(), "an empty tee is disabled");
    }

    #[test]
    fn names_are_stable_and_indices_dense() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        assert_eq!(Counter::Visits.name(), "visits");
        assert_eq!(Gauge::EssentialStates.name(), "essential_states");
        assert_eq!(Phase::Expand.name(), "expand");
    }
}
