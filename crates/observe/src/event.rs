//! The event vocabulary and the sink trait engines emit into.

use std::fmt;
use std::sync::Arc;

/// A top-level stage of a verification run.
///
/// Phases nest at most conceptually — sinks receive balanced
/// `phase_enter`/`phase_exit` pairs and may time them.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Symbolic worklist expansion (ccv-core).
    Expand,
    /// Reachability-graph construction over essential states.
    Graph,
    /// Coherence condition checking on the expansion result.
    Check,
    /// Explicit-state enumeration (ccv-enum).
    Enumerate,
    /// Trace simulation against the memory oracle (ccv-sim).
    Simulate,
    /// Theorem 1 crosscheck of symbolic vs. concrete state spaces.
    Crosscheck,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 6] = [
        Phase::Expand,
        Phase::Graph,
        Phase::Check,
        Phase::Enumerate,
        Phase::Simulate,
        Phase::Crosscheck,
    ];

    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Expand => "expand",
            Phase::Graph => "graph",
            Phase::Check => "check",
            Phase::Enumerate => "enumerate",
            Phase::Simulate => "simulate",
            Phase::Crosscheck => "crosscheck",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A monotonic counter an engine increments as it works.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Composite states visited by the symbolic engine (paper's
    /// "number of visits"; 22 for Illinois, Appendix A.2).
    Visits,
    /// States removed by containment pruning: successors covered by a
    /// surviving state, plus survivors displaced by a new state.
    Prunes,
    /// Containment tests performed while deduplicating the worklist.
    ContainmentChecks,
    /// Protocol rules that fired during expansion.
    RuleFirings,
    /// Worklist states popped and expanded.
    Expansions,
    /// Coherence violations recorded.
    Errors,
    /// Explicit-enumeration states already present in the visited set.
    DedupHits,
    /// Explicit-enumeration states newly inserted into the visited set.
    DedupMisses,
    /// Latest-value oracle comparisons performed by the simulator.
    OracleChecks,
    /// Memory accesses the simulator consumed from its trace.
    Accesses,
    /// Bus transactions broadcast by the simulated machine.
    BusOps,
    /// Work batches a parallel enumeration worker stole from a peer.
    Steals,
    /// Visited-set claim attempts that collided with a concurrent
    /// claimer (lost CAS or observed an in-flight reservation).
    ClaimRaces,
    /// Candidate composite states examined through the symbolic
    /// engine's containment index (signature prefilter passes that led
    /// to a full pairwise containment evaluation are counted by
    /// [`Counter::ContainmentChecks`]).
    IndexProbes,
    /// Successor composite states that hash-consed to an
    /// already-interned state in the composite arena.
    InternHits,
    /// Full governor polls (clock + memory checks) performed during
    /// the run. Cheap token-only checks are not counted.
    BudgetPolls,
    /// Early stops triggered by the resource governor (budget,
    /// deadline, memory cap, cancellation or worker panic). 0 or 1
    /// per engine run.
    BudgetStops,
    /// Fork-join rounds in which the parallel symbolic engine's
    /// coordinator blocked on worker expansion results before merging
    /// them in batch order. Deterministic for a given workload and
    /// thread count (one per parallel batch).
    MergeWaits,
    /// Visited-table shard segments spilled to disk by the out-of-core
    /// enumerator.
    SpillSegments,
    /// Bytes written to on-disk visited-table segments by the
    /// out-of-core enumerator.
    SpillBytes,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 20] = [
        Counter::Visits,
        Counter::Prunes,
        Counter::ContainmentChecks,
        Counter::RuleFirings,
        Counter::Expansions,
        Counter::Errors,
        Counter::DedupHits,
        Counter::DedupMisses,
        Counter::OracleChecks,
        Counter::Accesses,
        Counter::BusOps,
        Counter::Steals,
        Counter::ClaimRaces,
        Counter::IndexProbes,
        Counter::InternHits,
        Counter::BudgetPolls,
        Counter::BudgetStops,
        Counter::MergeWaits,
        Counter::SpillSegments,
        Counter::SpillBytes,
    ];

    /// Stable snake_case name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Visits => "visits",
            Counter::Prunes => "prunes",
            Counter::ContainmentChecks => "containment_checks",
            Counter::RuleFirings => "rule_firings",
            Counter::Expansions => "expansions",
            Counter::Errors => "errors",
            Counter::DedupHits => "dedup_hits",
            Counter::DedupMisses => "dedup_misses",
            Counter::OracleChecks => "oracle_checks",
            Counter::Accesses => "accesses",
            Counter::BusOps => "bus_ops",
            Counter::Steals => "steals",
            Counter::ClaimRaces => "claim_races",
            Counter::IndexProbes => "index_probes",
            Counter::InternHits => "intern_hits",
            Counter::BudgetPolls => "budget_polls",
            Counter::BudgetStops => "budget_stops",
            Counter::MergeWaits => "merge_waits",
            Counter::SpillSegments => "spill_segments",
            Counter::SpillBytes => "spill_bytes",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A last-write-wins measurement reported at the end of a phase.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// Essential states at the symbolic fixpoint (5 for Illinois).
    EssentialStates,
    /// Distinct concrete states found by explicit enumeration.
    DistinctStates,
    /// BFS levels completed by the enumerator.
    Levels,
    /// Worker threads used by the parallel enumerator.
    Threads,
    /// Peak number of discovered-but-unexpanded states observed by the
    /// work-stealing enumerator (its analogue of the largest frontier).
    PeakPending,
    /// Approximate bytes held by the symbolic engine's interned
    /// composite arena at fixpoint (inline storage plus spill).
    ArenaBytes,
    /// Approximate bytes held by the enumerator's visited table at
    /// the end of the run, **including** any on-disk spill segments.
    /// The `--max-bytes` governor compares its cap against the
    /// resident (in-RAM) portion only, so a spilling run can complete
    /// under a budget its in-RAM footprint alone would trip.
    VisitedBytes,
    /// Worker threads used by the parallel symbolic engine (1 for the
    /// sequential path).
    SymWorkers,
}

impl Gauge {
    /// Every gauge, in declaration order.
    pub const ALL: [Gauge; 8] = [
        Gauge::EssentialStates,
        Gauge::DistinctStates,
        Gauge::Levels,
        Gauge::Threads,
        Gauge::PeakPending,
        Gauge::ArenaBytes,
        Gauge::VisitedBytes,
        Gauge::SymWorkers,
    ];

    /// Stable snake_case name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::EssentialStates => "essential_states",
            Gauge::DistinctStates => "distinct_states",
            Gauge::Levels => "levels",
            Gauge::Threads => "threads",
            Gauge::PeakPending => "peak_pending",
            Gauge::ArenaBytes => "arena_bytes",
            Gauge::VisitedBytes => "visited_bytes",
            Gauge::SymWorkers => "sym_workers",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The kind of a timeline span reported through
/// [`EventSink::span_begin`] / [`EventSink::span_end`].
///
/// Span kinds are a *stable* vocabulary: trace exporters key track
/// names and categories off them, and the flight recorder encodes them
/// as dense codes. Spans carry a thread id (`tid`): `0` is the
/// coordinating thread, `w + 1` is enumeration worker `w`.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A top-level phase rendered as a span (trace exporters also
    /// derive these from `phase_enter`/`phase_exit`).
    Phase(Phase),
    /// A worker's continuous busy stretch: claimed work in hand,
    /// expanding states. Gaps between busy spans are idle time.
    WorkerBusy,
    /// The critical section of a successful steal (copying a batch out
    /// of a victim's public deque).
    Steal,
    /// The coordinator draining worker results and merging per-worker
    /// tallies after the pool joins.
    Drain,
    /// One leg of the Theorem 1 crosscheck (explicit enumeration, then
    /// the coverage scan).
    CrosscheckLeg,
}

impl SpanKind {
    /// Stable snake_case name used in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Phase(p) => p.name(),
            SpanKind::WorkerBusy => "worker_busy",
            SpanKind::Steal => "steal",
            SpanKind::Drain => "drain",
            SpanKind::CrosscheckLeg => "crosscheck_leg",
        }
    }

    /// Trace category: groups spans into Perfetto track categories.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Phase(_) => "phase",
            SpanKind::WorkerBusy | SpanKind::Steal => "worker",
            SpanKind::Drain => "coordinator",
            SpanKind::CrosscheckLeg => "crosscheck",
        }
    }
}

/// A counter track sampled at span boundaries (point-in-time values,
/// unlike the monotonic [`Counter`] deltas).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Track {
    /// Discovered-but-unexpanded states right now.
    Pending,
    /// Distinct states in the visited set right now.
    Visited,
}

impl Track {
    /// Stable snake_case name used in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            Track::Pending => "pending",
            Track::Visited => "visited",
        }
    }

    /// Dense index for array-backed collectors.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-rule attribution totals, merged from fixed-size per-worker
/// arrays at engine exit and reported once per rule through
/// [`EventSink::rule_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStat {
    /// Times the rule fired (one `(state, event)` stimulus).
    pub firings: u64,
    /// Successor states the rule produced.
    pub states: u64,
    /// Produced successors that were already in the visited set (or
    /// covered by a surviving symbolic state).
    pub dedup_hits: u64,
    /// Violations observed on the rule's transitions or successors.
    pub violations: u64,
    /// Cumulative kernel wall time attributed to the rule, nanoseconds.
    pub nanos: u64,
}

impl RuleStat {
    /// Adds `other`'s totals into `self` (per-worker array merge).
    pub fn merge(&mut self, other: &RuleStat) {
        self.firings += other.firings;
        self.states += other.states;
        self.dedup_hits += other.dedup_hits;
        self.violations += other.violations;
        self.nanos += other.nanos;
    }
}

/// Receiver for engine events.
///
/// Every method has a no-op default, so implementations override only
/// what they record. Methods take `&self`: sinks are shared across
/// worker threads and must synchronise internally.
pub trait EventSink: Send + Sync {
    /// Whether the sink currently wants events. Engines may skip
    /// building expensive event payloads when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// A phase began.
    fn phase_enter(&self, phase: Phase) {
        let _ = phase;
    }

    /// A phase ended.
    fn phase_exit(&self, phase: Phase) {
        let _ = phase;
    }

    /// `counter` advanced by `delta`.
    fn count(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// `gauge` now reads `value`.
    fn gauge(&self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// A BFS frontier at `level` holds `size` states.
    fn frontier(&self, level: usize, size: usize) {
        let _ = (level, size);
    }

    /// A symbolic equivalence class covers `size` concrete states.
    fn class_size(&self, size: usize) {
        let _ = size;
    }

    /// The simulated machine broadcast bus operation `op`.
    fn bus_transaction(&self, op: &str) {
        let _ = op;
    }

    /// Worker `idx` has claimed `claims` frontier states so far.
    fn worker(&self, idx: usize, claims: u64) {
        let _ = (idx, claims);
    }

    /// Free-form progress note (human-readable, one line).
    fn progress(&self, message: &str) {
        let _ = message;
    }

    /// A timeline span began on thread `tid` (0 = coordinator,
    /// `w + 1` = worker `w`). Sinks pair it with the next
    /// [`span_end`](EventSink::span_end) of the same `(kind, tid)`.
    fn span_begin(&self, kind: SpanKind, tid: u32) {
        let _ = (kind, tid);
    }

    /// The innermost open span of `(kind, tid)` ended.
    fn span_end(&self, kind: SpanKind, tid: u32) {
        let _ = (kind, tid);
    }

    /// Point-in-time sample of a counter track (emitted at span
    /// boundaries, not per state).
    fn sample(&self, track: Track, value: u64) {
        let _ = (track, value);
    }

    /// A coherence violation was recorded (emitted at discovery time,
    /// unlike the end-of-run [`Counter::Errors`] total).
    fn violation(&self, description: &str) {
        let _ = description;
    }

    /// Merged per-rule attribution for `rule`, reported once per rule
    /// at engine exit.
    fn rule_stats(&self, rule: &str, stat: RuleStat) {
        let _ = (rule, stat);
    }

    /// The run stopped early (budget, deadline, memory cap,
    /// cancellation or worker panic). `cause` is a stable snake_case
    /// name ([`crate::govern::StopCause::name`]); `detail` carries
    /// free-form context such as a panic message. Emitted at most
    /// once per engine run, at the moment the stop is honoured.
    fn stopped(&self, cause: &str, detail: Option<&str>) {
        let _ = (cause, detail);
    }
}

/// A cheap handle engines hold: either attached to a sink or disabled.
///
/// `SinkHandle::default()` is disabled; every emission through it is a
/// single branch on `None`, which keeps instrumented hot loops at
/// their uninstrumented speed. Cloning shares the underlying sink.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn EventSink>>);

impl SinkHandle {
    /// The disabled handle — all emissions are no-ops.
    pub const fn disabled() -> SinkHandle {
        SinkHandle(None)
    }

    /// A handle attached to `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle(Some(sink))
    }

    /// Whether a sink is attached and wants events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.0 {
            Some(sink) => sink.enabled(),
            None => false,
        }
    }

    /// See [`EventSink::phase_enter`].
    #[inline]
    pub fn phase_enter(&self, phase: Phase) {
        if let Some(sink) = &self.0 {
            sink.phase_enter(phase);
        }
    }

    /// See [`EventSink::phase_exit`].
    #[inline]
    pub fn phase_exit(&self, phase: Phase) {
        if let Some(sink) = &self.0 {
            sink.phase_exit(phase);
        }
    }

    /// See [`EventSink::count`].
    #[inline]
    pub fn count(&self, counter: Counter, delta: u64) {
        if let Some(sink) = &self.0 {
            sink.count(counter, delta);
        }
    }

    /// See [`EventSink::gauge`].
    #[inline]
    pub fn gauge(&self, gauge: Gauge, value: u64) {
        if let Some(sink) = &self.0 {
            sink.gauge(gauge, value);
        }
    }

    /// See [`EventSink::frontier`].
    #[inline]
    pub fn frontier(&self, level: usize, size: usize) {
        if let Some(sink) = &self.0 {
            sink.frontier(level, size);
        }
    }

    /// See [`EventSink::class_size`].
    #[inline]
    pub fn class_size(&self, size: usize) {
        if let Some(sink) = &self.0 {
            sink.class_size(size);
        }
    }

    /// See [`EventSink::bus_transaction`].
    #[inline]
    pub fn bus_transaction(&self, op: &str) {
        if let Some(sink) = &self.0 {
            sink.bus_transaction(op);
        }
    }

    /// See [`EventSink::worker`].
    #[inline]
    pub fn worker(&self, idx: usize, claims: u64) {
        if let Some(sink) = &self.0 {
            sink.worker(idx, claims);
        }
    }

    /// See [`EventSink::progress`].
    #[inline]
    pub fn progress(&self, message: &str) {
        if let Some(sink) = &self.0 {
            sink.progress(message);
        }
    }

    /// See [`EventSink::span_begin`].
    #[inline]
    pub fn span_begin(&self, kind: SpanKind, tid: u32) {
        if let Some(sink) = &self.0 {
            sink.span_begin(kind, tid);
        }
    }

    /// See [`EventSink::span_end`].
    #[inline]
    pub fn span_end(&self, kind: SpanKind, tid: u32) {
        if let Some(sink) = &self.0 {
            sink.span_end(kind, tid);
        }
    }

    /// See [`EventSink::sample`].
    #[inline]
    pub fn sample(&self, track: Track, value: u64) {
        if let Some(sink) = &self.0 {
            sink.sample(track, value);
        }
    }

    /// See [`EventSink::violation`].
    #[inline]
    pub fn violation(&self, description: &str) {
        if let Some(sink) = &self.0 {
            sink.violation(description);
        }
    }

    /// See [`EventSink::rule_stats`].
    #[inline]
    pub fn rule_stats(&self, rule: &str, stat: RuleStat) {
        if let Some(sink) = &self.0 {
            sink.rule_stats(rule, stat);
        }
    }

    /// See [`EventSink::stopped`].
    #[inline]
    pub fn stopped(&self, cause: &str, detail: Option<&str>) {
        if let Some(sink) = &self.0 {
            sink.stopped(cause, detail);
        }
    }
}

impl From<Arc<dyn EventSink>> for SinkHandle {
    fn from(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle::new(sink)
    }
}

/// Fan-out sink: forwards every event to each attached sink in order.
///
/// Lets one run feed several consumers at once — e.g. a [`crate::Metrics`]
/// collector for the end-of-run summary *and* an [`crate::NdjsonSink`]
/// streaming progress lines.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl Tee {
    /// An empty tee (reports itself disabled until a sink is added).
    pub fn new() -> Tee {
        Tee::default()
    }

    /// Adds a downstream sink; builder-style.
    pub fn with(mut self, sink: Arc<dyn EventSink>) -> Tee {
        self.sinks.push(sink);
        self
    }
}

impl EventSink for Tee {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn phase_enter(&self, phase: Phase) {
        for s in &self.sinks {
            s.phase_enter(phase);
        }
    }

    fn phase_exit(&self, phase: Phase) {
        for s in &self.sinks {
            s.phase_exit(phase);
        }
    }

    fn count(&self, counter: Counter, delta: u64) {
        for s in &self.sinks {
            s.count(counter, delta);
        }
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        for s in &self.sinks {
            s.gauge(gauge, value);
        }
    }

    fn frontier(&self, level: usize, size: usize) {
        for s in &self.sinks {
            s.frontier(level, size);
        }
    }

    fn class_size(&self, size: usize) {
        for s in &self.sinks {
            s.class_size(size);
        }
    }

    fn bus_transaction(&self, op: &str) {
        for s in &self.sinks {
            s.bus_transaction(op);
        }
    }

    fn worker(&self, idx: usize, claims: u64) {
        for s in &self.sinks {
            s.worker(idx, claims);
        }
    }

    fn progress(&self, message: &str) {
        for s in &self.sinks {
            s.progress(message);
        }
    }

    fn span_begin(&self, kind: SpanKind, tid: u32) {
        for s in &self.sinks {
            s.span_begin(kind, tid);
        }
    }

    fn span_end(&self, kind: SpanKind, tid: u32) {
        for s in &self.sinks {
            s.span_end(kind, tid);
        }
    }

    fn sample(&self, track: Track, value: u64) {
        for s in &self.sinks {
            s.sample(track, value);
        }
    }

    fn violation(&self, description: &str) {
        for s in &self.sinks {
            s.violation(description);
        }
    }

    fn rule_stats(&self, rule: &str, stat: RuleStat) {
        for s in &self.sinks {
            s.rule_stats(rule, stat);
        }
    }

    fn stopped(&self, cause: &str, detail: Option<&str>) {
        for s in &self.sinks {
            s.stopped(cause, detail);
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(attached)"
        } else {
            "SinkHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        events: AtomicU64,
    }

    impl EventSink for CountingSink {
        fn count(&self, _counter: Counter, delta: u64) {
            self.events.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = SinkHandle::disabled();
        assert!(!handle.is_enabled());
        handle.count(Counter::Visits, 5);
        handle.phase_enter(Phase::Expand);
        handle.progress("nothing listens");
    }

    #[test]
    fn attached_handle_dispatches() {
        let sink = Arc::new(CountingSink::default());
        let handle = SinkHandle::new(sink.clone());
        assert!(handle.is_enabled());
        handle.count(Counter::Visits, 3);
        handle.count(Counter::Prunes, 4);
        // Default no-op methods are safe to call too.
        handle.frontier(0, 1);
        assert_eq!(sink.events.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let a = Arc::new(CountingSink::default());
        let b = Arc::new(CountingSink::default());
        let tee = Tee::new().with(a.clone()).with(b.clone());
        assert!(tee.enabled());
        let handle = SinkHandle::new(Arc::new(tee));
        handle.count(Counter::Visits, 2);
        assert_eq!(a.events.load(Ordering::Relaxed), 2);
        assert_eq!(b.events.load(Ordering::Relaxed), 2);
        assert!(!Tee::new().enabled(), "an empty tee is disabled");
    }

    #[test]
    fn names_are_stable_and_indices_dense() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        assert_eq!(Counter::Visits.name(), "visits");
        assert_eq!(Gauge::EssentialStates.name(), "essential_states");
        assert_eq!(Phase::Expand.name(), "expand");
    }

    #[test]
    fn span_kinds_have_stable_names_and_categories() {
        assert_eq!(SpanKind::Phase(Phase::Enumerate).name(), "enumerate");
        assert_eq!(SpanKind::Phase(Phase::Enumerate).category(), "phase");
        assert_eq!(SpanKind::WorkerBusy.name(), "worker_busy");
        assert_eq!(SpanKind::WorkerBusy.category(), "worker");
        assert_eq!(SpanKind::Steal.name(), "steal");
        assert_eq!(SpanKind::Drain.name(), "drain");
        assert_eq!(SpanKind::CrosscheckLeg.name(), "crosscheck_leg");
        assert_eq!(Track::Pending.name(), "pending");
        assert_eq!(Track::Visited.name(), "visited");
    }

    #[test]
    fn rule_stats_merge_adds_fields() {
        let mut a = RuleStat {
            firings: 1,
            states: 2,
            dedup_hits: 3,
            violations: 0,
            nanos: 10,
        };
        a.merge(&RuleStat {
            firings: 4,
            states: 5,
            dedup_hits: 6,
            violations: 1,
            nanos: 90,
        });
        assert_eq!(a.firings, 5);
        assert_eq!(a.states, 7);
        assert_eq!(a.dedup_hits, 9);
        assert_eq!(a.violations, 1);
        assert_eq!(a.nanos, 100);
    }

    #[test]
    fn new_events_flow_through_handle_and_tee() {
        #[derive(Default)]
        struct SpanSink {
            spans: AtomicU64,
            rules: AtomicU64,
            stops: AtomicU64,
        }
        impl EventSink for SpanSink {
            fn span_begin(&self, _kind: SpanKind, _tid: u32) {
                self.spans.fetch_add(1, Ordering::Relaxed);
            }
            fn span_end(&self, _kind: SpanKind, _tid: u32) {
                self.spans.fetch_add(1, Ordering::Relaxed);
            }
            fn rule_stats(&self, _rule: &str, stat: RuleStat) {
                self.rules.fetch_add(stat.firings, Ordering::Relaxed);
            }
            fn stopped(&self, _cause: &str, detail: Option<&str>) {
                assert_eq!(detail, Some("worker 3 panicked"));
                self.stops.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(SpanSink::default());
        let tee = Tee::new().with(sink.clone());
        let handle = SinkHandle::new(Arc::new(tee));
        handle.span_begin(SpanKind::WorkerBusy, 1);
        handle.span_end(SpanKind::WorkerBusy, 1);
        handle.sample(Track::Pending, 7);
        handle.violation("stale read");
        handle.rule_stats(
            "Inv:R",
            RuleStat {
                firings: 3,
                ..RuleStat::default()
            },
        );
        handle.stopped("worker_panic", Some("worker 3 panicked"));
        assert_eq!(sink.spans.load(Ordering::Relaxed), 2);
        assert_eq!(sink.rules.load(Ordering::Relaxed), 3);
        assert_eq!(sink.stops.load(Ordering::Relaxed), 1);
    }
}
