//! Crash-safe file publication: write-temp + fsync + atomic rename.
//!
//! Every artefact ccv persists (checkpoints, spill segments, verdict
//! cache entries, `--metrics-out` / `--essential-out` files) goes
//! through [`write_atomic`], so a reader never observes a
//! half-written file under the final name: a crash — even `kill -9` —
//! leaves either the previous complete file or the new complete file,
//! plus possibly an abandoned temp file that readers ignore.
//!
//! Torn content can still reach the final name through the
//! [`FaultKind::TornWrite`](crate::fault::FaultKind::TornWrite) fault
//! (which deliberately truncates the temp before publishing, to prove
//! readers validate) or through pre-existing files from older tools —
//! which is why every reader validates and [`quarantine`]s rather
//! than trusts.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fault::{injected_io_error, FaultHandle, FaultKind};

/// Distinguishes concurrent writers' temp files within one process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Publishes `bytes` at `path` atomically: writes a sibling temp
/// file, fsyncs it, renames it over `path`, then best-effort fsyncs
/// the directory. On any error the temp file is removed and `path`
/// is left as it was.
///
/// `fault` probes `site` first: an injected `io` fault fails the
/// write up front; an injected `torn` fault truncates the content to
/// half before publishing (exercising reader-side validation); an
/// injected `panic` fault panics.
pub fn write_atomic(path: &Path, bytes: &[u8], fault: &FaultHandle, site: &str) -> io::Result<()> {
    let mut bytes = bytes;
    match fault.fire(site) {
        Some(FaultKind::IoError) => return Err(injected_io_error(site)),
        Some(FaultKind::Panic) => panic!("injected fault: panic at {site}"),
        Some(FaultKind::TornWrite) => bytes = &bytes[..bytes.len() / 2],
        _ => {}
    }
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let publish = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if let Err(e) = publish {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself. Directory fsync is refused by some
    // filesystems; the rename is still atomic there, so this is
    // best-effort rather than load-bearing.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Moves a file that failed validation aside to `<path>.corrupt`, so
/// it is preserved for inspection but never re-read as live data.
/// Returns the quarantine path.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    let target = PathBuf::from(name);
    fs::rename(path, &target)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccv-persist-{tag}-{}", std::process::id()))
    }

    #[test]
    fn publishes_complete_content_and_no_temp_survives() {
        let path = tmp_path("ok");
        write_atomic(&path, b"hello\n", &FaultHandle::disabled(), "t").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello\n");
        // Overwrite is atomic too.
        write_atomic(&path, b"world\n", &FaultHandle::disabled(), "t").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world\n");
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        for entry in fs::read_dir(dir).unwrap() {
            let n = entry.unwrap().file_name().to_string_lossy().to_string();
            assert!(!n.contains(&format!(".{stem}.tmp-")), "leftover temp {n}");
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_io_error_leaves_previous_file_intact() {
        let path = tmp_path("ioerr");
        write_atomic(&path, b"v1", &FaultHandle::disabled(), "t").unwrap();
        let fault = FaultHandle::from_spec("t:io").unwrap();
        let err = write_atomic(&path, b"v2", &fault, "t").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_publishes_truncated_content() {
        let path = tmp_path("torn");
        let fault = FaultHandle::from_spec("t:torn").unwrap();
        write_atomic(&path, b"0123456789", &fault, "t").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"01234");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quarantine_renames_with_corrupt_suffix() {
        let path = tmp_path("quar");
        fs::write(&path, b"junk").unwrap();
        let q = quarantine(&path).unwrap();
        assert!(q.to_string_lossy().ends_with(".corrupt"));
        assert!(!path.exists());
        assert_eq!(fs::read(&q).unwrap(), b"junk");
        fs::remove_file(&q).unwrap();
    }

    #[test]
    fn write_into_missing_directory_errors_cleanly() {
        let path = Path::new("/proc/nonexistent/deep/file");
        assert!(write_atomic(path, b"x", &FaultHandle::disabled(), "t").is_err());
    }
}
