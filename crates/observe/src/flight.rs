//! Flight recorder: a fixed-capacity ring buffer of recent events.
//!
//! [`FlightRecorder`] is an [`EventSink`] that keeps the last *N*
//! events in a lock-free seqlock ring — writers never block each other
//! or take a lock on the hot path — and can replay them as NDJSON when
//! something goes wrong. [`PostmortemGuard`] arms the dump: when the
//! guard drops while a panic is unwinding, or after the recorder has
//! seen a [`violation`](EventSink::violation), the retained window is
//! written to stderr (or a file), so a failed run leaves a postmortem
//! artifact of what the engines did just before the failure.
//!
//! Each record is three machine words (timestamp, packed descriptor,
//! value). Strings (bus ops, progress notes, violation descriptions)
//! are interned in a bounded side table; past the bound the record is
//! kept but its string reads back as `<dropped>`. Under wrap-around
//! races a reader can observe a torn slot; the seqlock stamps detect
//! this and the slot is skipped rather than misreported.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Counter, EventSink, Gauge, Phase, SpanKind, Track};
use crate::json::Json;

/// Default ring capacity used by `--flight-recorder` without `=N`.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Most strings retained verbatim; later ones read back `<dropped>`.
const MAX_INTERNED: usize = 1024;

// Event kind codes (word 1, low byte). 0 means "slot never written".
const K_PHASE_ENTER: u64 = 1;
const K_PHASE_EXIT: u64 = 2;
const K_COUNT: u64 = 3;
const K_GAUGE: u64 = 4;
const K_FRONTIER: u64 = 5;
const K_CLASS_SIZE: u64 = 6;
const K_BUS: u64 = 7;
const K_WORKER: u64 = 8;
const K_PROGRESS: u64 = 9;
const K_SPAN_BEGIN: u64 = 10;
const K_SPAN_END: u64 = 11;
const K_SAMPLE: u64 = 12;
const K_VIOLATION: u64 = 13;
const K_STOPPED: u64 = 14;

// Span kind codes (field `a` of span records): phases use their dense
// index, the non-phase kinds sit above the phase range.
const SPAN_WORKER_BUSY: u64 = 16;
const SPAN_STEAL: u64 = 17;
const SPAN_DRAIN: u64 = 18;
const SPAN_CROSSCHECK_LEG: u64 = 19;

fn span_code(kind: SpanKind) -> u64 {
    match kind {
        SpanKind::Phase(p) => p.index() as u64,
        SpanKind::WorkerBusy => SPAN_WORKER_BUSY,
        SpanKind::Steal => SPAN_STEAL,
        SpanKind::Drain => SPAN_DRAIN,
        SpanKind::CrosscheckLeg => SPAN_CROSSCHECK_LEG,
    }
}

fn span_name(code: u64) -> &'static str {
    match code {
        SPAN_WORKER_BUSY => SpanKind::WorkerBusy.name(),
        SPAN_STEAL => SpanKind::Steal.name(),
        SPAN_DRAIN => SpanKind::Drain.name(),
        SPAN_CROSSCHECK_LEG => SpanKind::CrosscheckLeg.name(),
        code => Phase::ALL
            .get(code as usize)
            .map(|p| p.name())
            .unwrap_or("unknown"),
    }
}

/// One ring slot. `seq` is the seqlock stamp: `2t + 1` while ticket
/// `t`'s writer is filling the words, `2t + 2` once they are complete.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 3],
}

/// Lock-free ring-buffer [`EventSink`] retaining the last N events.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    started: Instant,
    saw_violation: AtomicBool,
    strings: Mutex<Vec<String>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 8).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(8);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            started: Instant::now(),
            saw_violation: AtomicBool::new(false),
            strings: Mutex::new(Vec::new()),
        }
    }

    /// Whether a [`violation`](EventSink::violation) was recorded.
    pub fn saw_violation(&self) -> bool {
        self.saw_violation.load(Ordering::Acquire)
    }

    /// Total events recorded (including ones the ring has overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Interns `s`, returning its 1-based id; 0 once the table is full.
    fn intern(&self, s: &str) -> u64 {
        let mut strings = self
            .strings
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(idx) = strings.iter().position(|have| have == s) {
            return idx as u64 + 1;
        }
        if strings.len() >= MAX_INTERNED {
            return 0;
        }
        strings.push(s.to_string());
        strings.len() as u64
    }

    /// Records one event: `kind` plus packed fields `a` (32 bits),
    /// `b` (24 bits) and a full-width `value`.
    fn record(&self, kind: u64, a: u64, b: u64, value: u64) {
        let t_ns = self.started.elapsed().as_nanos() as u64;
        let packed = kind | (a & 0xffff_ffff) << 8 | (b & 0xff_ffff) << 40;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.words[0].store(t_ns, Ordering::Relaxed);
        slot.words[1].store(packed, Ordering::Relaxed);
        slot.words[2].store(value, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Replays the retained window, oldest first, as NDJSON lines.
    ///
    /// Records torn by concurrent wrap-around are skipped. Returns the
    /// number of lines written.
    pub fn dump(&self, out: &mut dyn Write) -> std::io::Result<usize> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = head.min(cap);
        let strings = self
            .strings
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        let resolve = |id: u64| -> String {
            if id == 0 {
                "<dropped>".to_string()
            } else {
                strings
                    .get(id as usize - 1)
                    .cloned()
                    .unwrap_or_else(|| "<dropped>".to_string())
            }
        };
        let mut written = 0;
        for ticket in head - retained..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * ticket + 2 {
                continue; // torn or already overwritten
            }
            let t_ns = slot.words[0].load(Ordering::Relaxed);
            let packed = slot.words[1].load(Ordering::Relaxed);
            let value = slot.words[2].load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            let kind = packed & 0xff;
            let a = (packed >> 8) & 0xffff_ffff;
            let b = (packed >> 40) & 0xff_ffff;
            let mut fields = vec![("t_ns".to_string(), Json::int(t_ns))];
            let mut ev = |name: &str, extra: Vec<(String, Json)>| {
                fields.insert(0, ("ev".to_string(), Json::str(name)));
                fields.extend(extra);
            };
            match kind {
                K_PHASE_ENTER | K_PHASE_EXIT => {
                    let name = if kind == K_PHASE_ENTER {
                        "phase_enter"
                    } else {
                        "phase_exit"
                    };
                    let phase = Phase::ALL
                        .get(a as usize)
                        .map(|p| p.name())
                        .unwrap_or("unknown");
                    ev(name, vec![("phase".to_string(), Json::str(phase))]);
                }
                K_COUNT => {
                    let counter = Counter::ALL
                        .get(a as usize)
                        .map(|c| c.name())
                        .unwrap_or("unknown");
                    ev(
                        "count",
                        vec![
                            ("counter".to_string(), Json::str(counter)),
                            ("delta".to_string(), Json::int(value)),
                        ],
                    );
                }
                K_GAUGE => {
                    let gauge = Gauge::ALL
                        .get(a as usize)
                        .map(|g| g.name())
                        .unwrap_or("unknown");
                    ev(
                        "gauge",
                        vec![
                            ("gauge".to_string(), Json::str(gauge)),
                            ("value".to_string(), Json::int(value)),
                        ],
                    );
                }
                K_FRONTIER => ev(
                    "frontier",
                    vec![
                        ("level".to_string(), Json::int(a)),
                        ("size".to_string(), Json::int(value)),
                    ],
                ),
                K_CLASS_SIZE => ev("class_size", vec![("size".to_string(), Json::int(value))]),
                K_BUS => ev("bus", vec![("op".to_string(), Json::Str(resolve(a)))]),
                K_WORKER => ev(
                    "worker",
                    vec![
                        ("worker".to_string(), Json::int(a)),
                        ("claims".to_string(), Json::int(value)),
                    ],
                ),
                K_PROGRESS => ev("progress", vec![("msg".to_string(), Json::Str(resolve(a)))]),
                K_SPAN_BEGIN | K_SPAN_END => {
                    let name = if kind == K_SPAN_BEGIN {
                        "span_begin"
                    } else {
                        "span_end"
                    };
                    ev(
                        name,
                        vec![
                            ("span".to_string(), Json::str(span_name(a))),
                            ("tid".to_string(), Json::int(b)),
                        ],
                    );
                }
                K_SAMPLE => {
                    let track = if a == Track::Pending.index() as u64 {
                        Track::Pending.name()
                    } else {
                        Track::Visited.name()
                    };
                    ev(
                        "sample",
                        vec![
                            ("track".to_string(), Json::str(track)),
                            ("value".to_string(), Json::int(value)),
                        ],
                    );
                }
                K_VIOLATION => ev(
                    "violation",
                    vec![("desc".to_string(), Json::Str(resolve(a)))],
                ),
                K_STOPPED => {
                    let mut extra = vec![("cause".to_string(), Json::Str(resolve(a)))];
                    if b != 0 {
                        extra.push(("detail".to_string(), Json::Str(resolve(b))));
                    }
                    ev("stopped", extra);
                }
                _ => continue,
            }
            writeln!(out, "{}", Json::Obj(fields).render_compact())?;
            written += 1;
        }
        Ok(written)
    }
}

impl EventSink for FlightRecorder {
    fn phase_enter(&self, phase: Phase) {
        self.record(K_PHASE_ENTER, phase.index() as u64, 0, 0);
    }

    fn phase_exit(&self, phase: Phase) {
        self.record(K_PHASE_EXIT, phase.index() as u64, 0, 0);
    }

    fn count(&self, counter: Counter, delta: u64) {
        self.record(K_COUNT, counter.index() as u64, 0, delta);
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.record(K_GAUGE, gauge.index() as u64, 0, value);
    }

    fn frontier(&self, level: usize, size: usize) {
        self.record(K_FRONTIER, level as u64, 0, size as u64);
    }

    fn class_size(&self, size: usize) {
        self.record(K_CLASS_SIZE, 0, 0, size as u64);
    }

    fn bus_transaction(&self, op: &str) {
        let id = self.intern(op);
        self.record(K_BUS, id, 0, 1);
    }

    fn worker(&self, idx: usize, claims: u64) {
        self.record(K_WORKER, idx as u64, 0, claims);
    }

    fn progress(&self, message: &str) {
        let id = self.intern(message);
        self.record(K_PROGRESS, id, 0, 0);
    }

    fn span_begin(&self, kind: SpanKind, tid: u32) {
        self.record(K_SPAN_BEGIN, span_code(kind), tid as u64, 0);
    }

    fn span_end(&self, kind: SpanKind, tid: u32) {
        self.record(K_SPAN_END, span_code(kind), tid as u64, 0);
    }

    fn sample(&self, track: Track, value: u64) {
        self.record(K_SAMPLE, track.index() as u64, 0, value);
    }

    fn violation(&self, description: &str) {
        let id = self.intern(description);
        self.record(K_VIOLATION, id, 0, 0);
        self.saw_violation.store(true, Ordering::Release);
    }

    fn stopped(&self, cause: &str, detail: Option<&str>) {
        let cause_id = self.intern(cause);
        let detail_id = detail.map(|d| self.intern(d)).unwrap_or(0);
        self.record(K_STOPPED, cause_id, detail_id, 0);
    }
}

/// Where a [`PostmortemGuard`] writes its dump.
enum DumpTarget {
    Stderr,
    File(std::path::PathBuf),
}

/// Scoped guard that dumps the flight recorder on failure.
///
/// Create it before running an engine and let it drop afterwards: if
/// the drop happens while a panic unwinds, or if the recorder saw a
/// violation during the run, the retained event window is written as
/// NDJSON (prefixed by one `"ev":"postmortem"` header line) to stderr
/// or the configured file.
pub struct PostmortemGuard {
    recorder: std::sync::Arc<FlightRecorder>,
    target: DumpTarget,
}

impl PostmortemGuard {
    /// A guard dumping to stderr.
    pub fn stderr(recorder: std::sync::Arc<FlightRecorder>) -> PostmortemGuard {
        PostmortemGuard {
            recorder,
            target: DumpTarget::Stderr,
        }
    }

    /// A guard dumping to `path` (created/truncated at dump time).
    pub fn to_file(
        recorder: std::sync::Arc<FlightRecorder>,
        path: impl Into<std::path::PathBuf>,
    ) -> PostmortemGuard {
        PostmortemGuard {
            recorder,
            target: DumpTarget::File(path.into()),
        }
    }

    /// Dumps unconditionally (header line + retained events).
    pub fn dump_now(&self) {
        let rec = &self.recorder;
        let header = Json::Obj(vec![
            ("ev".to_string(), Json::str("postmortem")),
            ("recorded".to_string(), Json::int(rec.recorded())),
            (
                "retained".to_string(),
                Json::int(rec.recorded().min(rec.slots.len() as u64)),
            ),
            ("violation".to_string(), Json::Bool(rec.saw_violation())),
            (
                "panicking".to_string(),
                Json::Bool(std::thread::panicking()),
            ),
        ]);
        match &self.target {
            DumpTarget::Stderr => {
                let stderr = std::io::stderr();
                let mut out = stderr.lock();
                let _ = writeln!(out, "{}", header.render_compact());
                let _ = rec.dump(&mut out);
            }
            DumpTarget::File(path) => {
                if let Ok(file) = std::fs::File::create(path) {
                    let mut out = std::io::BufWriter::new(file);
                    let _ = writeln!(out, "{}", header.render_compact());
                    let _ = rec.dump(&mut out);
                    let _ = out.flush();
                }
            }
        }
    }
}

impl Drop for PostmortemGuard {
    fn drop(&mut self) {
        if std::thread::panicking() || self.recorder.saw_violation() {
            self.dump_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn lines(rec: &FlightRecorder) -> Vec<Json> {
        let mut buf = Vec::new();
        rec.dump(&mut buf).unwrap();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn records_and_replays_in_order() {
        let rec = FlightRecorder::new(16);
        rec.phase_enter(Phase::Enumerate);
        rec.count(Counter::Visits, 3);
        rec.sample(Track::Pending, 7);
        rec.span_begin(SpanKind::WorkerBusy, 2);
        rec.span_end(SpanKind::WorkerBusy, 2);
        rec.violation("stale value on cache 1");
        rec.phase_exit(Phase::Enumerate);

        assert!(rec.saw_violation());
        let events = lines(&rec);
        assert_eq!(events.len(), 7);
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| e.get("ev").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "phase_enter",
                "count",
                "sample",
                "span_begin",
                "span_end",
                "violation",
                "phase_exit"
            ]
        );
        assert_eq!(events[1].get("delta").unwrap().as_u64(), Some(3));
        assert_eq!(events[3].get("span").unwrap().as_str(), Some("worker_busy"));
        assert_eq!(events[3].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(
            events[5].get("desc").unwrap().as_str(),
            Some("stale value on cache 1")
        );
        // Timestamps never decrease across the replay.
        let ts: Vec<u64> = events
            .iter()
            .map(|e| e.get("t_ns").unwrap().as_u64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stopped_records_cause_and_detail() {
        let rec = FlightRecorder::new(16);
        rec.stopped("budget_exhausted", None);
        rec.stopped("worker_panic", Some("index out of bounds"));
        let events = lines(&rec);
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("cause").unwrap().as_str(),
            Some("budget_exhausted")
        );
        assert!(events[0].get("detail").is_none());
        assert_eq!(
            events[1].get("cause").unwrap().as_str(),
            Some("worker_panic")
        );
        assert_eq!(
            events[1].get("detail").unwrap().as_str(),
            Some("index out of bounds")
        );
    }

    #[test]
    fn ring_keeps_only_the_newest_window() {
        let rec = FlightRecorder::new(8);
        for i in 0..50 {
            rec.count(Counter::Visits, i);
        }
        assert_eq!(rec.recorded(), 50);
        let events = lines(&rec);
        assert_eq!(events.len(), 8);
        let deltas: Vec<u64> = events
            .iter()
            .map(|e| e.get("delta").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(deltas, (42..50).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_the_dump() {
        let rec = Arc::new(FlightRecorder::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        rec.count(Counter::Expansions, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 2000);
        // Every surviving line parses cleanly. A slot whose last
        // writer was overtaken during wrap-around may be skipped, so
        // allow a small shortfall from the full window.
        let events = lines(&rec);
        assert!(events.len() <= 64);
        assert!(events.len() >= 56, "lost too many slots: {}", events.len());
        for e in &events {
            assert_eq!(e.get("ev").unwrap().as_str(), Some("count"));
        }
    }

    #[test]
    fn guard_dumps_to_file_on_violation() {
        let dir = std::env::temp_dir().join("ccv-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("postmortem-{}.ndjson", std::process::id()));
        let rec = Arc::new(FlightRecorder::new(32));
        {
            let _guard = PostmortemGuard::to_file(rec.clone(), &path);
            rec.progress("expanding");
            rec.violation("cache 0 read 0 expected 1");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let parsed: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(
            parsed[0].get("ev").unwrap().as_str(),
            Some("postmortem"),
            "first line is the header"
        );
        assert_eq!(parsed[0].get("violation"), Some(&Json::Bool(true)));
        assert!(parsed
            .iter()
            .any(|e| e.get("ev").unwrap().as_str() == Some("violation")));
        assert!(parsed
            .iter()
            .any(|e| e.get("msg").map(|m| m.as_str()) == Some(Some("expanding"))));
    }

    #[test]
    fn guard_stays_silent_on_clean_runs() {
        let dir = std::env::temp_dir().join("ccv-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("clean-{}.ndjson", std::process::id()));
        let rec = Arc::new(FlightRecorder::new(32));
        {
            let _guard = PostmortemGuard::to_file(rec.clone(), &path);
            rec.progress("all good");
        }
        assert!(!path.exists(), "no dump without violation or panic");
    }

    #[test]
    fn string_table_is_bounded() {
        let rec = FlightRecorder::new(4096);
        for i in 0..(MAX_INTERNED + 10) {
            rec.progress(&format!("note {i}"));
        }
        let events = lines(&rec);
        let dropped = events
            .iter()
            .filter(|e| e.get("msg").unwrap().as_str() == Some("<dropped>"))
            .count();
        assert_eq!(dropped, 10);
    }
}
