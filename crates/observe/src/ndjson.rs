//! Streaming NDJSON event sink for live progress reporting.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Counter, EventSink, Gauge, Phase, RuleStat, SpanKind, Track};
use crate::json::Json;

/// An [`EventSink`] that writes one compact JSON object per event.
///
/// Records carry an `"ev"` discriminator and a `"t_ms"` timestamp
/// relative to sink creation. High-frequency events (`count`) are not
/// streamed — they would swamp the output; attach a
/// [`Metrics`](crate::Metrics) collector alongside for totals.
pub struct NdjsonSink<W: Write + Send> {
    out: Mutex<W>,
    started: Instant,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Streams events to `out`.
    pub fn new(out: W) -> NdjsonSink<W> {
        NdjsonSink {
            out: Mutex::new(out),
            started: Instant::now(),
        }
    }

    fn emit(&self, ev: &str, extra: Vec<(String, Json)>) {
        let mut fields = vec![
            ("ev".to_string(), Json::str(ev)),
            (
                "t_ms".to_string(),
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
        ];
        fields.extend(extra);
        let line = Json::Obj(fields).render_compact();
        let mut out = self.out.lock().unwrap_or_else(|poison| poison.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl<W: Write + Send> EventSink for NdjsonSink<W> {
    fn phase_enter(&self, phase: Phase) {
        self.emit(
            "phase_enter",
            vec![("phase".to_string(), Json::str(phase.name()))],
        );
    }

    fn phase_exit(&self, phase: Phase) {
        self.emit(
            "phase_exit",
            vec![("phase".to_string(), Json::str(phase.name()))],
        );
    }

    fn count(&self, _counter: Counter, _delta: u64) {
        // Too frequent to stream; totals belong to a Metrics collector.
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.emit(
            "gauge",
            vec![
                ("gauge".to_string(), Json::str(gauge.name())),
                ("value".to_string(), Json::int(value)),
            ],
        );
    }

    fn frontier(&self, level: usize, size: usize) {
        self.emit(
            "frontier",
            vec![
                ("level".to_string(), Json::int(level as u64)),
                ("size".to_string(), Json::int(size as u64)),
            ],
        );
    }

    fn worker(&self, idx: usize, claims: u64) {
        self.emit(
            "worker",
            vec![
                ("worker".to_string(), Json::int(idx as u64)),
                ("claims".to_string(), Json::int(claims)),
            ],
        );
    }

    fn progress(&self, message: &str) {
        self.emit(
            "progress",
            vec![("message".to_string(), Json::str(message))],
        );
    }

    fn span_begin(&self, kind: SpanKind, tid: u32) {
        self.emit(
            "span_begin",
            vec![
                ("span".to_string(), Json::str(kind.name())),
                ("tid".to_string(), Json::int(tid as u64)),
            ],
        );
    }

    fn span_end(&self, kind: SpanKind, tid: u32) {
        self.emit(
            "span_end",
            vec![
                ("span".to_string(), Json::str(kind.name())),
                ("tid".to_string(), Json::int(tid as u64)),
            ],
        );
    }

    fn sample(&self, track: Track, value: u64) {
        self.emit(
            "sample",
            vec![
                ("track".to_string(), Json::str(track.name())),
                ("value".to_string(), Json::int(value)),
            ],
        );
    }

    fn violation(&self, description: &str) {
        self.emit(
            "violation",
            vec![("desc".to_string(), Json::str(description))],
        );
    }

    fn rule_stats(&self, rule: &str, stat: RuleStat) {
        self.emit(
            "rule",
            vec![
                ("rule".to_string(), Json::str(rule)),
                ("firings".to_string(), Json::int(stat.firings)),
                ("states".to_string(), Json::int(stat.states)),
                ("dedup_hits".to_string(), Json::int(stat.dedup_hits)),
                ("violations".to_string(), Json::int(stat.violations)),
                ("wall_ns".to_string(), Json::int(stat.nanos)),
            ],
        );
    }

    fn stopped(&self, cause: &str, detail: Option<&str>) {
        let mut fields = vec![("cause".to_string(), Json::str(cause))];
        if let Some(detail) = detail {
            fields.push(("detail".to_string(), Json::str(detail)));
        }
        self.emit("stopped", fields);
    }
}

impl<W: Write + Send> Drop for NdjsonSink<W> {
    fn drop(&mut self) {
        let out = self.out.get_mut().unwrap_or_else(|p| p.into_inner());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_stream_as_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let sink = NdjsonSink::new(buf.clone());
        sink.phase_enter(Phase::Enumerate);
        sink.frontier(0, 3);
        sink.gauge(Gauge::DistinctStates, 14);
        sink.progress("level 0 done");
        sink.phase_exit(Phase::Enumerate);
        // count() is intentionally silent.
        sink.count(Counter::Visits, 1);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            let doc = Json::parse(line).unwrap();
            assert!(doc.get("ev").is_some());
            assert!(doc.get("t_ms").is_some());
        }
        assert!(lines[1].contains("\"frontier\""));
        assert!(lines[2].contains("\"distinct_states\""));
    }

    #[test]
    fn span_sample_violation_and_rule_records() {
        let buf = SharedBuf::default();
        let sink = NdjsonSink::new(buf.clone());
        sink.span_begin(SpanKind::WorkerBusy, 3);
        sink.sample(Track::Visited, 14);
        sink.violation("stale value");
        sink.rule_stats(
            "Inv:R",
            RuleStat {
                firings: 5,
                states: 4,
                dedup_hits: 1,
                violations: 0,
                nanos: 123,
            },
        );
        sink.span_end(SpanKind::WorkerBusy, 3);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let docs: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(docs.len(), 5);
        assert_eq!(docs[0].get("span").unwrap().as_str(), Some("worker_busy"));
        assert_eq!(docs[0].get("tid").unwrap().as_u64(), Some(3));
        assert_eq!(docs[1].get("track").unwrap().as_str(), Some("visited"));
        assert_eq!(docs[2].get("ev").unwrap().as_str(), Some("violation"));
        assert_eq!(docs[3].get("rule").unwrap().as_str(), Some("Inv:R"));
        assert_eq!(docs[3].get("firings").unwrap().as_u64(), Some(5));
        assert_eq!(docs[4].get("ev").unwrap().as_str(), Some("span_end"));
    }

    #[test]
    fn stopped_records_cause_and_optional_detail() {
        let buf = SharedBuf::default();
        let sink = NdjsonSink::new(buf.clone());
        sink.stopped("deadline_expired", None);
        sink.stopped("worker_panic", Some("boom"));

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let docs: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("ev").unwrap().as_str(), Some("stopped"));
        assert_eq!(
            docs[0].get("cause").unwrap().as_str(),
            Some("deadline_expired")
        );
        assert!(docs[0].get("detail").is_none());
        assert_eq!(docs[1].get("detail").unwrap().as_str(), Some("boom"));
    }

    /// Writer that stages bytes and only publishes them on flush, so
    /// the test can observe whether flushes actually happen.
    #[derive(Clone, Default)]
    struct FlushingBuf {
        staged: Arc<Mutex<Vec<u8>>>,
        published: Arc<Mutex<Vec<u8>>>,
        flushes: Arc<Mutex<usize>>,
    }

    impl Write for FlushingBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.staged.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            let mut staged = self.staged.lock().unwrap();
            self.published.lock().unwrap().extend_from_slice(&staged);
            staged.clear();
            *self.flushes.lock().unwrap() += 1;
            Ok(())
        }
    }

    #[test]
    fn drop_flushes_pending_output() {
        let buf = FlushingBuf::default();
        let flushes_before;
        {
            let sink = NdjsonSink::new(buf.clone());
            sink.progress("almost done");
            flushes_before = *buf.flushes.lock().unwrap();
            assert!(flushes_before >= 1, "emit flushes eagerly");
        }
        // Drop issued one more flush so nothing can be stranded in a
        // buffered writer when the sink goes away.
        assert_eq!(*buf.flushes.lock().unwrap(), flushes_before + 1);
        assert!(buf.staged.lock().unwrap().is_empty());
        let text = String::from_utf8(buf.published.lock().unwrap().clone()).unwrap();
        assert!(text.contains("almost done"));
    }

    #[test]
    fn concurrent_writers_produce_whole_lines() {
        let buf = SharedBuf::default();
        let sink = Arc::new(NdjsonSink::new(buf.clone()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.progress(&format!("thread {t} step {i}"));
                    }
                });
            }
        });
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for line in lines {
            let doc = Json::parse(line).expect("interleaved write corrupted a line");
            assert_eq!(doc.get("ev").unwrap().as_str(), Some("progress"));
        }
    }

    #[test]
    fn names_with_quotes_backslashes_and_control_chars_are_escaped() {
        let buf = SharedBuf::default();
        let sink = NdjsonSink::new(buf.clone());
        let nasty = "rule \"Inv:R\" \\ tab\there\nnewline \u{1} end";
        sink.violation(nasty);
        sink.rule_stats(nasty, RuleStat::default());
        sink.progress(nasty);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The raw newline inside the payload must have been escaped,
        // so each record is still exactly one physical line.
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let doc = Json::parse(line).unwrap();
            let field = doc
                .get("desc")
                .or_else(|| doc.get("rule"))
                .or_else(|| doc.get("message"))
                .unwrap();
            assert_eq!(field.as_str(), Some(nasty), "escaping must round-trip");
        }
    }
}
