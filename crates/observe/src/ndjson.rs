//! Streaming NDJSON event sink for live progress reporting.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Counter, EventSink, Gauge, Phase};
use crate::json::Json;

/// An [`EventSink`] that writes one compact JSON object per event.
///
/// Records carry an `"ev"` discriminator and a `"t_ms"` timestamp
/// relative to sink creation. High-frequency events (`count`) are not
/// streamed — they would swamp the output; attach a
/// [`Metrics`](crate::Metrics) collector alongside for totals.
pub struct NdjsonSink<W: Write + Send> {
    out: Mutex<W>,
    started: Instant,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Streams events to `out`.
    pub fn new(out: W) -> NdjsonSink<W> {
        NdjsonSink {
            out: Mutex::new(out),
            started: Instant::now(),
        }
    }

    fn emit(&self, ev: &str, extra: Vec<(String, Json)>) {
        let mut fields = vec![
            ("ev".to_string(), Json::str(ev)),
            (
                "t_ms".to_string(),
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
        ];
        fields.extend(extra);
        let line = Json::Obj(fields).render_compact();
        let mut out = self.out.lock().unwrap_or_else(|poison| poison.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl<W: Write + Send> EventSink for NdjsonSink<W> {
    fn phase_enter(&self, phase: Phase) {
        self.emit(
            "phase_enter",
            vec![("phase".to_string(), Json::str(phase.name()))],
        );
    }

    fn phase_exit(&self, phase: Phase) {
        self.emit(
            "phase_exit",
            vec![("phase".to_string(), Json::str(phase.name()))],
        );
    }

    fn count(&self, _counter: Counter, _delta: u64) {
        // Too frequent to stream; totals belong to a Metrics collector.
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.emit(
            "gauge",
            vec![
                ("gauge".to_string(), Json::str(gauge.name())),
                ("value".to_string(), Json::int(value)),
            ],
        );
    }

    fn frontier(&self, level: usize, size: usize) {
        self.emit(
            "frontier",
            vec![
                ("level".to_string(), Json::int(level as u64)),
                ("size".to_string(), Json::int(size as u64)),
            ],
        );
    }

    fn worker(&self, idx: usize, claims: u64) {
        self.emit(
            "worker",
            vec![
                ("worker".to_string(), Json::int(idx as u64)),
                ("claims".to_string(), Json::int(claims)),
            ],
        );
    }

    fn progress(&self, message: &str) {
        self.emit(
            "progress",
            vec![("message".to_string(), Json::str(message))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_stream_as_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let sink = NdjsonSink::new(buf.clone());
        sink.phase_enter(Phase::Enumerate);
        sink.frontier(0, 3);
        sink.gauge(Gauge::DistinctStates, 14);
        sink.progress("level 0 done");
        sink.phase_exit(Phase::Enumerate);
        // count() is intentionally silent.
        sink.count(Counter::Visits, 1);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            let doc = Json::parse(line).unwrap();
            assert!(doc.get("ev").is_some());
            assert!(doc.get("t_ms").is_some());
        }
        assert!(lines[1].contains("\"frontier\""));
        assert!(lines[2].contains("\"distinct_states\""));
    }
}
