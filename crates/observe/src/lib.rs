//! # ccv-observe — observability for the ccv verification engines
//!
//! This crate defines the event vocabulary shared by the symbolic
//! engine (`ccv-core`), the explicit-state enumerator (`ccv-enum`)
//! and the trace simulator (`ccv-sim`), plus two ready-made sinks:
//!
//! * [`EventSink`] — the trait engines emit into. Every method has a
//!   default no-op body, so a sink implements only what it cares
//!   about.
//! * [`SinkHandle`] — a cheap, cloneable handle that is either
//!   attached to a sink or disabled. Engines hold one of these; when
//!   it is disabled every emission is a branch on a `None` that the
//!   optimiser removes from the hot path.
//! * [`Metrics`] — an in-memory collector (atomic counters, phase
//!   wall-clock timers, log₂-bucket histograms) whose
//!   [`snapshot`](Metrics::snapshot) renders to JSON via [`Json`].
//! * [`NdjsonSink`] — streams one JSON object per event to any
//!   writer, for live progress reporting.
//! * [`TraceSink`] — exports spans, phases and counter tracks as a
//!   Chrome-trace JSON file loadable in `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev).
//! * [`FlightRecorder`] — a lock-free ring buffer retaining the last
//!   N events; paired with a [`PostmortemGuard`] it dumps an NDJSON
//!   postmortem when a violation is recorded or a panic unwinds.
//! * [`FaultHandle`] / [`FaultPlan`] — deterministic fault injection:
//!   named sites probe the handle and a parsed plan decides which hit
//!   fails, tears, panics, disconnects or stalls ([`fault`]).
//! * [`write_atomic`] / [`quarantine`] — crash-safe file publication
//!   (write-temp + fsync + atomic rename) and the reader-side
//!   quarantine discipline for files that fail validation
//!   ([`persist`]).
//!
//! The timeline vocabulary is [`SpanKind`] (phase, worker-busy,
//! steal, drain, crosscheck-leg spans carrying a thread id) and
//! [`Track`] (pending/visited counter tracks sampled at span
//! boundaries); per-rule attribution travels as [`RuleStat`] rows.
//!
//! [`CommonOptions`] lives here too: the options fields shared by all
//! three engines (work budget, stop-at-first-error, attached sink,
//! rule-stats collection), embedded by each engine's own options
//! struct.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ccv_observe::{Counter, Metrics, Phase, SinkHandle};
//!
//! let metrics = Arc::new(Metrics::new());
//! let sink = SinkHandle::from(metrics.clone() as Arc<dyn ccv_observe::EventSink>);
//!
//! sink.phase_enter(Phase::Expand);
//! sink.count(Counter::Visits, 22);
//! sink.phase_exit(Phase::Expand);
//!
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter(Counter::Visits), 22);
//! assert!(snap.to_json().render().contains("\"visits\": 22"));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod flight;
pub mod govern;
pub mod json;
pub mod metrics;
pub mod ndjson;
pub mod options;
pub mod persist;
pub mod trace;

pub use event::{Counter, EventSink, Gauge, Phase, RuleStat, SinkHandle, SpanKind, Tee, Track};
pub use fault::{FaultHandle, FaultKind, FaultPlan, FaultRule};
pub use flight::{FlightRecorder, PostmortemGuard};
pub use govern::{
    request_global_cancel, reset_global_cancel, CancelToken, Governor, StopCause, StopInfo,
};
pub use json::Json;
pub use metrics::{Metrics, MetricsSnapshot};
pub use ndjson::NdjsonSink;
pub use options::CommonOptions;
pub use persist::{quarantine, write_atomic};
pub use trace::TraceSink;
