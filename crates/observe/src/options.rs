//! Options fields shared by every ccv engine.

use std::sync::Arc;

use crate::event::{EventSink, SinkHandle};

/// Settings common to the symbolic engine, the explicit enumerator
/// and the trace simulator. Each engine's options struct embeds one
/// of these as its `common` field.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CommonOptions::default`] and refine with the builder methods,
/// so adding fields later is not a breaking change.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct CommonOptions {
    /// Work budget — the maximum number of units (symbolic visits,
    /// concrete states, trace accesses) the engine may process before
    /// giving up. Engines override the default with their own cap.
    pub budget: usize,
    /// Stop at the first detected error instead of collecting all.
    pub stop_at_first_error: bool,
    /// Observability sink; disabled by default (zero cost).
    pub sink: SinkHandle,
    /// Collect per-rule attribution (firings, states, dedup hits,
    /// kernel time) and emit it through
    /// [`EventSink::rule_stats`] at the end of the run. Off by
    /// default: attribution adds clock reads
    /// to the kernel loop, so engines only pay for it when asked.
    /// Ignored while the sink is disabled.
    pub rule_stats: bool,
}

impl Default for CommonOptions {
    fn default() -> CommonOptions {
        CommonOptions {
            budget: usize::MAX,
            stop_at_first_error: false,
            sink: SinkHandle::disabled(),
            rule_stats: false,
        }
    }
}

impl CommonOptions {
    /// Sets the work budget.
    pub fn budget(mut self, budget: usize) -> CommonOptions {
        self.budget = budget;
        self
    }

    /// Sets whether to stop at the first detected error.
    pub fn stop_at_first_error(mut self, stop: bool) -> CommonOptions {
        self.stop_at_first_error = stop;
        self
    }

    /// Attaches an observability sink.
    pub fn sink(mut self, sink: impl Into<SinkHandle>) -> CommonOptions {
        self.sink = sink.into();
        self
    }

    /// Attaches an observability sink from a shared trait object.
    pub fn with_sink(self, sink: Arc<dyn EventSink>) -> CommonOptions {
        self.sink(SinkHandle::new(sink))
    }

    /// Enables per-rule attribution collection.
    pub fn rule_stats(mut self, on: bool) -> CommonOptions {
        self.rule_stats = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn defaults_are_disabled_and_unbounded() {
        let opts = CommonOptions::default();
        assert_eq!(opts.budget, usize::MAX);
        assert!(!opts.stop_at_first_error);
        assert!(!opts.sink.is_enabled());
        assert!(!opts.rule_stats);
    }

    #[test]
    fn builders_chain() {
        let metrics = Arc::new(Metrics::new());
        let opts = CommonOptions::default()
            .budget(1000)
            .stop_at_first_error(true)
            .with_sink(metrics);
        assert_eq!(opts.budget, 1000);
        assert!(opts.stop_at_first_error);
        assert!(opts.sink.is_enabled());
    }
}
