//! Options fields shared by every ccv engine.

use std::sync::Arc;
use std::time::Duration;

use crate::event::{EventSink, SinkHandle};
use crate::fault::FaultHandle;
use crate::govern::{CancelToken, Governor};

/// Settings common to the symbolic engine, the explicit enumerator
/// and the trace simulator. Each engine's options struct embeds one
/// of these as its `common` field.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CommonOptions::default`] and refine with the builder methods,
/// so adding fields later is not a breaking change.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct CommonOptions {
    /// Work budget — the maximum number of units (symbolic visits,
    /// concrete states, trace accesses) the engine may process before
    /// giving up. Engines override the default with their own cap.
    pub budget: usize,
    /// Stop at the first detected error instead of collecting all.
    pub stop_at_first_error: bool,
    /// Observability sink; disabled by default (zero cost).
    pub sink: SinkHandle,
    /// Collect per-rule attribution (firings, states, dedup hits,
    /// kernel time) and emit it through
    /// [`EventSink::rule_stats`] at the end of the run. Off by
    /// default: attribution adds clock reads
    /// to the kernel loop, so engines only pay for it when asked.
    /// Ignored while the sink is disabled.
    pub rule_stats: bool,
    /// Wall-clock deadline for the run. `None` (the default) means
    /// unbounded; engines poll the clock at
    /// [`Governor::STRIDE`] granularity.
    pub deadline: Option<Duration>,
    /// Approximate memory cap in bytes (arena + visited-table
    /// footprint, as reported by the engine). `None` means unbounded.
    pub max_bytes: Option<u64>,
    /// Cooperative cancellation token. Defaults to a fresh private
    /// token; the CLI installs [`CancelToken::global`] so Ctrl-C
    /// stops engines mid-run with a partial verdict.
    pub cancel: CancelToken,
    /// Deterministic fault injection; disabled by default (one
    /// branch per site probe, nothing ever fires).
    pub fault: FaultHandle,
}

impl Default for CommonOptions {
    fn default() -> CommonOptions {
        CommonOptions {
            budget: usize::MAX,
            stop_at_first_error: false,
            sink: SinkHandle::disabled(),
            rule_stats: false,
            deadline: None,
            max_bytes: None,
            cancel: CancelToken::new(),
            fault: FaultHandle::disabled(),
        }
    }
}

impl CommonOptions {
    /// Sets the work budget.
    pub fn budget(mut self, budget: usize) -> CommonOptions {
        self.budget = budget;
        self
    }

    /// Sets whether to stop at the first detected error.
    pub fn stop_at_first_error(mut self, stop: bool) -> CommonOptions {
        self.stop_at_first_error = stop;
        self
    }

    /// Attaches an observability sink.
    pub fn sink(mut self, sink: impl Into<SinkHandle>) -> CommonOptions {
        self.sink = sink.into();
        self
    }

    /// Attaches an observability sink from a shared trait object.
    pub fn with_sink(self, sink: Arc<dyn EventSink>) -> CommonOptions {
        self.sink(SinkHandle::new(sink))
    }

    /// Enables per-rule attribution collection.
    pub fn rule_stats(mut self, on: bool) -> CommonOptions {
        self.rule_stats = on;
        self
    }

    /// Sets a wall-clock deadline for the run.
    pub fn deadline(mut self, deadline: Option<Duration>) -> CommonOptions {
        self.deadline = deadline;
        self
    }

    /// Sets an approximate memory cap in bytes.
    pub fn max_bytes(mut self, max_bytes: Option<u64>) -> CommonOptions {
        self.max_bytes = max_bytes;
        self
    }

    /// Installs a cancellation token shared with the caller.
    pub fn cancel(mut self, token: CancelToken) -> CommonOptions {
        self.cancel = token;
        self
    }

    /// Arms deterministic fault injection for this run.
    pub fn fault(mut self, fault: FaultHandle) -> CommonOptions {
        self.fault = fault;
        self
    }

    /// Builds a [`Governor`] over this run's deadline, memory cap and
    /// cancellation token, started now. The state-count budget stays
    /// with the engine (it owns the visited count).
    pub fn governor(&self) -> Governor {
        Governor::new(self.deadline, self.max_bytes, self.cancel.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn defaults_are_disabled_and_unbounded() {
        let opts = CommonOptions::default();
        assert_eq!(opts.budget, usize::MAX);
        assert!(!opts.stop_at_first_error);
        assert!(!opts.sink.is_enabled());
        assert!(!opts.rule_stats);
        assert!(opts.deadline.is_none());
        assert!(opts.max_bytes.is_none());
        assert!(!opts.cancel.is_stopped());
        assert!(!opts.fault.is_enabled());
    }

    #[test]
    fn governed_builders_chain_and_build() {
        use std::time::Duration;

        let token = crate::govern::CancelToken::new();
        let opts = CommonOptions::default()
            .deadline(Some(Duration::from_secs(30)))
            .max_bytes(Some(1 << 20))
            .cancel(token.clone());
        assert_eq!(opts.deadline, Some(Duration::from_secs(30)));
        assert_eq!(opts.max_bytes, Some(1 << 20));
        let gov = opts.governor();
        assert_eq!(gov.cause(), None);
        token.cancel();
        assert!(gov.cancelled().is_some());
    }

    #[test]
    fn builders_chain() {
        let metrics = Arc::new(Metrics::new());
        let opts = CommonOptions::default()
            .budget(1000)
            .stop_at_first_error(true)
            .with_sink(metrics);
        assert_eq!(opts.budget, 1000);
        assert!(opts.stop_at_first_error);
        assert!(opts.sink.is_enabled());
    }
}
