//! Chrome-trace / Perfetto export of engine timelines.
//!
//! [`TraceSink`] streams events in the Chrome Trace Event Format — a
//! JSON object `{"traceEvents": [...]}` of `B`/`E` duration events,
//! `C` counter events and `M` metadata records — which both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. The JSON is hand-rolled through [`Json`], matching the
//! no-dependency policy of the rest of the crate.
//!
//! Track layout:
//!
//! * one track per thread id: tid 0 is the coordinating thread
//!   (phases, drain, crosscheck legs), tid `w + 1` is enumeration
//!   worker `w` (busy/steal spans). Threads are named via `M`
//!   (`thread_name`) records on first appearance;
//! * one counter track per [`Track`] (`pending`, `visited`), sampled
//!   by the engines at span boundaries;
//! * gauges are exported as counter tracks too, so final readings
//!   (distinct states, peak pending) appear on the timeline.
//!
//! Events are written incrementally under one mutex; timestamps are
//! taken inside the lock, so the file order is monotonic. Call
//! [`TraceSink::finish`] (or drop the sink) to close the JSON array.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Counter, EventSink, Gauge, Phase, SpanKind, Track};
use crate::json::Json;

struct TraceState<W> {
    out: W,
    /// No event written yet (controls comma placement).
    first: bool,
    /// The closing `]}` was written; further events are dropped.
    finished: bool,
    /// Thread ids that already received a `thread_name` record.
    named_tids: Vec<u32>,
    /// Write failure observed; stop emitting.
    broken: bool,
}

/// An [`EventSink`] that writes a Chrome-trace JSON file.
pub struct TraceSink<W: Write + Send> {
    state: Mutex<TraceState<W>>,
    started: Instant,
}

impl<W: Write + Send> TraceSink<W> {
    /// Streams trace events to `out`. The header is written
    /// immediately; [`finish`](TraceSink::finish) writes the footer.
    pub fn new(mut out: W) -> TraceSink<W> {
        let broken = out.write_all(b"{\"traceEvents\": [").is_err();
        TraceSink {
            state: Mutex::new(TraceState {
                out,
                first: true,
                finished: false,
                named_tids: Vec::new(),
                broken,
            }),
            started: Instant::now(),
        }
    }

    /// Closes the `traceEvents` array and flushes. Idempotent; called
    /// automatically on drop.
    pub fn finish(&self) {
        let mut st = self.lock();
        Self::finish_locked(&mut st);
    }

    fn finish_locked(st: &mut TraceState<W>) {
        if st.finished {
            return;
        }
        st.finished = true;
        if !st.broken {
            let _ = st.out.write_all(b"]}\n");
            let _ = st.out.flush();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState<W>> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Appends one raw event record (fields besides `ts`/`pid`).
    fn emit(&self, tid: Option<u32>, fields: Vec<(String, Json)>) {
        let mut st = self.lock();
        if st.finished || st.broken {
            return;
        }
        if let Some(tid) = tid {
            if !st.named_tids.contains(&tid) {
                st.named_tids.push(tid);
                let name = if tid == 0 {
                    "main".to_string()
                } else {
                    format!("worker-{}", tid - 1)
                };
                let meta = Json::Obj(vec![
                    ("name".to_string(), Json::str("thread_name")),
                    ("ph".to_string(), Json::str("M")),
                    ("pid".to_string(), Json::int(1)),
                    ("tid".to_string(), Json::int(tid as u64)),
                    (
                        "args".to_string(),
                        Json::Obj(vec![("name".to_string(), Json::Str(name))]),
                    ),
                ]);
                Self::write_record(&mut st, meta);
            }
        }
        // Timestamp inside the lock: file order is globally monotonic.
        let ts = self.started.elapsed().as_secs_f64() * 1e6;
        let mut record = vec![
            ("ts".to_string(), Json::Num(ts)),
            ("pid".to_string(), Json::int(1)),
        ];
        if let Some(tid) = tid {
            record.push(("tid".to_string(), Json::int(tid as u64)));
        }
        record.extend(fields);
        Self::write_record(&mut st, Json::Obj(record));
    }

    fn write_record(st: &mut TraceState<W>, record: Json) {
        let sep: &[u8] = if st.first { b"\n" } else { b",\n" };
        st.first = false;
        if st.out.write_all(sep).is_err()
            || st
                .out
                .write_all(record.render_compact().as_bytes())
                .is_err()
        {
            st.broken = true;
        }
    }

    fn duration_event(&self, ph: &str, name: &str, cat: &str, tid: u32) {
        self.emit(
            Some(tid),
            vec![
                ("ph".to_string(), Json::str(ph)),
                ("name".to_string(), Json::str(name)),
                ("cat".to_string(), Json::str(cat)),
            ],
        );
    }

    fn counter_event(&self, name: &str, value: u64) {
        self.emit(
            Some(0),
            vec![
                ("ph".to_string(), Json::str("C")),
                ("name".to_string(), Json::str(name)),
                (
                    "args".to_string(),
                    Json::Obj(vec![(name.to_string(), Json::int(value))]),
                ),
            ],
        );
    }
}

impl<W: Write + Send> EventSink for TraceSink<W> {
    fn phase_enter(&self, phase: Phase) {
        let kind = SpanKind::Phase(phase);
        self.duration_event("B", kind.name(), kind.category(), 0);
    }

    fn phase_exit(&self, phase: Phase) {
        let kind = SpanKind::Phase(phase);
        self.duration_event("E", kind.name(), kind.category(), 0);
    }

    fn span_begin(&self, kind: SpanKind, tid: u32) {
        self.duration_event("B", kind.name(), kind.category(), tid);
    }

    fn span_end(&self, kind: SpanKind, tid: u32) {
        self.duration_event("E", kind.name(), kind.category(), tid);
    }

    fn sample(&self, track: Track, value: u64) {
        self.counter_event(track.name(), value);
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.counter_event(gauge.name(), value);
    }

    fn count(&self, _counter: Counter, _delta: u64) {
        // Counter deltas are aggregates (mostly end-of-run merges);
        // the timeline carries Track samples instead.
    }

    fn progress(&self, message: &str) {
        self.emit(
            Some(0),
            vec![
                ("ph".to_string(), Json::str("i")),
                ("name".to_string(), Json::str(message)),
                ("cat".to_string(), Json::str("progress")),
                ("s".to_string(), Json::str("g")),
            ],
        );
    }

    fn violation(&self, description: &str) {
        self.emit(
            Some(0),
            vec![
                ("ph".to_string(), Json::str("i")),
                ("name".to_string(), Json::str(description)),
                ("cat".to_string(), Json::str("violation")),
                ("s".to_string(), Json::str("g")),
            ],
        );
    }

    fn stopped(&self, cause: &str, detail: Option<&str>) {
        let name = match detail {
            Some(d) => format!("{cause}: {d}"),
            None => cause.to_string(),
        };
        self.emit(
            Some(0),
            vec![
                ("ph".to_string(), Json::str("i")),
                ("name".to_string(), Json::Str(name)),
                ("cat".to_string(), Json::str("govern")),
                ("s".to_string(), Json::str("g")),
            ],
        );
    }
}

impl<W: Write + Send> Drop for TraceSink<W> {
    fn drop(&mut self) {
        let st = self.state.get_mut().unwrap_or_else(|p| p.into_inner());
        Self::finish_locked(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn trace_text(buf: &SharedBuf) -> String {
        String::from_utf8(buf.0.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn emits_valid_chrome_trace_json() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(buf.clone());
        sink.phase_enter(Phase::Enumerate);
        sink.span_begin(SpanKind::WorkerBusy, 1);
        sink.sample(Track::Pending, 3);
        sink.span_end(SpanKind::WorkerBusy, 1);
        sink.phase_exit(Phase::Enumerate);
        sink.finish();

        let doc = Json::parse(&trace_text(&buf)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name records (tid 0 and tid 1) + 5 events.
        assert_eq!(events.len(), 7);
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"thread_name"));
        assert!(names.contains(&"enumerate"));
        assert!(names.contains(&"worker_busy"));
        assert!(names.contains(&"pending"));
    }

    #[test]
    fn spans_are_balanced_and_timestamps_monotonic() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(buf.clone());
        sink.phase_enter(Phase::Expand);
        sink.span_begin(SpanKind::WorkerBusy, 0);
        sink.span_end(SpanKind::WorkerBusy, 0);
        sink.phase_exit(Phase::Expand);
        sink.finish();

        let doc = Json::parse(&trace_text(&buf)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut last_ts = -1.0f64;
        let mut depth = 0i64;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "timestamps must be monotonic in file order");
            last_ts = ts;
            match ph {
                "B" => depth += 1,
                "E" => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "span end without begin");
        }
        assert_eq!(depth, 0, "unbalanced spans");
    }

    #[test]
    fn stopped_renders_as_instant_event() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(buf.clone());
        sink.stopped("deadline_expired", None);
        sink.stopped("worker_panic", Some("boom"));
        sink.finish();

        let doc = Json::parse(&trace_text(&buf)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let instants: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("govern")))
            .collect();
        assert_eq!(instants.len(), 2);
        assert_eq!(
            instants[0].get("name").unwrap().as_str(),
            Some("deadline_expired")
        );
        assert_eq!(
            instants[1].get("name").unwrap().as_str(),
            Some("worker_panic: boom")
        );
        assert_eq!(instants[0].get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn drop_closes_the_array() {
        let buf = SharedBuf::default();
        {
            let sink = TraceSink::new(buf.clone());
            sink.phase_enter(Phase::Check);
            sink.phase_exit(Phase::Check);
        }
        let doc = Json::parse(&trace_text(&buf)).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_arr().is_some());
    }

    #[test]
    fn finish_is_idempotent_and_later_events_are_dropped() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(buf.clone());
        sink.phase_enter(Phase::Graph);
        sink.phase_exit(Phase::Graph);
        sink.finish();
        sink.finish();
        sink.progress("after finish");
        let text = trace_text(&buf);
        assert!(Json::parse(&text).is_ok(), "still valid: {text}");
        assert!(!text.contains("after finish"));
    }
}
