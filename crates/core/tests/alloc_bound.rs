//! Pins the steady-state allocation behaviour of the symbolic engine.
//!
//! The interned-arena refactor rebuilt the expansion around inline
//! class storage ([`ccv_core::small`]), reusable scratch buffers and a
//! recycled arena, so that a *warm* engine touches the allocator only
//! where state genuinely grows (new distinct composites, new nodes).
//! Two pins:
//!
//! * the successor kernel (`successors_into` with warm scratch) is
//!   **allocation-free** — classes stay inline and every intermediate
//!   buffer is reused;
//! * a warm full expansion stays under a small allocation budget per
//!   generated successor.
//!
//! (This lives in an integration test because the library itself is
//! `#![forbid(unsafe_code)]`; implementing `GlobalAlloc` requires
//! `unsafe` and belongs in a separate compilation unit.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ccv_core::{
    expand_with, run_expansion, successors_into, Composite, EngineScratch, ExpandScratch, Options,
    Transition,
};
use ccv_model::protocols;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warm_successor_kernel_is_allocation_free() {
    // Dragon has the largest class space in the library (7 states ×
    // 3 data tags); if its composites stay inline, every protocol's do.
    let spec = protocols::dragon();
    let exp = run_expansion(&spec, &Options::default());
    let essential: Vec<Composite> = exp.essential_states().into_iter().cloned().collect();
    assert!(essential.len() >= 7);

    // Cold phase: warm the scratch and the output buffer.
    let mut scratch = ExpandScratch::new();
    let mut out: Vec<Transition> = Vec::new();
    for s in &essential {
        successors_into(&spec, s, &mut scratch, &mut out);
    }

    // Hot phase: repeated full passes over the essential set.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut generated = 0usize;
    for _ in 0..100 {
        for s in &essential {
            successors_into(&spec, s, &mut scratch, &mut out);
            generated += out.len();
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "successor kernel allocated on the hot path ({} allocations over {} successors)",
        after - before,
        generated
    );
    assert!(generated > 1000, "kernel pass did no work");
}

#[test]
fn warm_expansion_stays_under_the_per_step_allocation_budget() {
    let spec = protocols::dragon();
    let opts = Options::default();

    // Cold run warms the scratch (index buckets, successor buffers)
    // and donates its arena back to the pool.
    let mut scratch = EngineScratch::new();
    let cold = expand_with(&spec, Composite::initial(&spec), &opts, &mut scratch);
    scratch.recycle(cold);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let warm = expand_with(&spec, Composite::initial(&spec), &opts, &mut scratch);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(warm.is_clean());
    let steps = warm.successors as u64;
    let allocs = after - before;
    // Steady state, the engine allocates only for genuinely new state:
    // intern buckets, node bookkeeping and result vectors. Two
    // allocations per generated successor is comfortable headroom over
    // the measured value; a regression that reintroduces per-step
    // cloning (class vectors, successor lists, eager error vectors)
    // blows well past it.
    assert!(
        allocs <= 2 * steps,
        "warm expansion allocated {allocs} times over {steps} successor steps"
    );
}
