//! Repetition operators and their interval semantics.
//!
//! Definition 6 of the paper introduces the operators `0`, `1` (the
//! *singleton*), `+` (*plus*) and `*` (*star*) describing how many
//! caches populate a cache-state class in a composite state. §3.2.2
//! orders them by the sets of counts they denote: `1 < + < *` and
//! `0 < *`.
//!
//! Internally the engine computes with **exact count intervals**
//! ([`Interval`]): `0 = [0,0]`, `1 = [1,1]`, `+ = [1,∞)`, `* = [0,∞)`.
//! Transitions perform exact interval arithmetic (subtract the
//! originator, add snooped caches) and only *coarsen* back to an
//! operator when a canonical composite state is emitted. This is what
//! lets a plain one-step worklist reproduce the paper's N-step
//! expansion rules (rule 4a/4b of §3.2.3): the interval arithmetic
//! carries the "how many are left" information the N-step rules exist
//! to track, and the copy-count category ([`crate::fval::FVal`])
//! carries the paper's convention that `+` sometimes denotes "at least
//! two, as recorded by `F`" (§4.0, discussion of state `s3`).

use core::fmt;

/// A repetition operator of Definition 6 (plus the explicit null
/// instance `0` of footnote 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rep {
    /// No cache is in the class (`q⁰`). Canonical states omit such
    /// classes; the variant exists for table defaults and arithmetic.
    #[default]
    Zero,
    /// Exactly one cache (`q¹`, the singleton).
    One,
    /// At least one cache (`q⁺`).
    Plus,
    /// Any number of caches, including none (`q*`).
    Star,
}

impl Rep {
    /// The information order of §3.2.2: `1 < + < *`, `0 < *`; `0` and
    /// `1`/`+` are incomparable. Returns `true` iff `self ≤ other`,
    /// i.e. every count admitted by `self` is admitted by `other`.
    #[inline]
    pub fn le(self, other: Rep) -> bool {
        self.interval().subset_of(other.interval())
    }

    /// The count interval denoted by the operator.
    #[inline]
    pub fn interval(self) -> Interval {
        match self {
            Rep::Zero => Interval::exact(0),
            Rep::One => Interval::exact(1),
            Rep::Plus => Interval::at_least(1),
            Rep::Star => Interval::at_least(0),
        }
    }

    /// Superscript rendering used in composite states: ``""`` for the
    /// singleton (the paper omits it), `"+"`, `"*"`.
    pub fn superscript(self) -> &'static str {
        match self {
            Rep::Zero => "⁰",
            Rep::One => "",
            Rep::Plus => "+",
            Rep::Star => "*",
        }
    }
}

impl fmt::Display for Rep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.superscript())
    }
}

/// An exact cache-count interval `[lo, hi]` where `hi` is either `lo`
/// (an *exact* class) or unbounded (a *lo-or-more* class).
///
/// Invariant maintained by the engine: every class interval is one of
/// these two shapes. Internalisation of a canonical state produces
/// exact or lo-unbounded intervals; subtraction, addition and merging
/// preserve the shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Minimum number of caches in the class.
    pub lo: u32,
    /// If `false`, the class holds exactly `lo` caches; if `true`, any
    /// count `≥ lo`.
    pub unbounded: bool,
}

impl Interval {
    /// The interval `[n, n]`.
    #[inline]
    pub const fn exact(n: u32) -> Interval {
        Interval {
            lo: n,
            unbounded: false,
        }
    }

    /// The interval `[n, ∞)`.
    #[inline]
    pub const fn at_least(n: u32) -> Interval {
        Interval {
            lo: n,
            unbounded: true,
        }
    }

    /// The empty class `[0, 0]`.
    pub const ZERO: Interval = Interval::exact(0);

    /// True iff the class is certainly empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.lo == 0 && !self.unbounded
    }

    /// True iff the class can be empty.
    #[inline]
    pub fn may_be_empty(self) -> bool {
        self.lo == 0
    }

    /// True iff the class certainly has at least one cache.
    #[inline]
    pub fn certainly_nonempty(self) -> bool {
        self.lo >= 1
    }

    /// True iff the class can have at least one cache.
    #[inline]
    pub fn may_be_nonempty(self) -> bool {
        self.lo >= 1 || self.unbounded
    }

    /// True iff the class can have two or more caches.
    #[inline]
    pub fn may_have_two(self) -> bool {
        self.lo >= 2 || self.unbounded
    }

    /// True iff every count in `self` is also in `other`.
    #[inline]
    pub fn subset_of(self, other: Interval) -> bool {
        if other.unbounded {
            self.lo >= other.lo
        } else {
            !self.unbounded && self.lo == other.lo
        }
    }

    /// Conditions the interval on "at least one cache present" (used
    /// when a cache of this class originates a transition). Returns
    /// `None` if the class is certainly empty.
    #[inline]
    pub fn condition_nonempty(self) -> Option<Interval> {
        if self.is_zero() {
            None
        } else {
            Some(Interval {
                lo: self.lo.max(1),
                unbounded: self.unbounded,
            })
        }
    }

    /// Conditions the interval on "empty". Returns `None` if the class
    /// certainly has a cache.
    #[inline]
    pub fn condition_empty(self) -> Option<Interval> {
        if self.lo >= 1 {
            None
        } else {
            Some(Interval::ZERO)
        }
    }

    /// Removes one cache (the originator). The caller must have
    /// conditioned the class nonempty first.
    #[inline]
    pub fn minus_one(self) -> Interval {
        debug_assert!(self.lo >= 1, "minus_one on possibly-empty class");
        Interval {
            lo: self.lo - 1,
            unbounded: self.unbounded,
        }
    }

    /// Adds one cache (the originator arriving).
    #[inline]
    pub fn plus_one(self) -> Interval {
        Interval {
            lo: self.lo + 1,
            unbounded: self.unbounded,
        }
    }

    /// Merges two classes that snooping mapped to the same target
    /// (aggregation, rule 1 of §3.2.3): counts add.
    #[inline]
    pub fn merge(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            unbounded: self.unbounded || other.unbounded,
        }
    }

    /// Coarsens the interval to the nearest representable repetition
    /// operator, per the paper's convention: any class known to hold
    /// two or more caches is written `+`, with the surplus knowledge
    /// carried by the characteristic-function value (§4.0).
    #[inline]
    pub fn to_rep(self) -> Rep {
        match (self.lo, self.unbounded) {
            (0, false) => Rep::Zero,
            (1, false) => Rep::One,
            (0, true) => Rep::Star,
            (_, true) => Rep::Plus,
            // Exact counts ≥ 2 are not representable; coarsen to Plus.
            (_, false) => Rep::Plus,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unbounded {
            write!(f, "[{},∞)", self.lo)
        } else {
            write!(f, "[{},{}]", self.lo, self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_holds() {
        // 1 < + < *
        assert!(Rep::One.le(Rep::Plus));
        assert!(Rep::Plus.le(Rep::Star));
        assert!(Rep::One.le(Rep::Star));
        // 0 < *
        assert!(Rep::Zero.le(Rep::Star));
        // reflexivity
        for r in [Rep::Zero, Rep::One, Rep::Plus, Rep::Star] {
            assert!(r.le(r));
        }
        // strictness / incomparability
        assert!(!Rep::Plus.le(Rep::One));
        assert!(!Rep::Star.le(Rep::Plus));
        assert!(!Rep::Zero.le(Rep::One));
        assert!(!Rep::One.le(Rep::Zero));
        assert!(!Rep::Zero.le(Rep::Plus));
        assert!(!Rep::Plus.le(Rep::Zero));
    }

    #[test]
    fn roundtrip_rep_interval() {
        for r in [Rep::Zero, Rep::One, Rep::Plus, Rep::Star] {
            assert_eq!(r.interval().to_rep(), r);
        }
    }

    #[test]
    fn coarsening_of_exact_counts() {
        assert_eq!(Interval::exact(2).to_rep(), Rep::Plus);
        assert_eq!(Interval::exact(5).to_rep(), Rep::Plus);
        assert_eq!(Interval::at_least(3).to_rep(), Rep::Plus);
    }

    #[test]
    fn arithmetic() {
        let plus = Rep::Plus.interval();
        assert_eq!(
            plus.condition_nonempty().unwrap().minus_one(),
            Interval::at_least(0)
        );
        let star = Rep::Star.interval();
        assert_eq!(
            star.condition_nonempty().unwrap(),
            Interval::at_least(1),
            "conditioning * on nonempty gives +"
        );
        assert_eq!(star.condition_empty().unwrap(), Interval::ZERO);
        assert!(Interval::exact(1).condition_empty().is_none());
        assert!(Interval::ZERO.condition_nonempty().is_none());
        assert_eq!(
            Interval::exact(1).merge(Interval::exact(1)),
            Interval::exact(2)
        );
        assert_eq!(
            Interval::exact(1).merge(Interval::at_least(0)),
            Interval::at_least(1)
        );
        assert_eq!(Interval::exact(1).plus_one(), Interval::exact(2));
    }

    #[test]
    fn subset_relation() {
        assert!(Interval::exact(2).subset_of(Interval::at_least(1)));
        assert!(!Interval::at_least(1).subset_of(Interval::exact(1)));
        assert!(Interval::exact(1).subset_of(Interval::exact(1)));
        assert!(!Interval::exact(1).subset_of(Interval::exact(2)));
        assert!(Interval::at_least(2).subset_of(Interval::at_least(0)));
        assert!(!Interval::at_least(0).subset_of(Interval::at_least(1)));
    }

    #[test]
    fn emptiness_predicates() {
        assert!(Interval::ZERO.is_zero());
        assert!(!Interval::at_least(0).is_zero());
        assert!(Interval::at_least(0).may_be_empty());
        assert!(Interval::at_least(0).may_be_nonempty());
        assert!(!Interval::exact(1).may_be_empty());
        assert!(Interval::at_least(1).certainly_nonempty());
        assert!(Interval::at_least(0).may_have_two());
        assert!(!Interval::exact(1).may_have_two());
        assert!(Interval::exact(2).may_have_two());
    }
}
