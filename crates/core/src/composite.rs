//! Composite states (Definition 7) and augmented composite states
//! (Definition 4) in one canonical representation.
//!
//! A composite state groups the caches of a system with an *arbitrary*
//! number of caches into classes, one per cache state, each adorned
//! with a repetition operator. We additionally key each class by the
//! paper's per-cache context variable `cdata` (Definition 4): two
//! caches in the same protocol state but with different data freshness
//! belong to different classes. For *correct* protocols the two keys
//! coincide (every readable copy is fresh) and the representation
//! collapses to the paper's; for buggy protocols the split is what lets
//! the engine track which copies went stale.
//!
//! The global context variable `mdata` (memory freshness) and the
//! summarised characteristic-function value [`FVal`] complete the
//! state. Structural covering (Definition 8) and containment
//! (Definition 9) are implemented here.

use crate::fval::FVal;
use crate::rep::Rep;
use crate::small::InlineVec;
use ccv_model::{CData, MData, ProtocolSpec, StateId};
use core::fmt;

/// Number of class slots stored inline in a [`Composite`] before
/// spilling to the heap. A composite of a protocol with `v` valid
/// states holds at most `2v + 1` classes (fresh + obsolete per valid
/// state, plus the invalid class); the richest shipped protocols
/// (Dragon, MOESI) have five valid states, so 12 inline slots cover
/// every realistic spec without allocating.
pub const MAX_INLINE_CLASSES: usize = 12;

pub(crate) type ClassVec = InlineVec<(ClassKey, Rep), MAX_INLINE_CLASSES>;

/// The identity of a cache-state class: protocol state plus the
/// per-class data-freshness context variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassKey {
    /// The protocol state of every cache in the class.
    pub state: StateId,
    /// The freshness of every copy in the class (`NoData` exactly when
    /// the state holds no copy).
    pub cdata: CData,
}

impl ClassKey {
    /// Class of caches in `state` holding fresh data.
    pub fn fresh(state: StateId) -> ClassKey {
        ClassKey {
            state,
            cdata: CData::Fresh,
        }
    }

    /// Class of caches in `state` holding obsolete data.
    pub fn obsolete(state: StateId) -> ClassKey {
        ClassKey {
            state,
            cdata: CData::Obsolete,
        }
    }

    /// The invalid class (no copy, no data).
    pub fn invalid() -> ClassKey {
        ClassKey {
            state: StateId::INVALID,
            cdata: CData::NoData,
        }
    }

    /// Dense class-slot id, mirroring `ProtocolSpec::class_slot`:
    /// `state.index() * |CData| + cdata.index()`.
    #[inline]
    pub fn slot(self) -> usize {
        self.state.index() * CData::ALL.len() + self.cdata.index()
    }
}

impl Default for ClassKey {
    /// The invalid class — a neutral filler value for inline buffers.
    fn default() -> ClassKey {
        ClassKey::invalid()
    }
}

/// Compressed structural signature of a composite's class support, used
/// by the containment index to reject non-candidates without touching
/// the class vectors.
///
/// Bit `slot % 64` of `support` is set for every present class and bit
/// `slot % 64` of `nonstar` for every class whose operator does not
/// admit zero (`1` or `+`). Because signatures are unions of per-class
/// bits, set inclusion implies mask inclusion even when slots collide
/// modulo 64, so mask tests are a sound (never excluding) prefilter for
/// the two containment directions; the full `contained_in` check
/// confirms every candidate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ClassSig {
    /// One bit per present class (operator `1`, `+` or `*`).
    pub support: u64,
    /// One bit per class that certainly holds at least one cache.
    pub nonstar: u64,
}

/// A canonical augmented composite state.
///
/// Invariants (enforced by [`Composite::new`]):
/// * classes are sorted by key and unique;
/// * no class carries [`Rep::Zero`];
/// * the invalid state's class always has `cdata == NoData`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Composite {
    classes: ClassVec,
    /// Freshness of the memory copy (the paper's `mdata`).
    pub mdata: MData,
    /// Summarised characteristic-function value.
    pub f: FVal,
}

impl Composite {
    /// Builds a canonical composite state from unordered class
    /// descriptions. Classes with [`Rep::Zero`] are dropped; duplicate
    /// keys are rejected.
    ///
    /// # Panics
    /// Panics if the same key appears twice, or if an invalid-state
    /// class carries data.
    pub fn new(classes: Vec<(ClassKey, Rep)>, mdata: MData, f: FVal) -> Composite {
        let mut cv = ClassVec::new();
        for &(k, r) in &classes {
            if r != Rep::Zero {
                cv.push((k, r));
            }
        }
        cv.sort_unstable_by_key(|&(k, _)| k);
        for w in cv.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate class key {:?}", w[0].0);
        }
        for &(k, _) in &cv {
            if k.state.is_invalid() {
                assert_eq!(k.cdata, CData::NoData, "invalid class must carry NoData");
            }
        }
        Composite {
            classes: cv,
            mdata,
            f,
        }
    }

    /// Builds a composite from classes that are already canonical
    /// (sorted by key, unique, no [`Rep::Zero`]) — the allocation-free
    /// construction used by the emit hot path.
    pub(crate) fn from_parts(classes: ClassVec, mdata: MData, f: FVal) -> Composite {
        debug_assert!(classes.windows(2).all(|w| w[0].0 < w[1].0), "not canonical");
        debug_assert!(classes.iter().all(|&(_, r)| r != Rep::Zero));
        debug_assert!(classes
            .iter()
            .all(|&(k, _)| !k.state.is_invalid() || k.cdata == CData::NoData));
        Composite { classes, mdata, f }
    }

    /// The structural support signature used by the containment index.
    pub fn signature(&self) -> ClassSig {
        let mut sig = ClassSig::default();
        for &(k, r) in &self.classes {
            let bit = 1u64 << (k.slot() % 64);
            sig.support |= bit;
            if r != Rep::Star {
                sig.nonstar |= bit;
            }
        }
        sig
    }

    /// Heap bytes held by this composite beyond its inline size (`0`
    /// for every realistic protocol — classes fit inline).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.classes.heap_capacity() * core::mem::size_of::<(ClassKey, Rep)>()
    }

    /// The initial state of the expansion: every cache invalid
    /// (`(Invalid⁺)`), memory fresh — exactly the paper's §4.0 starting
    /// point. `F` is `v1` for sharing-detection protocols and `Null`
    /// otherwise.
    pub fn initial(spec: &ProtocolSpec) -> Composite {
        let f = if spec.uses_sharing_detection() {
            FVal::V1
        } else {
            FVal::Null
        };
        Composite::new(vec![(ClassKey::invalid(), Rep::Plus)], MData::Fresh, f)
    }

    /// The classes of the state, sorted by key.
    pub fn classes(&self) -> &[(ClassKey, Rep)] {
        &self.classes
    }

    /// The repetition operator of `key` (`Rep::Zero` if absent).
    pub fn rep_of(&self, key: ClassKey) -> Rep {
        self.classes
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, r)| r)
            .unwrap_or(Rep::Zero)
    }

    /// Number of distinct (nonempty) classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Iterator over classes whose protocol state holds a copy.
    pub fn valid_classes<'a>(
        &'a self,
        spec: &'a ProtocolSpec,
    ) -> impl Iterator<Item = (ClassKey, Rep)> + 'a {
        self.classes
            .iter()
            .copied()
            .filter(move |&(k, _)| spec.attrs(k.state).holds_copy)
    }

    /// Structural covering (Definition 8): `self ≤ other` iff for every
    /// class key the operator of `self` is at most the operator of
    /// `other` in the information order — equivalently, every concrete
    /// population admitted by `self` is admitted by `other`.
    pub fn covered_by(&self, other: &Composite) -> bool {
        // Every class of self must be admitted by other...
        for &(k, r) in &self.classes {
            if !r.le(other.rep_of(k)) {
                return false;
            }
        }
        // ...and every class of other absent from self must admit zero.
        for &(k, r) in &other.classes {
            if self.rep_of(k) == Rep::Zero && !Rep::Zero.le(r) {
                return false;
            }
        }
        true
    }

    /// Containment (Definition 9): structural covering plus equal
    /// characteristic-function value — extended to the augmented state
    /// with equal memory freshness.
    pub fn contained_in(&self, other: &Composite) -> bool {
        self.f == other.f && self.mdata == other.mdata && self.covered_by(other)
    }

    /// Like [`Composite::render`], with a `·m!` suffix when the memory
    /// copy is obsolete — states in counterexample paths often differ
    /// only in memory freshness.
    pub fn render_full(&self, spec: &ProtocolSpec) -> String {
        let base = self.render(spec);
        if self.mdata == MData::Obsolete {
            format!("{base}·m!")
        } else {
            base
        }
    }

    /// Renders the state in the paper's notation, e.g.
    /// `(Shared⁺, Inv*)`. Valid classes come first, the invalid class
    /// last; obsolete classes are marked `¡state!`.
    pub fn render(&self, spec: &ProtocolSpec) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.classes.len());
        let mut invalid_part: Option<String> = None;
        for &(k, r) in &self.classes {
            let short = &spec.state(k.state).short;
            let body = match k.cdata {
                CData::Obsolete => format!("¡{short}!"),
                _ => short.clone(),
            };
            let rendered = format!("{body}{}", r.superscript());
            if k.state.is_invalid() {
                invalid_part = Some(rendered);
            } else {
                parts.push(rendered);
            }
        }
        if let Some(inv) = invalid_part {
            parts.push(inv);
        }
        format!("({})", parts.join(", "))
    }
}

impl fmt::Display for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Protocol-independent rendering (state ids instead of names).
        let mut first = true;
        f.write_str("(")?;
        for &(k, r) in &self.classes {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            match k.cdata {
                CData::Obsolete => write!(f, "¡q{}!{}", k.state.0, r.superscript())?,
                _ => write!(f, "q{}{}", k.state.0, r.superscript())?,
            }
        }
        write!(f, ") f={} m={}", self.f, self.mdata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::illinois;

    fn key(state: u8) -> ClassKey {
        if state == 0 {
            ClassKey::invalid()
        } else {
            ClassKey::fresh(StateId(state))
        }
    }

    #[test]
    fn canonicalisation_sorts_and_drops_zero() {
        let c = Composite::new(
            vec![(key(3), Rep::One), (key(0), Rep::Star), (key(2), Rep::Zero)],
            MData::Fresh,
            FVal::V2,
        );
        assert_eq!(c.num_classes(), 2);
        assert_eq!(c.classes()[0].0, key(0));
        assert_eq!(c.rep_of(key(2)), Rep::Zero);
        assert_eq!(c.rep_of(key(3)), Rep::One);
    }

    #[test]
    #[should_panic(expected = "duplicate class key")]
    fn duplicate_keys_rejected() {
        let _ = Composite::new(
            vec![(key(1), Rep::One), (key(1), Rep::Plus)],
            MData::Fresh,
            FVal::V2,
        );
    }

    #[test]
    fn initial_state_matches_paper() {
        let spec = illinois();
        let init = Composite::initial(&spec);
        assert_eq!(init.f, FVal::V1);
        assert_eq!(init.mdata, MData::Fresh);
        assert_eq!(init.classes(), &[(ClassKey::invalid(), Rep::Plus)]);
        assert_eq!(init.render(&spec), "(Inv+)");
    }

    #[test]
    fn covering_matches_paper_s3_s4() {
        // s3 = (Shared⁺, Inv*) f=v3 ; s4 = (Shared, Inv⁺) f=v2.
        let spec = illinois();
        let sh = spec.state_by_name("Shared").unwrap();
        let s3 = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        let s4 = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::One),
                (ClassKey::invalid(), Rep::Plus),
            ],
            MData::Fresh,
            FVal::V2,
        );
        // "s4 is structurally covered by s3 but is not contained in s3."
        assert!(s4.covered_by(&s3));
        assert!(!s4.contained_in(&s3), "F values differ (v2 vs v3)");
        assert!(!s3.covered_by(&s4));
    }

    #[test]
    fn covering_handles_missing_classes() {
        let a = Composite::new(vec![(key(1), Rep::One)], MData::Fresh, FVal::V2);
        let b = Composite::new(
            vec![(key(1), Rep::One), (key(0), Rep::Star)],
            MData::Fresh,
            FVal::V2,
        );
        // a has no Invalid class (zero); b admits zero invalids via *.
        assert!(a.covered_by(&b));
        assert!(a.contained_in(&b));
        // b admits populations with invalids that a does not.
        assert!(!b.covered_by(&a));
        // A missing class in the covering state rejects a Plus class.
        let c = Composite::new(
            vec![(key(1), Rep::One), (key(0), Rep::Plus)],
            MData::Fresh,
            FVal::V2,
        );
        assert!(!c.covered_by(&a));
    }

    #[test]
    fn containment_requires_equal_mdata() {
        let a = Composite::new(vec![(key(1), Rep::One)], MData::Fresh, FVal::V2);
        let b = Composite::new(vec![(key(1), Rep::One)], MData::Obsolete, FVal::V2);
        assert!(a.covered_by(&b));
        assert!(!a.contained_in(&b));
    }

    #[test]
    fn render_marks_obsolete_classes() {
        let spec = illinois();
        let sh = spec.state_by_name("Shared").unwrap();
        let c = Composite::new(
            vec![
                (ClassKey::obsolete(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        assert_eq!(c.render(&spec), "(¡Shared!+, Inv*)");
    }
}
