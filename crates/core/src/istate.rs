//! Interval states — the engine's exact working representation.
//!
//! A canonical [`Composite`] describes a *family* of concrete global
//! states through repetition operators plus the characteristic-function
//! value. To expand it, the engine first **internalises** the state:
//! the operators become exact count intervals and the copy-count
//! category ([`FVal`]) is folded into the intervals, branching where
//! the category constrains counts in a way the intervals alone cannot
//! express (e.g. `v2` = "exactly one copy" over several star classes).
//!
//! After a transition has been applied with plain interval arithmetic,
//! the successor is **emitted** back into canonical form: its possible
//! copy-count categories are enumerated, the intervals are tightened
//! under each category, and each tightened branch is coarsened to
//! repetition operators. This internalise → step → emit pipeline is
//! what replaces the paper's N-step expansion rules (§3.2.3, rule 4):
//! a single interval step through a `+` class, split by resulting
//! category, yields exactly the intermediate and terminal states the
//! N-step rules enumerate.
//!
//! Classes live in an [`InlineVec`], so interval states clone without
//! allocating; the `*_into` entry points write their results into
//! caller-owned buffers so the whole internalise → step → emit pipeline
//! reuses a fixed set of vectors across expansion steps.

use crate::composite::{ClassKey, ClassVec, Composite, MAX_INLINE_CLASSES};
use crate::fval::FVal;
use crate::rep::Interval;
use crate::small::InlineVec;
use ccv_model::{MData, ProtocolSpec};

type IClassVec = InlineVec<(ClassKey, Interval), MAX_INLINE_CLASSES>;
pub(crate) type KeyList = InlineVec<ClassKey, MAX_INLINE_CLASSES>;

/// An exact-interval global state: classes keyed like [`Composite`] but
/// populated by [`Interval`]s, plus the memory-freshness variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IState {
    classes: IClassVec,
    /// Freshness of the memory copy.
    pub mdata: MData,
}

impl IState {
    /// Creates an interval state, dropping certainly-empty classes and
    /// keeping classes sorted by key.
    pub fn new(classes: Vec<(ClassKey, Interval)>, mdata: MData) -> IState {
        let mut cv = IClassVec::new();
        for &(k, iv) in &classes {
            if !iv.is_zero() {
                cv.push((k, iv));
            }
        }
        cv.sort_unstable_by_key(|&(k, _)| k);
        debug_assert!(
            cv.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate class keys"
        );
        IState { classes: cv, mdata }
    }

    /// An interval state with no classes (allocation-free).
    pub(crate) fn empty(mdata: MData) -> IState {
        IState {
            classes: IClassVec::new(),
            mdata,
        }
    }

    /// The classes, sorted by key.
    pub fn classes(&self) -> &[(ClassKey, Interval)] {
        &self.classes
    }

    /// The interval of `key` (`[0,0]` if absent).
    pub fn get(&self, key: ClassKey) -> Interval {
        self.classes
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, iv)| iv)
            .unwrap_or(Interval::ZERO)
    }

    /// Replaces the interval of `key` (removing the class if the new
    /// interval is certainly zero).
    pub fn set(&mut self, key: ClassKey, iv: Interval) {
        if let Some(i) = self.classes.iter().position(|&(k, _)| k == key) {
            if iv.is_zero() {
                self.classes.remove(i);
            } else {
                self.classes[i].1 = iv;
            }
        } else if !iv.is_zero() {
            let pos = self
                .classes
                .iter()
                .position(|&(k, _)| k > key)
                .unwrap_or(self.classes.len());
            self.classes.insert(pos, (key, iv));
        }
    }

    /// Adds one cache to `key` (merging with the existing class).
    pub fn add_one(&mut self, key: ClassKey) {
        let iv = self.get(key);
        self.set(key, iv.plus_one());
    }

    /// Merges `count` caches into `key`.
    pub fn merge_into(&mut self, key: ClassKey, count: Interval) {
        if count.is_zero() {
            return;
        }
        let iv = self.get(key);
        self.set(key, iv.merge(count));
    }

    /// Total copy-count interval over classes whose state holds a copy:
    /// `(lo, unbounded)`.
    pub fn total_valid(&self, spec: &ProtocolSpec) -> (u32, bool) {
        let mut lo = 0u32;
        let mut unbounded = false;
        for &(k, iv) in &self.classes {
            if spec.attrs(k.state).holds_copy {
                lo += iv.lo;
                unbounded |= iv.unbounded;
            }
        }
        (lo, unbounded)
    }

    /// Conditions the class at `key` to be nonempty; `None` if
    /// infeasible.
    pub fn condition_nonempty(&self, key: ClassKey) -> Option<IState> {
        let iv = self.get(key).condition_nonempty()?;
        let mut s = self.clone();
        s.set(key, iv);
        Some(s)
    }

    /// Conditions the class at `key` to be empty; `None` if infeasible.
    pub fn condition_empty(&self, key: ClassKey) -> Option<IState> {
        let iv = self.get(key).condition_empty()?;
        let mut s = self.clone();
        s.set(key, iv);
        Some(s)
    }
}

/// Folds a copy-count category into the intervals of `istate`,
/// branching when the category cannot be expressed by tightening alone.
/// Appends every feasible refinement to `out` (none = the category is
/// inconsistent with the intervals).
///
/// * `V1` — every valid class must be empty.
/// * `V2` — exactly one valid copy: the holder class is pinned to
///   `[1,1]` and every other valid class emptied; if no class is
///   already known nonempty, one branch per candidate holder.
/// * `V3` — at least two copies: any deficit below two is distributed
///   over the unbounded valid classes (one branch per distribution).
/// * `Null` — no constraint.
pub(crate) fn apply_category_into(
    spec: &ProtocolSpec,
    istate: &IState,
    f: FVal,
    out: &mut Vec<IState>,
) {
    let mut valid = KeyList::new();
    for &(k, _) in istate.classes() {
        if spec.attrs(k.state).holds_copy {
            valid.push(k);
        }
    }
    match f {
        FVal::Null => out.push(istate.clone()),
        FVal::V1 => {
            let mut s = istate.clone();
            for &k in &valid {
                match s.condition_empty(k) {
                    Some(next) => s = next,
                    None => return,
                }
            }
            out.push(s);
        }
        FVal::V2 => {
            let mut pinned = KeyList::new();
            for &k in &valid {
                if istate.get(k).certainly_nonempty() {
                    pinned.push(k);
                }
            }
            match pinned.len() {
                0 => {
                    // Branch: each candidate class holds the single copy.
                    for &holder in &valid {
                        let mut s = istate.clone();
                        s.set(holder, Interval::exact(1));
                        let mut ok = true;
                        for &k in &valid {
                            if k != holder {
                                match s.condition_empty(k) {
                                    Some(next) => s = next,
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                        }
                        if ok {
                            out.push(s);
                        }
                    }
                }
                1 => {
                    let holder = pinned[0];
                    if istate.get(holder).lo > 1 {
                        return; // more than one copy pinned
                    }
                    let mut s = istate.clone();
                    s.set(holder, Interval::exact(1));
                    for &k in &valid {
                        if k != holder {
                            match s.condition_empty(k) {
                                Some(next) => s = next,
                                None => return,
                            }
                        }
                    }
                    out.push(s);
                }
                _ => {} // two classes certainly nonempty: > 1 copy
            }
        }
        FVal::V3 => {
            let (total_lo, _) = istate.total_valid(spec);
            if total_lo >= 2 {
                out.push(istate.clone());
                return;
            }
            let deficit = 2 - total_lo;
            let mut unbounded = KeyList::new();
            for &k in &valid {
                if istate.get(k).unbounded {
                    unbounded.push(k);
                }
            }
            if unbounded.is_empty() {
                return; // cannot reach two copies
            }
            // Distribute `deficit` (1 or 2) units over unbounded classes.
            if deficit == 1 {
                for &u in &unbounded {
                    let mut s = istate.clone();
                    let iv = s.get(u);
                    s.set(u, Interval::at_least(iv.lo + 1));
                    out.push(s);
                }
            } else {
                for (i, &u) in unbounded.iter().enumerate() {
                    for &v in &unbounded[i..] {
                        let mut s = istate.clone();
                        if u == v {
                            let iv = s.get(u);
                            s.set(u, Interval::at_least(iv.lo + 2));
                        } else {
                            let iu = s.get(u);
                            s.set(u, Interval::at_least(iu.lo + 1));
                            let ivv = s.get(v);
                            s.set(v, Interval::at_least(ivv.lo + 1));
                        }
                        out.push(s);
                    }
                }
            }
        }
    }
}

/// Allocating wrapper around `apply_category_into` for callers
/// outside the hot path.
pub fn apply_category(spec: &ProtocolSpec, istate: &IState, f: FVal) -> Vec<IState> {
    let mut out = Vec::new();
    apply_category_into(spec, istate, f, &mut out);
    out
}

/// Internalises a canonical composite state into `out` (cleared first):
/// operators become intervals, and the state's characteristic-function
/// value is folded in via [`apply_category_into`].
pub(crate) fn internalize_into(spec: &ProtocolSpec, comp: &Composite, out: &mut Vec<IState>) {
    out.clear();
    let mut classes = IClassVec::new();
    for &(k, r) in comp.classes() {
        // Stored operators are never `Zero`, so no interval is zero and
        // the sorted class order carries over unchanged.
        classes.push((k, r.interval()));
    }
    let istate = IState {
        classes,
        mdata: comp.mdata,
    };
    apply_category_into(spec, &istate, comp.f, out);
}

/// Allocating wrapper around `internalize_into`.
pub fn internalize(spec: &ProtocolSpec, comp: &Composite) -> Vec<IState> {
    let mut out = Vec::new();
    internalize_into(spec, comp, &mut out);
    out
}

fn to_composite(s: &IState, f: FVal) -> Composite {
    let mut cv = ClassVec::new();
    for &(k, iv) in s.classes() {
        // Classes are sorted and non-zero, so the result is canonical.
        cv.push((k, iv.to_rep()));
    }
    Composite::from_parts(cv, s.mdata, f)
}

/// Emits a post-transition interval state back into canonical form,
/// writing into `out` (cleared first): one composite per feasible
/// copy-count category (or a single `Null`-annotated composite for
/// null-characteristic protocols), with intervals tightened under the
/// category before coarsening. `cats` is scratch space for the
/// per-category refinements.
pub(crate) fn emit_into(
    spec: &ProtocolSpec,
    istate: &IState,
    cats: &mut Vec<IState>,
    out: &mut Vec<Composite>,
) {
    out.clear();
    if !spec.uses_sharing_detection() {
        out.push(to_composite(istate, FVal::Null));
        return;
    }

    let (total_lo, total_unbounded) = istate.total_valid(spec);
    for cat in FVal::CATEGORIES {
        // Feasible iff the category's copy range intersects
        // [total_lo, total_max].
        let feasible = match cat {
            FVal::V1 => total_lo == 0,
            FVal::V2 => total_lo <= 1 && (total_unbounded || total_lo == 1),
            FVal::V3 => total_unbounded || total_lo >= 2,
            FVal::Null => unreachable!(),
        };
        if !feasible {
            continue;
        }
        cats.clear();
        apply_category_into(spec, istate, cat, cats);
        for refined in cats.iter() {
            let c = to_composite(refined, cat);
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
}

/// Allocating wrapper around `emit_into`.
pub fn emit(spec: &ProtocolSpec, istate: &IState) -> Vec<Composite> {
    let mut cats = Vec::new();
    let mut out = Vec::new();
    emit_into(spec, istate, &mut cats, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rep::Rep;
    use ccv_model::protocols::{illinois, msi};
    use ccv_model::StateId;

    fn ckey(spec: &ProtocolSpec, name: &str) -> ClassKey {
        let s = spec.state_by_name(name).unwrap();
        if s == StateId::INVALID {
            ClassKey::invalid()
        } else {
            ClassKey::fresh(s)
        }
    }

    #[test]
    fn internalize_initial_illinois() {
        let spec = illinois();
        let init = Composite::initial(&spec);
        let branches = internalize(&spec, &init);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].get(ClassKey::invalid()), Interval::at_least(1));
    }

    #[test]
    fn internalize_v3_raises_lower_bound() {
        // (Shared⁺, Inv*) f=v3 must internalise to Shared=[2,∞).
        let spec = illinois();
        let comp = Composite::new(
            vec![
                (ckey(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        let branches = internalize(&spec, &comp);
        assert_eq!(branches.len(), 1);
        assert_eq!(
            branches[0].get(ckey(&spec, "Shared")),
            Interval::at_least(2)
        );
    }

    #[test]
    fn internalize_v2_pins_the_holder() {
        // (Shared⁺, Inv*) f=v2: exactly one copy → Shared = [1,1].
        let spec = illinois();
        let comp = Composite::new(
            vec![
                (ckey(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V2,
        );
        let branches = internalize(&spec, &comp);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].get(ckey(&spec, "Shared")), Interval::exact(1));
    }

    #[test]
    fn internalize_v2_branches_over_candidate_holders() {
        // (V-Ex*, Shared*, Inv*) f=v2: the copy is in V-Ex or in Shared.
        let spec = illinois();
        let comp = Composite::new(
            vec![
                (ckey(&spec, "V-Ex"), Rep::Star),
                (ckey(&spec, "Shared"), Rep::Star),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V2,
        );
        let branches = internalize(&spec, &comp);
        assert_eq!(branches.len(), 2);
        let holders: Vec<_> = branches
            .iter()
            .map(|b| {
                let ve = b.get(ckey(&spec, "V-Ex"));
                let sh = b.get(ckey(&spec, "Shared"));
                (ve, sh)
            })
            .collect();
        assert!(holders.contains(&(Interval::exact(1), Interval::ZERO)));
        assert!(holders.contains(&(Interval::ZERO, Interval::exact(1))));
    }

    #[test]
    fn internalize_infeasible_category_is_empty() {
        // (Dirty¹, Inv*) f=v1 is inconsistent: a copy certainly exists.
        let spec = illinois();
        let comp = Composite::new(
            vec![
                (ckey(&spec, "Dirty"), Rep::One),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::V1,
        );
        assert!(internalize(&spec, &comp).is_empty());
    }

    #[test]
    fn emit_splits_by_category() {
        // Shared=[1,∞), Inv=[1,∞): categories v2 (exactly one Shared)
        // and v3 (two or more) are both feasible.
        let spec = illinois();
        let istate = IState::new(
            vec![
                (ckey(&spec, "Shared"), Interval::at_least(1)),
                (ClassKey::invalid(), Interval::at_least(1)),
            ],
            MData::Fresh,
        );
        let out = emit(&spec, &istate);
        assert_eq!(out.len(), 2);
        let v2 = out.iter().find(|c| c.f == FVal::V2).expect("v2 branch");
        let v3 = out.iter().find(|c| c.f == FVal::V3).expect("v3 branch");
        // v2 branch is tightened to the paper's s4 = (Shared, Inv⁺).
        assert_eq!(v2.rep_of(ckey(&spec, "Shared")), Rep::One);
        assert_eq!(v2.rep_of(ClassKey::invalid()), Rep::Plus);
        // v3 branch is (Shared⁺, Inv⁺).
        assert_eq!(v3.rep_of(ckey(&spec, "Shared")), Rep::Plus);
    }

    #[test]
    fn emit_exact_two_is_v3_plus() {
        let spec = illinois();
        let istate = IState::new(
            vec![
                (ckey(&spec, "Shared"), Interval::exact(2)),
                (ClassKey::invalid(), Interval::at_least(0)),
            ],
            MData::Fresh,
        );
        let out = emit(&spec, &istate);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].f, FVal::V3);
        assert_eq!(out[0].rep_of(ckey(&spec, "Shared")), Rep::Plus);
        assert_eq!(out[0].rep_of(ClassKey::invalid()), Rep::Star);
    }

    #[test]
    fn emit_null_characteristic_is_single() {
        let spec = msi();
        let istate = IState::new(
            vec![
                (ckey(&spec, "Shared"), Interval::at_least(1)),
                (ClassKey::invalid(), Interval::at_least(0)),
            ],
            MData::Fresh,
        );
        let out = emit(&spec, &istate);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].f, FVal::Null);
        assert_eq!(out[0].rep_of(ckey(&spec, "Shared")), Rep::Plus);
    }

    #[test]
    fn istate_set_get_roundtrip() {
        let spec = illinois();
        let mut s = IState::new(vec![], MData::Fresh);
        let k = ckey(&spec, "Dirty");
        assert_eq!(s.get(k), Interval::ZERO);
        s.set(k, Interval::exact(1));
        assert_eq!(s.get(k), Interval::exact(1));
        s.add_one(k);
        assert_eq!(s.get(k), Interval::exact(2));
        s.set(k, Interval::ZERO);
        assert_eq!(s.classes().len(), 0);
        s.merge_into(k, Interval::at_least(1));
        assert_eq!(s.get(k), Interval::at_least(1));
    }

    #[test]
    fn istate_set_keeps_classes_sorted() {
        let spec = illinois();
        let mut s = IState::empty(MData::Fresh);
        s.set(ckey(&spec, "Dirty"), Interval::exact(1));
        s.set(ClassKey::invalid(), Interval::at_least(0));
        s.set(ckey(&spec, "Shared"), Interval::at_least(1));
        s.set(ClassKey::invalid(), Interval::at_least(2));
        assert!(s.classes().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(s.get(ClassKey::invalid()), Interval::at_least(2));
    }

    #[test]
    fn total_valid_ignores_invalid_class() {
        let spec = illinois();
        let s = IState::new(
            vec![
                (ckey(&spec, "Shared"), Interval::exact(1)),
                (ckey(&spec, "Dirty"), Interval::at_least(0)),
                (ClassKey::invalid(), Interval::at_least(5)),
            ],
            MData::Fresh,
        );
        assert_eq!(s.total_valid(&spec), (1, true));
    }
}
