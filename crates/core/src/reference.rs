//! The retained naive worklist engine — differential-test oracle.
//!
//! This is the pre-refactor expansion loop, transcribed verbatim from
//! the engine as it stood before the interned-arena/containment-index
//! rearchitecture: successors are generated through the allocating
//! [`successors`] wrapper, every containment question is answered by a
//! linear scan over all nodes with the full Definition-9 check, and
//! states are stored as owned [`Composite`] clones until the very end,
//! when the result is repackaged into an [`Expansion`] by interning
//! each node's state in node order.
//!
//! It exists for two reasons:
//!
//! * the differential property tests (`tests/engine_properties.rs`)
//!   run it against the indexed engine on every protocol and pruning
//!   mode and require identical essential-state sets, verdicts and
//!   counterexample reachability;
//! * the benchmark suite uses it as the in-snapshot pre-refactor
//!   baseline that the indexed engine's speedup is measured against.
//!
//! Keep this module boring. Do not "fix" or optimise it alongside the
//! main engine — its value is that it stays the naive algorithm.

use crate::check::check;
use crate::composite::Composite;
use crate::engine::{
    Disposition, ErrorFinding, Expansion, Node, NodeId, Options, Pruning, VisitRecord,
};
use crate::expand::successors;
use crate::intern::CompositeArena;
use ccv_observe::{StopCause, StopInfo};
use std::collections::VecDeque;

/// Naive-engine node: the owned-composite representation the engine
/// used before states moved into the arena.
struct RefNode {
    state: Composite,
    parent: Option<(NodeId, crate::expand::Label)>,
    violations: Vec<crate::check::Violation>,
    pruned: bool,
}

/// Runs the naive worklist on `spec` from the paper's initial state.
pub fn reference_expand(spec: &ccv_model::ProtocolSpec, opts: &Options) -> Expansion {
    reference_expand_from(spec, Composite::initial(spec), opts)
}

/// Runs the naive worklist from an explicit initial composite state.
///
/// Results (essential states, visit counts, error findings, trace) are
/// bit-identical to what the pre-refactor engine produced; only the
/// final packaging interns states so the return type matches today's
/// [`Expansion`]. No observability events are emitted — the oracle is
/// deliberately silent so sinks attached to `opts` see only the real
/// engine.
pub fn reference_expand_from(
    spec: &ccv_model::ProtocolSpec,
    initial: Composite,
    opts: &Options,
) -> Expansion {
    let mut nodes: Vec<RefNode> = Vec::new();
    let mut work: VecDeque<NodeId> = VecDeque::new();
    let mut history: Vec<NodeId> = Vec::new();
    let mut errors: Vec<ErrorFinding> = Vec::new();
    let mut trace: Vec<VisitRecord> = Vec::new();
    let mut visits = 0usize;
    let mut successors_generated = 0usize;
    let mut expanded = 0usize;
    let mut truncated = false;

    let init_violations = check(spec, &initial);
    nodes.push(RefNode {
        state: initial,
        parent: None,
        violations: init_violations.clone(),
        pruned: false,
    });
    if !init_violations.is_empty() {
        errors.push(ErrorFinding {
            node: NodeId(0),
            violations: init_violations,
            step_errors: Vec::new(),
        });
    }
    work.push_back(NodeId(0));

    let contained = |a: &Composite, b: &Composite, pruning: Pruning| match pruning {
        Pruning::Containment => a.contained_in(b),
        Pruning::Equality => a == b,
    };

    'outer: while let Some(current) = work.pop_front() {
        if nodes[current.0].pruned {
            continue;
        }
        expanded += 1;
        let current_state = nodes[current.0].state.clone();
        let succs = successors(spec, &current_state);
        let mut fired: Vec<crate::expand::Label> = Vec::new();
        for t in succs {
            successors_generated += 1;
            if !fired.contains(&t.label) {
                fired.push(t.label);
                visits += 1;
            }
            if visits >= opts.common.budget {
                truncated = true;
                break 'outer;
            }

            let container_exists = nodes
                .iter()
                .any(|n| !n.pruned && contained(&t.to, &n.state, opts.pruning));

            if opts.record_trace {
                trace.push(VisitRecord {
                    from: current_state.clone(),
                    label: t.label,
                    to: t.to.clone(),
                    disposition: if container_exists {
                        Disposition::Contained
                    } else {
                        Disposition::New
                    },
                });
            }

            if container_exists {
                if !t.errors.is_empty() {
                    let id = NodeId(nodes.len());
                    let violations = check(spec, &t.to);
                    nodes.push(RefNode {
                        state: t.to,
                        parent: Some((current, t.label)),
                        violations: violations.clone(),
                        pruned: true,
                    });
                    errors.push(ErrorFinding {
                        node: id,
                        violations,
                        step_errors: t.errors.to_vec(),
                    });
                    if opts.common.stop_at_first_error {
                        break 'outer;
                    }
                }
                continue;
            }

            let id = NodeId(nodes.len());
            let violations = check(spec, &t.to);
            for n in nodes.iter_mut() {
                if !n.pruned && contained(&n.state, &t.to, opts.pruning) {
                    n.pruned = true;
                }
            }
            nodes.push(RefNode {
                state: t.to,
                parent: Some((current, t.label)),
                violations: violations.clone(),
                pruned: false,
            });
            if !violations.is_empty() || !t.errors.is_empty() {
                errors.push(ErrorFinding {
                    node: id,
                    violations,
                    step_errors: t.errors.to_vec(),
                });
                if opts.common.stop_at_first_error {
                    break 'outer;
                }
            }
            work.push_back(id);
        }
        if !nodes[current.0].pruned {
            history.push(current);
        }
    }

    let essential: Vec<NodeId> = history
        .into_iter()
        .filter(|id| !nodes[id.0].pruned)
        .collect();

    // Repackage into today's arena-backed Expansion: intern each
    // node's state in node order. Duplicate composites collapse to one
    // arena entry, which is exactly what `Expansion::composite` needs.
    let mut arena = CompositeArena::new();
    let nodes: Vec<Node> = nodes
        .into_iter()
        .map(|n| Node {
            state: arena.intern(&n.state),
            parent: n.parent,
            violations: n.violations,
            pruned: n.pruned,
        })
        .collect();

    let stopped = truncated.then(|| {
        StopInfo::new(
            StopCause::BudgetExhausted,
            work.len(),
            std::time::Duration::ZERO,
        )
    });
    Expansion {
        arena,
        nodes,
        essential,
        visits,
        successors: successors_generated,
        expanded,
        errors,
        trace,
        truncated,
        stopped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::expand;
    use ccv_model::protocols::{illinois, illinois_missing_invalidation};

    #[test]
    fn reference_reproduces_the_paper_numbers() {
        let spec = illinois();
        let exp = reference_expand(&spec, &Options::default());
        assert!(exp.is_clean());
        assert_eq!(exp.visits, 22);
        assert_eq!(exp.essential.len(), 5);
    }

    #[test]
    fn reference_agrees_with_the_indexed_engine_on_illinois() {
        let spec = illinois();
        let opts = Options::default();
        let naive = reference_expand(&spec, &opts);
        let fast = expand(&spec, &opts);
        assert_eq!(naive.visits, fast.visits);
        assert_eq!(naive.successors, fast.successors);
        let render = |e: &Expansion| {
            let mut v: Vec<String> = e
                .essential_states()
                .iter()
                .map(|c| c.render(&spec))
                .collect();
            v.sort();
            v
        };
        assert_eq!(render(&naive), render(&fast));
    }

    #[test]
    fn reference_finds_the_seeded_bug() {
        let spec = illinois_missing_invalidation();
        let exp = reference_expand(&spec, &Options::default());
        assert!(!exp.errors.is_empty());
        let path = exp.render_path(&spec, exp.errors[0].node);
        assert!(path.contains("-->"));
    }
}
