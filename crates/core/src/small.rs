//! A safe inline small-vector for `Copy` element types.
//!
//! Composite and interval states hold at most `2 × |valid states| + 1`
//! classes — at most eleven for the richest shipped protocol (MOESI) —
//! yet the pre-refactor representation stored them in a heap `Vec`,
//! making every state clone an allocation. [`InlineVec`] keeps up to
//! `N` elements inline (on the stack or inside the owning struct) and
//! spills to a heap `Vec` only beyond that, so cloning a typical state
//! is a fixed-size `memcpy` and the symbolic hot loop runs
//! allocation-free once its scratch buffers are warm.
//!
//! The crate forbids `unsafe`, so the inline buffer is a plain
//! `[T; N]` of `Default` values with an explicit length — no
//! `MaybeUninit` tricks. Equality and hashing go through the active
//! slice, so a spilled vector compares equal to an inline one with the
//! same contents.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::ops::{Deref, DerefMut};

#[derive(Clone)]
enum Repr<T, const N: usize> {
    Inline { buf: [T; N], len: u8 },
    Heap(Vec<T>),
}

/// A vector storing up to `N` elements inline, spilling to the heap
/// past that. See the module docs for the rationale.
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    repr: Repr<T, N>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (inline, no allocation).
    pub fn new() -> InlineVec<T, N> {
        InlineVec {
            repr: Repr::Inline {
                buf: [T::default(); N],
                len: 0,
            },
        }
    }

    /// An inline copy of `slice` (spilled if it exceeds `N`).
    pub fn from_slice(slice: &[T]) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        for &x in slice {
            v.push(x);
        }
        v
    }

    /// The active elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..*len as usize],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The active elements, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { buf, len } => &mut buf[..*len as usize],
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Appends an element, spilling to the heap when the inline buffer
    /// is full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if (*len as usize) < N {
                    buf[*len as usize] = value;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(N * 2);
                    heap.extend_from_slice(&buf[..]);
                    heap.push(value);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Inserts `value` at `index`, shifting later elements right.
    ///
    /// # Panics
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = *len as usize;
                assert!(index <= n, "insert index {index} out of bounds ({n})");
                if n < N {
                    buf.copy_within(index..n, index + 1);
                    buf[index] = value;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(N * 2);
                    heap.extend_from_slice(&buf[..]);
                    heap.insert(index, value);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(v) => v.insert(index, value),
        }
    }

    /// Removes and returns the element at `index`, shifting later
    /// elements left.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn remove(&mut self, index: usize) -> T {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = *len as usize;
                assert!(index < n, "remove index {index} out of bounds ({n})");
                let value = buf[index];
                buf.copy_within(index + 1..n, index);
                *len -= 1;
                value
            }
            Repr::Heap(v) => v.remove(index),
        }
    }

    /// Keeps only the elements for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = *len as usize;
                let mut write = 0usize;
                for read in 0..n {
                    if keep(&buf[read]) {
                        buf[write] = buf[read];
                        write += 1;
                    }
                }
                *len = write as u8;
            }
            Repr::Heap(v) => v.retain(keep),
        }
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Number of active elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True iff no element is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap capacity in elements (`0` while the vector is inline) —
    /// lets owners estimate their true memory footprint.
    pub fn heap_capacity(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => 0,
            Repr::Heap(v) => v.capacity(),
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u32, 4>;

    #[test]
    fn push_and_read_inline() {
        let mut v = V::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_slice(), &[7, 9]);
        assert_eq!(v.heap_capacity(), 0);
    }

    #[test]
    fn spills_past_capacity_and_keeps_contents() {
        let mut v = V::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(v.heap_capacity() >= 10);
    }

    #[test]
    fn spilled_equals_inline_with_same_contents() {
        let mut a = V::new();
        for i in 0..10 {
            a.push(i);
        }
        a.retain(|&x| x < 3);
        let b = V::from_slice(&[0, 1, 2]);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher as _;
        let hash = |v: &V| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn insert_and_remove_inline_and_spilled() {
        let mut v = V::from_slice(&[1, 3]);
        v.insert(1, 2);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.remove(0), 1);
        assert_eq!(v.as_slice(), &[2, 3]);

        // Insert at the boundary forces a spill.
        let mut w = V::from_slice(&[1, 2, 3, 4]);
        w.insert(2, 9);
        assert_eq!(w.as_slice(), &[1, 2, 9, 3, 4]);
        assert_eq!(w.remove(2), 9);
        assert_eq!(w.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn retain_compacts_in_place() {
        let mut v = V::from_slice(&[1, 2, 3, 4]);
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.as_slice(), &[2, 4]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn slice_methods_work_through_deref() {
        let mut v = V::from_slice(&[3, 1, 2]);
        v.sort_unstable();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.iter().sum::<u32>(), 6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
