//! Permissibility checks: erroneous-state detection.
//!
//! The paper identifies two ways a reachable global state can be
//! erroneous:
//!
//! 1. **Structural contradictions** (§2.1): the semantic
//!    interpretations of the cache states contradict each other —
//!    e.g. several caches in a `Dirty` state, or a `Shared` copy
//!    coexisting with a `Dirty` copy. Rather than hard-coding the
//!    Illinois cases, we derive them from the state attributes: an
//!    `exclusive` state admits no other copy; at most one `owned` copy
//!    may exist.
//! 2. **Data inconsistencies** (Definition 3): a processor can access
//!    an obsolete value. The augmented context variables make this a
//!    state predicate: some class holds a readable copy with
//!    `cdata = obsolete`. (Stale accesses *during* a transition are
//!    additionally reported as [`crate::expand::StepError`]s.)
//!
//! Checks run over the internalised interval branches so that
//! category information is taken into account exactly: a state is
//! flagged iff its concrete family contains an erroneous member.

use crate::composite::{ClassKey, Composite};
use crate::istate::internalize;
use ccv_model::{CData, ProtocolSpec, StateId};
use core::fmt;

/// A way in which a composite state is erroneous.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Violation {
    /// Two or more caches may simultaneously be in an exclusive state.
    MultipleExclusive {
        /// The exclusive state.
        state: StateId,
    },
    /// A cache in an exclusive state may coexist with another copy.
    ExclusiveWithCopy {
        /// The exclusive state.
        state: StateId,
        /// The state of the coexisting copy.
        other: StateId,
    },
    /// Two or more owned copies may exist.
    MultipleOwners {
        /// One owned state involved.
        a: StateId,
        /// The other owned state (equal to `a` when one class admits
        /// two owners).
        b: StateId,
    },
    /// A readable copy may hold an obsolete value.
    ReadableStale {
        /// The state of the stale copy.
        state: StateId,
    },
}

impl Violation {
    /// Human-readable description with protocol state names.
    pub fn describe(&self, spec: &ProtocolSpec) -> String {
        match *self {
            Violation::MultipleExclusive { state } => format!(
                "multiple caches in exclusive state {}",
                spec.state(state).name
            ),
            Violation::ExclusiveWithCopy { state, other } => format!(
                "exclusive state {} coexists with a copy in state {}",
                spec.state(state).name,
                spec.state(other).name
            ),
            Violation::MultipleOwners { a, b } => format!(
                "multiple owned copies ({} and {})",
                spec.state(a).name,
                spec.state(b).name
            ),
            Violation::ReadableStale { state } => {
                format!("readable obsolete copy in state {}", spec.state(state).name)
            }
        }
    }

    /// True for the structural (state-interpretation) violations of
    /// §2.1, false for the data violations of Definition 3.
    pub fn is_structural(&self) -> bool {
        !matches!(self, Violation::ReadableStale { .. })
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::MultipleExclusive { state } => {
                write!(f, "multiple caches in exclusive state q{}", state.0)
            }
            Violation::ExclusiveWithCopy { state, other } => write!(
                f,
                "exclusive state q{} coexists with a copy in q{}",
                state.0, other.0
            ),
            Violation::MultipleOwners { a, b } => {
                write!(f, "multiple owned copies (q{} and q{})", a.0, b.0)
            }
            Violation::ReadableStale { state } => {
                write!(f, "readable obsolete copy in state q{}", state.0)
            }
        }
    }
}

/// Checks a composite state for erroneous members. Returns every
/// distinct violation; an empty result means the state is permissible.
pub fn check(spec: &ProtocolSpec, comp: &Composite) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let push = |v: Violation, out: &mut Vec<Violation>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };

    for branch in internalize(spec, comp) {
        let classes: Vec<(ClassKey, _)> = branch.classes().to_vec();

        for (i, &(k, iv)) in classes.iter().enumerate() {
            let attrs = spec.attrs(k.state);
            if !attrs.holds_copy || !iv.may_be_nonempty() {
                continue;
            }

            // Data inconsistency: a readable obsolete copy. A copy
            // held by a *transient* (stalled) cache is not readable —
            // the processor is blocked on the pending transaction — so
            // staleness in flight is not itself a violation.
            if k.cdata == CData::Obsolete && !spec.is_transient(k.state) {
                push(Violation::ReadableStale { state: k.state }, &mut out);
            }

            // Exclusivity.
            if attrs.exclusive {
                if iv.may_have_two() {
                    push(Violation::MultipleExclusive { state: k.state }, &mut out);
                }
                for &(k2, iv2) in &classes {
                    if k2 == k || !spec.attrs(k2.state).holds_copy {
                        continue;
                    }
                    if iv2.may_be_nonempty() {
                        push(
                            Violation::ExclusiveWithCopy {
                                state: k.state,
                                other: k2.state,
                            },
                            &mut out,
                        );
                    }
                }
            }

            // Ownership.
            if attrs.owned {
                if iv.may_have_two() {
                    push(
                        Violation::MultipleOwners {
                            a: k.state,
                            b: k.state,
                        },
                        &mut out,
                    );
                }
                for &(k2, iv2) in &classes[i + 1..] {
                    if k2 != k && spec.attrs(k2.state).owned && iv2.may_be_nonempty() {
                        push(
                            Violation::MultipleOwners {
                                a: k.state,
                                b: k2.state,
                            },
                            &mut out,
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fval::FVal;
    use crate::rep::Rep;
    use ccv_model::protocols::{berkeley, illinois};
    use ccv_model::MData;

    fn ck(spec: &ProtocolSpec, name: &str) -> ClassKey {
        let s = spec.state_by_name(name).unwrap();
        if s == StateId::INVALID {
            ClassKey::invalid()
        } else {
            ClassKey::fresh(s)
        }
    }

    #[test]
    fn paper_essential_states_are_permissible() {
        let spec = illinois();
        let states = [
            Composite::new(
                vec![(ClassKey::invalid(), Rep::Plus)],
                MData::Fresh,
                FVal::V1,
            ),
            Composite::new(
                vec![
                    (ck(&spec, "V-Ex"), Rep::One),
                    (ClassKey::invalid(), Rep::Star),
                ],
                MData::Fresh,
                FVal::V2,
            ),
            Composite::new(
                vec![
                    (ck(&spec, "Dirty"), Rep::One),
                    (ClassKey::invalid(), Rep::Star),
                ],
                MData::Obsolete,
                FVal::V2,
            ),
            Composite::new(
                vec![
                    (ck(&spec, "Shared"), Rep::Plus),
                    (ClassKey::invalid(), Rep::Star),
                ],
                MData::Fresh,
                FVal::V3,
            ),
            Composite::new(
                vec![
                    (ck(&spec, "Shared"), Rep::One),
                    (ClassKey::invalid(), Rep::Plus),
                ],
                MData::Fresh,
                FVal::V2,
            ),
        ];
        for s in &states {
            assert!(check(&spec, s).is_empty(), "{} flagged", s.render(&spec));
        }
    }

    #[test]
    fn dirty_with_shared_is_structural_violation() {
        let spec = illinois();
        let bad = Composite::new(
            vec![
                (ck(&spec, "Dirty"), Rep::One),
                (ck(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::V3,
        );
        let vs = check(&spec, &bad);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::ExclusiveWithCopy { .. })));
        assert!(vs
            .iter()
            .all(|v| v.is_structural() || matches!(v, Violation::ReadableStale { .. })));
    }

    #[test]
    fn dirty_plus_is_multiple_exclusive() {
        let spec = illinois();
        let bad = Composite::new(
            vec![
                (ck(&spec, "Dirty"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::V3,
        );
        let vs = check(&spec, &bad);
        assert!(vs.contains(&Violation::MultipleExclusive {
            state: spec.state_by_name("Dirty").unwrap()
        }));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MultipleOwners { .. })));
    }

    #[test]
    fn dirty_plus_with_v2_category_is_permissible() {
        // f = v2 caps the family at one copy, so (Dirty⁺, Inv*) v2
        // denotes only single-Dirty systems — no violation.
        let spec = illinois();
        let ok = Composite::new(
            vec![
                (ck(&spec, "Dirty"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::V2,
        );
        assert!(check(&spec, &ok).is_empty());
    }

    #[test]
    fn readable_stale_copy_is_a_data_violation() {
        let spec = illinois();
        let bad = Composite::new(
            vec![
                (
                    ClassKey::obsolete(spec.state_by_name("Shared").unwrap()),
                    Rep::One,
                ),
                (ClassKey::invalid(), Rep::Plus),
            ],
            MData::Fresh,
            FVal::V2,
        );
        let vs = check(&spec, &bad);
        assert_eq!(vs.len(), 1);
        assert!(!vs[0].is_structural());
        assert!(matches!(vs[0], Violation::ReadableStale { .. }));
    }

    #[test]
    fn berkeley_shared_owner_with_readers_is_permissible() {
        // Berkeley's whole point: an owned copy may be replicated.
        let spec = berkeley();
        let ok = Composite::new(
            vec![
                (ck(&spec, "Shared-Dirty"), Rep::One),
                (ck(&spec, "V"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::Null,
        );
        assert!(check(&spec, &ok).is_empty());
    }

    #[test]
    fn berkeley_two_owners_is_violation() {
        let spec = berkeley();
        let bad = Composite::new(
            vec![
                (ck(&spec, "Shared-Dirty"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::Null,
        );
        let vs = check(&spec, &bad);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MultipleOwners { .. })));
    }

    #[test]
    fn descriptions_use_state_names() {
        let spec = illinois();
        let v = Violation::MultipleExclusive {
            state: spec.state_by_name("Dirty").unwrap(),
        };
        assert!(v.describe(&spec).contains("Dirty"));
    }
}
