//! The characteristic-function value attached to composite states.
//!
//! Appendix A.1 of the paper observes that for the *sharing-detection*
//! characteristic function, the vector `F(S) = (f₁, …, fₙ)` of a
//! composite state takes one of exactly three shapes:
//!
//! * `v1 = (false, …, false)` — no cached copy exists;
//! * `v2 = (true, …, true, false)` — exactly one cached copy exists
//!   (every cache sees sharing except the holder);
//! * `v3 = (true, …, true)` — two or more cached copies exist.
//!
//! So the value of `F` is fully determined by the *copy-count
//! category*: exactly 0, exactly 1, or at least 2 valid copies.
//! Containment (Definition 9) requires equal `F`, i.e. equal category;
//! this is what distinguishes the paper's states `s3 = (Shared⁺, Inv*)`
//! (`F = v3`) and `s4 = (Shared, Inv⁺)` (`F = v2`) even though `s4` is
//! structurally covered by `s3`.
//!
//! Protocols with the null characteristic function use [`FVal::Null`]
//! for every state, making containment collapse to structural covering
//! (Corollary 1).

use core::fmt;

/// The summarised characteristic-function value of a composite state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FVal {
    /// The protocol's characteristic function is null; `F` carries no
    /// information and containment is structural covering alone.
    Null,
    /// `v1`: no cached copy exists.
    V1,
    /// `v2`: exactly one cached copy exists.
    V2,
    /// `v3`: at least two cached copies exist.
    V3,
}

impl FVal {
    /// Minimum total number of valid copies consistent with the value.
    #[inline]
    pub fn min_copies(self) -> u32 {
        match self {
            FVal::Null | FVal::V1 => 0,
            FVal::V2 => 1,
            FVal::V3 => 2,
        }
    }

    /// Maximum total number of valid copies consistent with the value,
    /// or `None` for unbounded.
    #[inline]
    pub fn max_copies(self) -> Option<u32> {
        match self {
            FVal::V1 => Some(0),
            FVal::V2 => Some(1),
            FVal::Null | FVal::V3 => None,
        }
    }

    /// The three sharing-detection categories, in increasing copy-count
    /// order.
    pub const CATEGORIES: [FVal; 3] = [FVal::V1, FVal::V2, FVal::V3];
}

impl fmt::Display for FVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FVal::Null => f.write_str("-"),
            FVal::V1 => f.write_str("v1"),
            FVal::V2 => f.write_str("v2"),
            FVal::V3 => f.write_str("v3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_bounds() {
        assert_eq!(FVal::V1.min_copies(), 0);
        assert_eq!(FVal::V1.max_copies(), Some(0));
        assert_eq!(FVal::V2.min_copies(), 1);
        assert_eq!(FVal::V2.max_copies(), Some(1));
        assert_eq!(FVal::V3.min_copies(), 2);
        assert_eq!(FVal::V3.max_copies(), None);
        assert_eq!(FVal::Null.min_copies(), 0);
        assert_eq!(FVal::Null.max_copies(), None);
    }

    #[test]
    fn categories_are_ordered_and_disjoint() {
        let c = FVal::CATEGORIES;
        assert_eq!(c.len(), 3);
        for w in c.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Disjoint count ranges.
        assert!(FVal::V1.max_copies().unwrap() < FVal::V2.min_copies());
        assert!(FVal::V2.max_copies().unwrap() < FVal::V3.min_copies());
    }

    #[test]
    fn display() {
        assert_eq!(FVal::V1.to_string(), "v1");
        assert_eq!(FVal::Null.to_string(), "-");
    }
}
