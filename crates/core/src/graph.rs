//! The global transition diagram over essential states (Figure 4).
//!
//! After the worklist reaches its fixpoint, every successor of an
//! essential state is contained in some essential state (Theorem 1), so
//! the essential states form the vertices of a finite *global FSM*
//! whose edges are the symbolic transitions. The paper presents this
//! diagram for the Illinois protocol in Figure 4; [`global_graph`]
//! reconstructs it for any protocol, and [`GlobalGraph::to_dot`]
//! renders Graphviz for inspection.

use crate::composite::Composite;
use crate::engine::Expansion;
use crate::expand::successors;
use ccv_model::ProtocolSpec;

/// An edge of the global transition diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphEdge {
    /// Index of the source essential state.
    pub from: usize,
    /// Paper-style transition label (e.g. `R_inv`).
    pub label: String,
    /// Index of the essential state containing the successor.
    pub to: usize,
}

/// The global transition diagram of a verified protocol.
#[derive(Clone, Debug)]
pub struct GlobalGraph {
    /// The essential states (vertices), in discovery order.
    pub states: Vec<Composite>,
    /// Deduplicated labelled edges.
    pub edges: Vec<GraphEdge>,
}

impl GlobalGraph {
    /// Renders the diagram in Graphviz DOT syntax, with states in the
    /// paper's notation and the characteristic-function value and
    /// memory freshness shown per node.
    pub fn to_dot(&self, spec: &ProtocolSpec) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", spec.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
        for (i, s) in self.states.iter().enumerate() {
            let _ = writeln!(
                out,
                "  s{} [label=\"s{}: {}\\nF={} mdata={}\"];",
                i,
                i,
                s.render(spec).replace('"', "'"),
                s.f,
                s.mdata
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", e.from, e.to, e.label);
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Number of vertices.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Edges grouped as `(from, to) -> labels`, useful for compact
    /// printing.
    pub fn grouped_edges(&self) -> Vec<(usize, usize, Vec<String>)> {
        let mut grouped: Vec<(usize, usize, Vec<String>)> = Vec::new();
        for e in &self.edges {
            if let Some(g) = grouped
                .iter_mut()
                .find(|(f, t, _)| *f == e.from && *t == e.to)
            {
                if !g.2.contains(&e.label) {
                    g.2.push(e.label.clone());
                }
            } else {
                grouped.push((e.from, e.to, vec![e.label.clone()]));
            }
        }
        grouped
    }
}

/// Builds the global transition diagram from a completed expansion:
/// each essential state is re-expanded once and every successor is
/// mapped to the essential state that contains it.
pub fn global_graph(spec: &ProtocolSpec, expansion: &Expansion) -> GlobalGraph {
    let states: Vec<Composite> = expansion.essential_states().into_iter().cloned().collect();
    let mut edges: Vec<GraphEdge> = Vec::new();
    for (i, s) in states.iter().enumerate() {
        for t in successors(spec, s) {
            let Some(j) = states.iter().position(|e| t.to.contained_in(e)) else {
                // Only a run cut short (visit cap, stop-at-first-error)
                // may leave a successor of a survivor uncovered.
                debug_assert!(
                    expansion.truncated || !expansion.errors.is_empty(),
                    "fixpoint violated: successor {t:?} of essential state has no container"
                );
                continue;
            };
            let edge = GraphEdge {
                from: i,
                label: t.label.render(spec),
                to: j,
            };
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }
    }
    GlobalGraph { states, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{expand, Options};
    use ccv_model::protocols::illinois;

    fn illinois_graph() -> (ccv_model::ProtocolSpec, GlobalGraph) {
        let spec = illinois();
        let exp = expand(&spec, &Options::default());
        let g = global_graph(&spec, &exp);
        (spec, g)
    }

    #[test]
    fn illinois_graph_has_five_states() {
        let (_, g) = illinois_graph();
        assert_eq!(g.num_states(), 5);
        assert!(!g.edges.is_empty());
    }

    #[test]
    fn every_edge_endpoint_is_a_vertex() {
        let (_, g) = illinois_graph();
        for e in &g.edges {
            assert!(e.from < g.num_states());
            assert!(e.to < g.num_states());
        }
    }

    #[test]
    fn figure_4_key_edges_present() {
        // Spot-check edges the paper draws: (Inv⁺) --R_inv--> (V-Ex,Inv*),
        // (V-Ex,Inv*) --W_v-ex--> (Dirty,Inv*), (Dirty,Inv*) --Z_dirty--> (Inv⁺).
        let (spec, g) = illinois_graph();
        let idx = |name: &str| {
            g.states
                .iter()
                .position(|s| s.render(&spec) == name)
                .unwrap_or_else(|| panic!("state {name} missing"))
        };
        let has = |from: &str, label: &str, to: &str| {
            let (f, t) = (idx(from), idx(to));
            g.edges
                .iter()
                .any(|e| e.from == f && e.to == t && e.label == label)
        };
        assert!(has("(Inv+)", "R_inv", "(V-Ex, Inv*)"));
        assert!(has("(Inv+)", "W_inv", "(Dirty, Inv*)"));
        assert!(has("(V-Ex, Inv*)", "W_v-ex", "(Dirty, Inv*)"));
        assert!(has("(Dirty, Inv*)", "Z_dirty", "(Inv+)"));
        assert!(has("(Dirty, Inv*)", "R_inv", "(Shared+, Inv*)"));
        assert!(has("(Shared+, Inv*)", "W_shared", "(Dirty, Inv*)"));
        assert!(has("(Shared+, Inv*)", "Z_shared", "(Shared, Inv+)"));
        assert!(has("(Shared, Inv+)", "Z_shared", "(Inv+)"));
        assert!(has("(Shared, Inv+)", "W_shared", "(Dirty, Inv*)"));
        assert!(has("(Shared, Inv+)", "R_inv", "(Shared+, Inv*)"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (spec, g) = illinois_graph();
        let dot = g.to_dot(&spec);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), g.edges.len());
    }

    #[test]
    fn grouped_edges_cover_all_edges() {
        let (_, g) = illinois_graph();
        let grouped = g.grouped_edges();
        let total: usize = grouped.iter().map(|(_, _, ls)| ls.len()).sum();
        assert_eq!(total, g.edges.len());
    }
}
