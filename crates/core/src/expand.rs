//! One-step symbolic expansion of composite states.
//!
//! Implements the expansion rules of §3.2.3 over the interval
//! representation:
//!
//! * **Rule 2 (coincident transitions)** — the bus transaction emitted
//!   by the originator is snooped by every other class, which moves to
//!   its snoop target *as a class* (the interval is carried over and
//!   merged into the target, realising the aggregation rules of
//!   Rule 1).
//! * **Rule 3 (one-step transitions)** — the originator leaves its
//!   class (interval minus one) and arrives in the outcome state
//!   (interval plus one).
//! * **Rule 4 (N-step transitions)** — not needed as an explicit rule:
//!   exact interval arithmetic plus the per-category emission of
//!   [`crate::istate::emit`] generates precisely the intermediate and
//!   terminal states rules 4(a)/4(b) enumerate, one worklist step at a
//!   time (see `DESIGN.md` §3.2).
//!
//! The paper's `/`-or-selections (which cache supplies the block,
//! whether an owner exists, whether a flush precedes the fill) become
//! explicit **branches**: each branch conditions the relevant class
//! nonempty/empty and yields its own successor family. Data-consistency
//! bookkeeping (Definitions 3–4) is threaded through every branch;
//! stale accesses are recorded in a copyable [`StepErrors`] mask and
//! materialised into [`StepError`] values only when a violation is
//! actually reported.
//!
//! The hot entry point is [`successors_into`], which writes transitions
//! into a caller-owned buffer and keeps every intermediate branch list
//! in a reusable [`ExpandScratch`], so steady-state expansion performs
//! no allocation. [`successors`] is the allocating convenience wrapper.

use crate::composite::{ClassKey, Composite};
use crate::istate::{emit_into, internalize_into, IState, KeyList};
use ccv_model::{CData, DataOp, GlobalCtx, MData, Outcome, ProcEvent, ProtocolSpec, StateId};
use core::fmt;

/// Identifies a symbolic transition: which class originated it, under
/// which event and observed global context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label {
    /// Class of the originating cache.
    pub origin: ClassKey,
    /// The processor event.
    pub event: ProcEvent,
    /// The global context the originator observed.
    pub ctx: GlobalCtx,
}

impl Label {
    /// Paper-style rendering, e.g. `R_inv`, `W_shared`, `Z_dirty`
    /// (Fig. 4 uses an optional subscript naming the originator state).
    pub fn render(&self, spec: &ProtocolSpec) -> String {
        let short = spec.state(self.origin.state).short.to_ascii_lowercase();
        let marker = if self.origin.cdata == CData::Obsolete {
            "!"
        } else {
            ""
        };
        format!("{}_{}{}", self.event.label(), short, marker)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_q{}", self.event.label(), self.origin.state.0)
    }
}

/// A data-consistency error observed while applying a transition
/// (Definition 3: a load must return the latest stored value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepError {
    /// The local processor read a copy holding an obsolete value.
    StaleReadHit,
    /// A miss was filled from an obsolete source (stale memory or a
    /// stale cached copy).
    StaleFill,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::StaleReadHit => f.write_str("processor read an obsolete local copy"),
            StepError::StaleFill => f.write_str("miss filled from an obsolete source"),
        }
    }
}

/// A packed set of [`StepError`]s for one transition.
///
/// Almost every transition is error-free, so the error set travels as a
/// `Copy` bitmask and [`StepError`] values are materialised (via
/// [`StepErrors::iter`]/[`StepErrors::to_vec`]) only when a violation
/// is reported — the symbolic mirror of the enumerative engine's
/// `ErrorMask`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StepErrors(u8);

impl StepErrors {
    /// The empty set.
    pub const EMPTY: StepErrors = StepErrors(0);

    #[inline]
    fn bit(err: StepError) -> u8 {
        match err {
            StepError::StaleReadHit => 1,
            StepError::StaleFill => 2,
        }
    }

    /// Adds `err` to the set.
    #[inline]
    pub fn insert(&mut self, err: StepError) {
        self.0 |= Self::bit(err);
    }

    /// True iff `err` is in the set.
    #[inline]
    pub fn contains(self, err: StepError) -> bool {
        self.0 & Self::bit(err) != 0
    }

    /// True iff no error has been recorded.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of recorded errors.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the recorded errors in declaration order.
    pub fn iter(self) -> impl Iterator<Item = StepError> {
        [StepError::StaleReadHit, StepError::StaleFill]
            .into_iter()
            .filter(move |&e| self.contains(e))
    }

    /// Materialises the set into owned [`StepError`] values.
    pub fn to_vec(self) -> Vec<StepError> {
        self.iter().collect()
    }
}

impl fmt::Debug for StepErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// One symbolic successor: the transition label, the canonical
/// successor state, and any data errors observed *during* the step.
#[derive(Clone, Debug)]
pub struct Transition {
    /// What happened.
    pub label: Label,
    /// Where the system family went.
    pub to: Composite,
    /// Stale accesses observed while applying the step.
    pub errors: StepErrors,
}

/// A resolved data-movement scenario: the refined rest-of-system (with
/// memory freshness updated by any flush) and, for fills, the freshness
/// of the chosen source.
#[derive(Clone, Debug)]
struct DataBranch {
    rest: IState,
    fill_cd: Option<CData>,
}

/// Reusable intermediate buffers for [`successors_into`]. One scratch
/// per engine: after the first few expansion steps every buffer has
/// reached its high-water capacity and successor generation allocates
/// nothing.
#[derive(Debug, Default)]
pub struct ExpandScratch {
    pre: Vec<IState>,
    sharing: Vec<(bool, IState)>,
    ctx: Vec<(GlobalCtx, IState)>,
    flush: Vec<IState>,
    data: Vec<DataBranch>,
    cats: Vec<IState>,
    emit: Vec<Composite>,
}

impl ExpandScratch {
    /// Fresh (empty) scratch buffers.
    pub fn new() -> ExpandScratch {
        ExpandScratch::default()
    }
}

/// Computes every one-step symbolic successor of `comp`, writing them
/// into `out` (cleared first).
///
/// Every `(internalisation branch, originator class, event, context
/// branch, data branch, emission category)` combination yields one
/// [`Transition`]; the caller (the worklist engine) counts these as
/// *state visits* in the sense of §3.1.
pub fn successors_into(
    spec: &ProtocolSpec,
    comp: &Composite,
    scratch: &mut ExpandScratch,
    out: &mut Vec<Transition>,
) {
    out.clear();
    let ExpandScratch {
        pre,
        sharing,
        ctx,
        flush,
        data,
        cats,
        emit,
    } = scratch;
    internalize_into(spec, comp, pre);
    for pre_branch in pre.iter() {
        for ci in 0..pre_branch.classes().len() {
            let (key, iv) = pre_branch.classes()[ci];
            // A transient class is stalled on the bus: its processor
            // events are self-loops, and its only real stimulus is the
            // completion of the pending transaction.
            let events: &[ProcEvent] = if spec.is_transient(key.state) {
                &[ProcEvent::Complete]
            } else {
                &ProcEvent::ALL
            };
            for &event in events {
                // A replacement of an absent block is not a transition.
                if key.state.is_invalid() && event == ProcEvent::Replace {
                    continue;
                }
                let Some(orig_iv) = iv.condition_nonempty() else {
                    continue;
                };
                let mut rest = pre_branch.clone();
                rest.set(key, orig_iv.minus_one());
                context_branches_into(spec, &rest, key, event, sharing, ctx);
                for &(gctx, ref rest_ctx) in ctx.iter() {
                    let outc = spec.outcome(key.state, event, gctx);
                    let label = Label {
                        origin: key,
                        event,
                        ctx: gctx,
                    };
                    data_branches_into(spec, rest_ctx, &outc, flush, data);
                    for branch in data.iter() {
                        let (succ, errors) = apply(spec, branch, &outc, key);
                        emit_into(spec, &succ, cats, emit);
                        for canonical in emit.iter() {
                            out.push(Transition {
                                label,
                                to: canonical.clone(),
                                errors,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Allocating wrapper around [`successors_into`].
///
/// ```
/// use ccv_core::{successors, Composite};
/// use ccv_model::protocols;
///
/// let spec = protocols::illinois();
/// // From (Invalid⁺): a lone read fills Valid-Exclusive, a write
/// // fills Dirty — two successors (replacement of an absent block is
/// // not a transition).
/// let succ = successors(&spec, &Composite::initial(&spec));
/// assert_eq!(succ.len(), 2);
/// assert!(succ.iter().all(|t| t.errors.is_empty()));
/// ```
pub fn successors(spec: &ProtocolSpec, comp: &Composite) -> Vec<Transition> {
    let mut scratch = ExpandScratch::new();
    let mut out = Vec::new();
    successors_into(spec, comp, &mut scratch, &mut out);
    out
}

/// Evaluates the characteristic predicates over the rest of the system,
/// branching when a predicate is ambiguous *and* the protocol's outcome
/// actually depends on it. Writes into `out` (cleared first); `sharing`
/// is scratch space for the intermediate sharing-predicate branches.
fn context_branches_into(
    spec: &ProtocolSpec,
    rest: &IState,
    origin: ClassKey,
    event: ProcEvent,
    sharing: &mut Vec<(bool, IState)>,
    out: &mut Vec<(GlobalCtx, IState)>,
) {
    sharing.clear();
    out.clear();
    let alone = spec.outcome(origin.state, event, GlobalCtx::ALONE);
    let shared = spec.outcome(origin.state, event, GlobalCtx::SHARED_CLEAN);
    let owned = spec.outcome(origin.state, event, GlobalCtx::OWNED_ELSEWHERE);

    // Resolve the sharing predicate.
    let (lo, unbounded) = rest.total_valid(spec);
    if lo >= 1 {
        sharing.push((true, rest.clone()));
    } else if !unbounded {
        sharing.push((false, rest.clone()));
    } else if alone == shared && alone == owned {
        // Ambiguous but irrelevant: any context selects the same
        // outcome. (For sharing-detection protocols internalisation
        // makes the predicate exact, so this arm only serves
        // null-characteristic protocols, where it is irrelevant by
        // construction.)
        sharing.push((true, rest.clone()));
    } else {
        // Ambiguous and relevant: branch explicitly.
        let mut valid = KeyList::new();
        for &(k, _) in rest.classes() {
            if spec.attrs(k.state).holds_copy {
                valid.push(k);
            }
        }
        let mut empty = rest.clone();
        let mut feasible = true;
        for &k in &valid {
            match empty.condition_empty(k) {
                Some(next) => empty = next,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            sharing.push((false, empty));
        }
        for &k in &valid {
            if let Some(s) = rest.condition_nonempty(k) {
                sharing.push((true, s));
            }
        }
    }

    // Resolve the ownership predicate within each sharing branch.
    for (others, state) in sharing.drain(..) {
        if !others {
            out.push((GlobalCtx::ALONE, state));
            continue;
        }
        let mut owners = KeyList::new();
        for &(k, _) in state.classes() {
            if spec.attrs(k.state).owned {
                owners.push(k);
            }
        }
        let definite = owners.iter().any(|&k| state.get(k).certainly_nonempty());
        let possible = !owners.is_empty();
        if definite {
            out.push((GlobalCtx::OWNED_ELSEWHERE, state));
        } else if !possible || shared == owned {
            // No owner can exist, or the distinction is irrelevant.
            out.push((GlobalCtx::SHARED_CLEAN, state));
        } else {
            // Ambiguous and relevant: branch.
            let mut none = state.clone();
            let mut feasible = true;
            for &k in &owners {
                match none.condition_empty(k) {
                    Some(next) => none = next,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                out.push((GlobalCtx::SHARED_CLEAN, none));
            }
            for &k in &owners {
                if let Some(s) = state.condition_nonempty(k) {
                    out.push((GlobalCtx::OWNED_ELSEWHERE, s));
                }
            }
        }
    }
}

/// Enumerates the data-movement scenarios of a transition: which class
/// (if any) flushes to memory, and which class (or memory) supplies a
/// fill. Each scenario conditions the involved classes and carries the
/// memory freshness forward (flushes happen before the fill reads
/// memory — the atomic-transaction assumption of §2.4). Writes into
/// `out` (cleared first); `flush` is scratch space for the flush
/// scenarios.
fn data_branches_into(
    spec: &ProtocolSpec,
    rest: &IState,
    outc: &Outcome,
    flush: &mut Vec<IState>,
    out: &mut Vec<DataBranch>,
) {
    flush.clear();
    out.clear();

    // Step 1: flush scenarios.
    match outc.bus {
        None => flush.push(rest.clone()),
        Some(bus) => {
            let mut flushers = KeyList::new();
            for &(k, _) in rest.classes() {
                if spec.attrs(k.state).holds_copy && spec.snoop(k.state, bus).flushes_to_memory {
                    flushers.push(k);
                }
            }
            if flushers.is_empty() {
                flush.push(rest.clone());
            } else {
                // No-flush scenario: every flusher class is empty.
                let mut none = rest.clone();
                let mut feasible = true;
                for &k in &flushers {
                    match none.condition_empty(k) {
                        Some(next) => none = next,
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if feasible {
                    flush.push(none);
                }
                // One scenario per flushing class: memory takes its data.
                for &k in &flushers {
                    if let Some(mut s) = rest.condition_nonempty(k) {
                        s.mdata = match k.cdata {
                            CData::Fresh => MData::Fresh,
                            CData::Obsolete => MData::Obsolete,
                            CData::NoData => unreachable!("flusher holds a copy"),
                        };
                        flush.push(s);
                    }
                }
            }
        }
    }

    // Step 2: fill-source scenarios within each flush scenario.
    if !outc.data.is_fill() {
        for rest in flush.drain(..) {
            out.push(DataBranch {
                rest,
                fill_cd: None,
            });
        }
        return;
    }
    let bus = outc
        .bus
        .expect("fill transitions carry a bus op (validated)");
    for fs in flush.iter() {
        let mut suppliers = KeyList::new();
        for &(k, _) in fs.classes() {
            if spec.attrs(k.state).holds_copy && spec.snoop(k.state, bus).supplies_data {
                suppliers.push(k);
            }
        }
        // Memory-fill scenario: no supplier present.
        let mut none = fs.clone();
        let mut feasible = true;
        for &k in &suppliers {
            match none.condition_empty(k) {
                Some(next) => none = next,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            let cd = none.mdata.as_cdata();
            out.push(DataBranch {
                rest: none,
                fill_cd: Some(cd),
            });
        }
        // Cache-supply scenarios ("arbitrarily choose Cj with a copy").
        for &k in &suppliers {
            if let Some(s) = fs.condition_nonempty(k) {
                out.push(DataBranch {
                    rest: s,
                    fill_cd: Some(k.cdata),
                });
            }
        }
    }
}

/// Applies one fully-resolved transition scenario: snoops the rest of
/// the system, performs the store demotions and memory updates, and
/// re-inserts the originator.
fn apply(
    spec: &ProtocolSpec,
    br: &DataBranch,
    outc: &Outcome,
    origin: ClassKey,
) -> (IState, StepErrors) {
    let mut errors = StepErrors::EMPTY;
    let store = outc.data.is_store();
    let mut succ = IState::empty(br.rest.mdata);

    // Coincident transitions: every other class snoops the transaction.
    for &(k, iv) in br.rest.classes() {
        let (next_state, received_update) = match outc.bus {
            Some(bus) if !k.state.is_invalid() => {
                let sn = spec.snoop(k.state, bus);
                (sn.next, sn.receives_update)
            }
            _ => (k.state, false),
        };
        let new_key = if !spec.attrs(next_state).holds_copy {
            // Invalid — or a copy-less transient, whose identity (the
            // pending transaction) must survive even though it holds
            // no data. For atomic protocols `next_state` is always the
            // invalid state here, so this is `ClassKey::invalid()`.
            ClassKey {
                state: next_state,
                cdata: CData::NoData,
            }
        } else {
            let cdata = if store {
                // A store creates a new value: every surviving copy
                // that did not absorb the broadcast is now obsolete.
                if received_update {
                    CData::Fresh
                } else {
                    CData::Obsolete
                }
            } else {
                k.cdata
            };
            ClassKey {
                state: next_state,
                cdata,
            }
        };
        succ.merge_into(new_key, iv);
    }

    // Memory effect of the originator's data operation.
    match outc.data {
        DataOp::Write { through, .. } => {
            succ.mdata = if through {
                MData::Fresh
            } else {
                MData::Obsolete
            };
        }
        DataOp::Evict { writeback: true } => {
            succ.mdata = match origin.cdata {
                CData::Fresh => MData::Fresh,
                CData::Obsolete => MData::Obsolete,
                CData::NoData => unreachable!("write-back from a copy-less state"),
            };
        }
        _ => {}
    }

    // The originator's own data.
    let new_cd = match outc.data {
        // A request phase moves no data and reads nothing: the held
        // copy (if any) rides along untouched.
        DataOp::None => origin.cdata,
        DataOp::Read { fill: false } => {
            if origin.cdata == CData::Obsolete {
                errors.insert(StepError::StaleReadHit);
            }
            origin.cdata
        }
        DataOp::Read { fill: true } => {
            let cd = br.fill_cd.expect("fill scenario resolved a source");
            if cd == CData::Obsolete {
                errors.insert(StepError::StaleFill);
            }
            cd
        }
        DataOp::Write { fill, .. } => {
            if fill {
                let cd = br.fill_cd.expect("fill scenario resolved a source");
                if cd == CData::Obsolete {
                    errors.insert(StepError::StaleFill);
                }
            }
            CData::Fresh
        }
        DataOp::Evict { .. } => CData::NoData,
    };
    let new_key = if !spec.attrs(outc.next).holds_copy {
        // As above: preserve a copy-less transient target's identity.
        ClassKey {
            state: outc.next,
            cdata: CData::NoData,
        }
    } else {
        debug_assert_ne!(new_cd, CData::NoData, "valid state must carry data");
        ClassKey {
            state: outc.next,
            cdata: new_cd,
        }
    };
    succ.add_one(new_key);

    (succ, errors)
}

/// Convenience view of the originator state of a transition (used by
/// trace rendering). The [`StateId`] of the class that moved.
pub fn origin_state(label: &Label) -> StateId {
    label.origin.state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fval::FVal;
    use crate::rep::Rep;
    use ccv_model::protocols::{illinois, msi, synapse};

    fn ck(spec: &ProtocolSpec, name: &str) -> ClassKey {
        let s = spec.state_by_name(name).unwrap();
        if s == StateId::INVALID {
            ClassKey::invalid()
        } else {
            ClassKey::fresh(s)
        }
    }

    fn find<'a>(
        ts: &'a [Transition],
        spec: &ProtocolSpec,
        origin: &str,
        event: ProcEvent,
    ) -> Vec<&'a Transition> {
        let o = ck(spec, origin);
        ts.iter()
            .filter(|t| t.label.origin == o && t.label.event == event)
            .collect()
    }

    #[test]
    fn initial_illinois_read_fills_valid_exclusive() {
        let spec = illinois();
        let init = Composite::initial(&spec);
        let succ = successors(&spec, &init);
        let reads = find(&succ, &spec, "Inv", ProcEvent::Read);
        assert_eq!(reads.len(), 1, "one read successor from (Inv⁺)");
        let t = reads[0];
        assert_eq!(t.label.ctx, GlobalCtx::ALONE);
        assert!(t.errors.is_empty());
        // (V-Ex, Inv*) with F = v2, memory fresh.
        assert_eq!(t.to.f, FVal::V2);
        assert_eq!(t.to.rep_of(ck(&spec, "V-Ex")), Rep::One);
        assert_eq!(t.to.rep_of(ClassKey::invalid()), Rep::Star);
        assert_eq!(t.to.mdata, MData::Fresh);
    }

    #[test]
    fn initial_illinois_write_fills_dirty_and_stales_memory() {
        let spec = illinois();
        let init = Composite::initial(&spec);
        let succ = successors(&spec, &init);
        let writes = find(&succ, &spec, "Inv", ProcEvent::Write);
        assert_eq!(writes.len(), 1);
        let t = writes[0];
        assert_eq!(t.to.rep_of(ck(&spec, "Dirty")), Rep::One);
        assert_eq!(t.to.mdata, MData::Obsolete);
        assert_eq!(t.to.f, FVal::V2);
        assert!(t.errors.is_empty());
    }

    #[test]
    fn read_miss_on_dirty_system_flushes_and_shares() {
        // (Dirty, Inv*) --R_inv--> (Shared⁺, Inv*), memory freshened.
        let spec = illinois();
        let dirty = Composite::new(
            vec![
                (ck(&spec, "Dirty"), Rep::One),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Obsolete,
            FVal::V2,
        );
        let succ = successors(&spec, &dirty);
        let reads = find(&succ, &spec, "Inv", ProcEvent::Read);
        assert_eq!(reads.len(), 1);
        let t = reads[0];
        assert_eq!(t.to.rep_of(ck(&spec, "Shared")), Rep::Plus);
        assert_eq!(t.to.f, FVal::V3, "two Shared copies exist");
        assert_eq!(t.to.mdata, MData::Fresh, "Dirty snooper flushed");
        assert!(t.errors.is_empty());
    }

    #[test]
    fn replacement_from_shared_plus_splits_categories() {
        // (Shared⁺, Inv*) f=v3 --Z_shared--> both (Shared⁺, Inv⁺) f=v3
        // and (Shared, Inv⁺) f=v2 — the paper's rule-4(b) terminal
        // states, from a single interval step.
        let spec = illinois();
        let s3 = Composite::new(
            vec![
                (ck(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        let succ = successors(&spec, &s3);
        let reps = find(&succ, &spec, "Shared", ProcEvent::Replace);
        assert_eq!(reps.len(), 2);
        let fvals: Vec<FVal> = reps.iter().map(|t| t.to.f).collect();
        assert!(fvals.contains(&FVal::V2));
        assert!(fvals.contains(&FVal::V3));
        let v2 = reps.iter().find(|t| t.to.f == FVal::V2).unwrap();
        assert_eq!(v2.to.rep_of(ck(&spec, "Shared")), Rep::One);
        assert_eq!(v2.to.rep_of(ClassKey::invalid()), Rep::Plus);
    }

    #[test]
    fn shared_write_invalidates_the_rest() {
        let spec = illinois();
        let s3 = Composite::new(
            vec![
                (ck(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        let succ = successors(&spec, &s3);
        let writes = find(&succ, &spec, "Shared", ProcEvent::Write);
        assert_eq!(writes.len(), 1);
        let t = writes[0];
        assert_eq!(t.to.rep_of(ck(&spec, "Dirty")), Rep::One);
        assert_eq!(t.to.rep_of(ck(&spec, "Shared")), Rep::Zero);
        assert_eq!(t.to.f, FVal::V2);
        assert_eq!(t.to.mdata, MData::Obsolete);
        assert!(t.errors.is_empty());
    }

    #[test]
    fn synapse_dirty_snooper_aborts_into_memory_fill() {
        // (D, Inv⁺) --R_inv-->: the Dirty snooper flushes and
        // invalidates itself; the requester fills fresh from memory.
        let spec = synapse();
        let d = Composite::new(
            vec![(ck(&spec, "D"), Rep::One), (ClassKey::invalid(), Rep::Plus)],
            MData::Obsolete,
            FVal::Null,
        );
        let succ = successors(&spec, &d);
        let reads = find(&succ, &spec, "Inv", ProcEvent::Read);
        assert_eq!(reads.len(), 1);
        let t = reads[0];
        assert!(t.errors.is_empty(), "fill must be fresh after the flush");
        assert_eq!(t.to.mdata, MData::Fresh);
        assert_eq!(t.to.rep_of(ck(&spec, "V")), Rep::One);
        assert_eq!(t.to.rep_of(ck(&spec, "D")), Rep::Zero);
    }

    #[test]
    fn msi_expansion_has_no_category_branching() {
        let spec = msi();
        let init = Composite::initial(&spec);
        for t in successors(&spec, &init) {
            assert_eq!(t.to.f, FVal::Null);
        }
    }

    #[test]
    fn stale_fill_detected_when_memory_is_obsolete_and_unguarded() {
        // Construct an (unreachable-for-correct-Illinois) state where
        // memory is obsolete and no cache holds a copy; a read miss
        // must then report a stale fill.
        let spec = illinois();
        let bad = Composite::new(
            vec![(ClassKey::invalid(), Rep::Plus)],
            MData::Obsolete,
            FVal::V1,
        );
        let succ = successors(&spec, &bad);
        let reads = find(&succ, &spec, "Inv", ProcEvent::Read);
        assert_eq!(reads.len(), 1);
        assert!(reads[0].errors.contains(StepError::StaleFill));
    }

    #[test]
    fn step_errors_mask_roundtrips() {
        let mut m = StepErrors::EMPTY;
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        m.insert(StepError::StaleFill);
        m.insert(StepError::StaleFill);
        assert_eq!(m.len(), 1);
        assert!(m.contains(StepError::StaleFill));
        assert!(!m.contains(StepError::StaleReadHit));
        m.insert(StepError::StaleReadHit);
        assert_eq!(
            m.to_vec(),
            vec![StepError::StaleReadHit, StepError::StaleFill]
        );
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_buffers() {
        let spec = illinois();
        let mut scratch = ExpandScratch::new();
        let mut buf = Vec::new();
        let init = Composite::initial(&spec);
        successors_into(&spec, &init, &mut scratch, &mut buf);
        let first: Vec<Transition> = buf.clone();
        // Expand a different state through the same scratch, then the
        // initial state again: results must be untainted by leftovers.
        let s3 = Composite::new(
            vec![
                (ck(&spec, "Shared"), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        successors_into(&spec, &s3, &mut scratch, &mut buf);
        successors_into(&spec, &init, &mut scratch, &mut buf);
        assert_eq!(buf.len(), first.len());
        for (a, b) in buf.iter().zip(first.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.to, b.to);
            assert_eq!(a.errors, b.errors);
        }
    }

    #[test]
    fn label_renders_paper_style() {
        let spec = illinois();
        let l = Label {
            origin: ck(&spec, "Dirty"),
            event: ProcEvent::Replace,
            ctx: GlobalCtx::ALONE,
        };
        assert_eq!(l.render(&spec), "Z_dirty");
    }
}
