//! Hash-consed composite-state storage.
//!
//! The expansion engine discovers the same composite states over and
//! over: most successors of a visit are duplicates of states already in
//! the arena. [`CompositeArena`] stores each distinct [`Composite`]
//! exactly once and hands out copyable [`CompositeId`]s, so the engine,
//! the containment index and the trace machinery move 4-byte ids
//! instead of cloning class vectors, and duplicate detection in
//! equality mode degenerates to an id comparison.
//!
//! Interning is append-only within a run: ids are dense indices in
//! insertion order, which gives the batch layer a stable, deterministic
//! numbering for exported essential-state sets.

use crate::composite::Composite;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Identity of an interned [`Composite`] — a dense index into its
/// arena, valid only for the arena that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompositeId(u32);

impl CompositeId {
    /// The dense arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only, hash-consed store of canonical composite states.
#[derive(Clone, Debug, Default)]
pub struct CompositeArena {
    states: Vec<Composite>,
    /// Full-hash buckets: hash of the composite → ids sharing it.
    buckets: HashMap<u64, Vec<u32>>,
    hits: u64,
}

impl CompositeArena {
    /// An empty arena.
    pub fn new() -> CompositeArena {
        CompositeArena::default()
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The composite behind `id`.
    ///
    /// # Panics
    /// Panics if `id` comes from another arena (index out of bounds).
    #[inline]
    pub fn get(&self, id: CompositeId) -> &Composite {
        &self.states[id.index()]
    }

    /// Number of `intern` calls that found an existing entry — the
    /// engine's "successor already known as a value" count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Interns `comp`, returning the id of the existing entry when an
    /// equal composite was interned before.
    pub fn intern(&mut self, comp: &Composite) -> CompositeId {
        let mut h = DefaultHasher::new();
        comp.hash(&mut h);
        let bucket = self.buckets.entry(h.finish()).or_default();
        for &i in bucket.iter() {
            if self.states[i as usize] == *comp {
                self.hits += 1;
                return CompositeId(i);
            }
        }
        let i = u32::try_from(self.states.len()).expect("composite arena overflow");
        bucket.push(i);
        self.states.push(comp.clone());
        CompositeId(i)
    }

    /// Iterates `(id, composite)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (CompositeId, &Composite)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, c)| (CompositeId(i as u32), c))
    }

    /// Approximate resident size in bytes (entries, spilled class
    /// vectors, and bucket table) — reported as the `arena_bytes` gauge.
    pub fn approx_bytes(&self) -> usize {
        let entries = self.states.capacity() * core::mem::size_of::<Composite>();
        let spill: usize = self.states.iter().map(|c| c.heap_bytes()).sum();
        let buckets: usize = self
            .buckets
            .values()
            .map(|b| b.capacity() * core::mem::size_of::<u32>())
            .sum::<usize>()
            + self.buckets.capacity() * core::mem::size_of::<(u64, Vec<u32>)>();
        entries + spill + buckets
    }

    /// Forgets every interned state but keeps allocated capacity, so a
    /// recycled arena interns its next run without reallocating.
    pub fn clear(&mut self) {
        self.states.clear();
        self.buckets.clear();
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::ClassKey;
    use crate::fval::FVal;
    use crate::rep::Rep;
    use ccv_model::protocols::illinois;
    use ccv_model::MData;

    #[test]
    fn interning_deduplicates_equal_states() {
        let spec = illinois();
        let mut arena = CompositeArena::new();
        let a = Composite::initial(&spec);
        let b = Composite::initial(&spec);
        let ia = arena.intern(&a);
        let ib = arena.intern(&b);
        assert_eq!(ia, ib);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.hits(), 1);
        assert_eq!(arena.get(ia), &a);
    }

    #[test]
    fn distinct_states_get_distinct_dense_ids() {
        let spec = illinois();
        let sh = spec.state_by_name("Shared").unwrap();
        let mut arena = CompositeArena::new();
        let a = Composite::initial(&spec);
        let b = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            FVal::V3,
        );
        let ia = arena.intern(&a);
        let ib = arena.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(ia.index(), 0);
        assert_eq!(ib.index(), 1);
        assert_eq!(arena.len(), 2);
        let listed: Vec<_> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(listed, vec![ia, ib]);
    }

    #[test]
    fn clear_resets_contents_and_hits() {
        let spec = illinois();
        let mut arena = CompositeArena::new();
        let a = Composite::initial(&spec);
        arena.intern(&a);
        arena.intern(&a);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.hits(), 0);
        let id = arena.intern(&a);
        assert_eq!(id.index(), 0);
        assert!(arena.approx_bytes() > 0);
    }
}
