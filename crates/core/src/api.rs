//! The unified verification API: one versioned request/response
//! schema shared by the CLI subcommands, the `ccv serve` wire
//! protocol and the test harnesses.
//!
//! A [`Request`] names an [`Action`] (verify / enumerate /
//! crosscheck), a [`ProtocolSource`] and the engine options that are
//! meaningful over a wire ([`RequestOptions`]); a [`Response`] carries
//! either the action's typed payload or a well-formed [`ApiError`].
//! Both round-trip through the dependency-free
//! [`Json`] value as the `ccv-request-v1` /
//! `ccv-response-v1` schemas, so the CLI, the server and remote
//! clients speak the same language — and every engine capability
//! (budgets, deadlines, rule stats, checkpointing, essential-state
//! export) is reachable through this single surface.
//!
//! Runtime concerns that must not travel over a wire — the
//! cancellation token and the observability sink — ride in a
//! [`RunContext`] beside the request.
//!
//! ```
//! use ccv_core::api::{Request, ProtocolSource, Payload};
//! use ccv_core::Session;
//!
//! let req = Request::verify(ProtocolSource::Name("illinois".into()));
//! let resp = Session::run(&req);
//! match resp.result {
//!     Ok(Payload::Verify(v)) => assert_eq!(v.report.num_essential(), 5),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```
//!
//! ## The enumeration backend
//!
//! `ccv-enum` depends on this crate, so the explicit-state engines
//! cannot be called from here directly. The [`EnumBackend`] trait
//! inverts the dependency: `ccv-enum` implements it and installs the
//! implementation through [`install_enum_backend`] (one process-wide
//! [`OnceLock`]), after which [`SessionRunner::run`] serves
//! enumerate/crosscheck requests too. Without an installed backend
//! those actions answer with a well-formed `unsupported` error.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::engine::{EngineScratch, Options, Pruning};
use crate::verify::{verify_with_scratch, Outcome, Verdict, VerificationReport};
use ccv_model::ProtocolSpec;
use ccv_observe::{CancelToken, Json, SinkHandle, StopInfo};

/// Schema identifier stamped on every serialized request.
pub const REQUEST_SCHEMA: &str = "ccv-request-v1";
/// Schema identifier stamped on every serialized response.
pub const RESPONSE_SCHEMA: &str = "ccv-response-v1";

/// What a request asks the engines to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Symbolic verification for any number of caches.
    Verify,
    /// Explicit-state enumeration at a fixed cache count.
    Enumerate,
    /// Theorem 1 crosscheck: enumerate and test symbolic coverage.
    Crosscheck,
}

impl Action {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Action::Verify => "verify",
            Action::Enumerate => "enumerate",
            Action::Crosscheck => "crosscheck",
        }
    }

    /// Parses a wire name back into an action.
    pub fn from_name(name: &str) -> Option<Action> {
        Some(match name {
            "verify" => Action::Verify,
            "enumerate" => Action::Enumerate,
            "crosscheck" => Action::Crosscheck,
            _ => return None,
        })
    }
}

/// Where the protocol under test comes from.
#[derive(Clone, Debug)]
pub enum ProtocolSource {
    /// A library protocol name (`illinois`, `msi`, a buggy mutant…).
    Name(String),
    /// Inline `.ccv` DSL source text.
    Dsl(String),
    /// An already-resolved spec (local callers only; serializes as
    /// its canonical DSL rendering).
    Spec(ProtocolSpec),
}

impl ProtocolSource {
    /// Resolves the source to a [`ProtocolSpec`], or a `bad_protocol`
    /// error naming what went wrong.
    pub fn resolve(&self) -> Result<ProtocolSpec, ApiError> {
        match self {
            ProtocolSource::Name(name) => ccv_model::protocols::by_name(name).ok_or_else(|| {
                ApiError::bad_protocol(format!("unknown protocol '{name}' (try `ccv list`)"))
            }),
            ProtocolSource::Dsl(text) => ccv_model::dsl::parse_protocol(text)
                .map_err(|e| ApiError::bad_protocol(format!("dsl:{e}"))),
            ProtocolSource::Spec(spec) => Ok(spec.clone()),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ProtocolSource::Name(name) => Json::Obj(vec![("name".into(), Json::str(name.clone()))]),
            ProtocolSource::Dsl(text) => Json::Obj(vec![("dsl".into(), Json::str(text.clone()))]),
            ProtocolSource::Spec(spec) => Json::Obj(vec![(
                "dsl".into(),
                Json::str(ccv_model::dsl::to_dsl(spec)),
            )]),
        }
    }

    fn from_json(j: &Json) -> Result<ProtocolSource, ApiError> {
        let fields = match j {
            Json::Obj(fields) => fields,
            _ => return Err(ApiError::bad_request("'protocol' must be an object")),
        };
        if fields.len() != 1 {
            return Err(ApiError::bad_request(
                "'protocol' must have exactly one of 'name' or 'dsl'",
            ));
        }
        let (key, value) = &fields[0];
        let text = value
            .as_str()
            .ok_or_else(|| ApiError::bad_request(format!("'protocol.{key}' must be a string")))?;
        match key.as_str() {
            "name" => Ok(ProtocolSource::Name(text.to_string())),
            "dsl" => Ok(ProtocolSource::Dsl(text.to_string())),
            other => Err(ApiError::bad_request(format!(
                "unknown protocol source '{other}' (expected 'name' or 'dsl')"
            ))),
        }
    }
}

/// Engine options meaningful on a request. Every field has a default,
/// so a wire request states only what it overrides. Fields irrelevant
/// to the request's action are ignored by the runner.
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Pruning discipline for symbolic verification.
    pub pruning: Pruning,
    /// Record every expansion step (verify).
    pub record_trace: bool,
    /// Collect per-rule attribution (needs a sink to report into).
    pub rule_stats: bool,
    /// Stop at the first violation found.
    pub stop_at_first_error: bool,
    /// Visit budget for verification (`None` = engine default).
    pub budget: Option<usize>,
    /// Wall-clock deadline; past it the run stops inconclusively.
    pub deadline: Option<Duration>,
    /// Approximate memory cap in bytes.
    pub max_bytes: Option<u64>,
    /// Cache count for enumerate / crosscheck.
    pub n: usize,
    /// Exact-duplicate pruning instead of counting equivalence.
    pub exact: bool,
    /// Worker threads for enumeration and for the symbolic engine
    /// behind verify / crosscheck; 0 = one per available core. The
    /// symbolic result is bit-identical for every setting.
    pub threads: usize,
    /// Distinct-state cap for enumerate (also the concrete-state
    /// budget of the crosscheck's enumeration leg).
    pub max_states: Option<usize>,
    /// Test hook: panic enumeration worker 0 after this many visits.
    pub inject_panic: Option<usize>,
    /// Write a resumable checkpoint here if the run stops early
    /// (server deployments may refuse file-touching options).
    pub checkpoint_out: Option<String>,
    /// Resume an enumeration from this checkpoint file.
    pub resume: Option<String>,
    /// Directory for the enumerator's spill-to-disk visited table;
    /// unset keeps the table fully in RAM. Spill runs are routed to
    /// the sequential enumeration engine.
    pub spill_dir: Option<String>,
    /// Total resident bytes the spill table holds before shards are
    /// flushed to disk segments (`None` = backend default of 256 MiB;
    /// only meaningful with `spill_dir`).
    pub spill_threshold: Option<u64>,
    /// Deterministic fault-injection plan for the run, in the
    /// [`ccv_observe::fault`] spec grammar
    /// (`site:kind[@after][xtimes],…`). Robustness testing only:
    /// responses produced under a plan are never cached.
    pub fault_plan: Option<String>,
}

impl Default for RequestOptions {
    fn default() -> RequestOptions {
        RequestOptions {
            pruning: Pruning::Containment,
            record_trace: false,
            rule_stats: false,
            stop_at_first_error: false,
            budget: None,
            deadline: None,
            max_bytes: None,
            n: 4,
            exact: false,
            threads: 0,
            max_states: None,
            inject_panic: None,
            checkpoint_out: None,
            resume: None,
            spill_dir: None,
            spill_threshold: None,
            fault_plan: None,
        }
    }
}

impl RequestOptions {
    /// True if the request asks for anything that reads or writes
    /// server-local files — refused by daemons serving remote clients.
    pub fn touches_files(&self) -> bool {
        self.checkpoint_out.is_some() || self.resume.is_some() || self.spill_dir.is_some()
    }

    fn to_json(&self) -> Json {
        let d = RequestOptions::default();
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.pruning != d.pruning {
            fields.push(("pruning".into(), Json::str("equality")));
        }
        if self.record_trace {
            fields.push(("trace".into(), Json::Bool(true)));
        }
        if self.rule_stats {
            fields.push(("rule_stats".into(), Json::Bool(true)));
        }
        if self.stop_at_first_error {
            fields.push(("stop_at_first_error".into(), Json::Bool(true)));
        }
        if let Some(b) = self.budget {
            fields.push(("budget".into(), Json::int(b as u64)));
        }
        if let Some(dl) = self.deadline {
            fields.push(("deadline_ms".into(), Json::Num(dl.as_secs_f64() * 1000.0)));
        }
        if let Some(mb) = self.max_bytes {
            fields.push(("max_bytes".into(), Json::int(mb)));
        }
        if self.n != d.n {
            fields.push(("n".into(), Json::int(self.n as u64)));
        }
        if self.exact {
            fields.push(("exact".into(), Json::Bool(true)));
        }
        if self.threads != d.threads {
            fields.push(("threads".into(), Json::int(self.threads as u64)));
        }
        if let Some(m) = self.max_states {
            fields.push(("max_states".into(), Json::int(m as u64)));
        }
        if let Some(k) = self.inject_panic {
            fields.push(("inject_panic".into(), Json::int(k as u64)));
        }
        if let Some(p) = &self.checkpoint_out {
            fields.push(("checkpoint_out".into(), Json::str(p.clone())));
        }
        if let Some(p) = &self.resume {
            fields.push(("resume".into(), Json::str(p.clone())));
        }
        if let Some(p) = &self.spill_dir {
            fields.push(("spill_dir".into(), Json::str(p.clone())));
        }
        if let Some(t) = self.spill_threshold {
            fields.push(("spill_threshold".into(), Json::int(t)));
        }
        if let Some(p) = &self.fault_plan {
            fields.push(("fault_plan".into(), Json::str(p.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(j: &Json) -> Result<RequestOptions, ApiError> {
        let fields = match j {
            Json::Obj(fields) => fields,
            _ => return Err(ApiError::bad_request("'options' must be an object")),
        };
        let mut opts = RequestOptions::default();
        for (key, value) in fields {
            match key.as_str() {
                "pruning" => {
                    opts.pruning = match value.as_str() {
                        Some("containment") => Pruning::Containment,
                        Some("equality") => Pruning::Equality,
                        _ => {
                            return Err(ApiError::bad_request(
                                "'options.pruning' must be 'containment' or 'equality'",
                            ))
                        }
                    }
                }
                "trace" => opts.record_trace = expect_bool(key, value)?,
                "rule_stats" => opts.rule_stats = expect_bool(key, value)?,
                "stop_at_first_error" => opts.stop_at_first_error = expect_bool(key, value)?,
                "budget" => opts.budget = Some(expect_uint(key, value)? as usize),
                "deadline_ms" => {
                    let ms = value.as_f64().filter(|ms| ms.is_finite() && *ms >= 0.0);
                    match ms {
                        Some(ms) => {
                            opts.deadline = Some(Duration::from_secs_f64(ms / 1000.0));
                        }
                        None => {
                            return Err(ApiError::bad_request(
                                "'options.deadline_ms' must be a non-negative number",
                            ))
                        }
                    }
                }
                "max_bytes" => opts.max_bytes = Some(expect_uint(key, value)?),
                "n" => opts.n = expect_uint(key, value)? as usize,
                "exact" => opts.exact = expect_bool(key, value)?,
                "threads" => opts.threads = expect_uint(key, value)? as usize,
                "max_states" => opts.max_states = Some(expect_uint(key, value)? as usize),
                "inject_panic" => opts.inject_panic = Some(expect_uint(key, value)? as usize),
                "checkpoint_out" => opts.checkpoint_out = Some(expect_str(key, value)?),
                "resume" => opts.resume = Some(expect_str(key, value)?),
                "spill_dir" => opts.spill_dir = Some(expect_str(key, value)?),
                "spill_threshold" => opts.spill_threshold = Some(expect_uint(key, value)?),
                "fault_plan" => opts.fault_plan = Some(expect_str(key, value)?),
                other => {
                    return Err(ApiError::bad_request(format!("unknown option '{other}'")));
                }
            }
        }
        Ok(opts)
    }
}

fn expect_bool(key: &str, value: &Json) -> Result<bool, ApiError> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(ApiError::bad_request(format!(
            "'options.{key}' must be a boolean"
        ))),
    }
}

fn expect_uint(key: &str, value: &Json) -> Result<u64, ApiError> {
    value.as_u64().ok_or_else(|| {
        ApiError::bad_request(format!("'options.{key}' must be a non-negative integer"))
    })
}

fn expect_str(key: &str, value: &Json) -> Result<String, ApiError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request(format!("'options.{key}' must be a string")))
}

/// One unit of work for the unified runner: an action, a protocol and
/// the options. The single entry point behind `ccv verify`,
/// `ccv enumerate`, `ccv crosscheck` and every `ccv serve` request.
#[derive(Clone, Debug)]
pub struct Request {
    /// What to do.
    pub action: Action,
    /// The protocol under test.
    pub protocol: ProtocolSource,
    /// Engine options.
    pub options: RequestOptions,
    /// Ask a streaming endpoint (`ccv serve` NDJSON mode) to forward
    /// progress events before the response. Transport-level: does not
    /// affect the result and is excluded from [`Request::semantic_key`].
    pub stream: bool,
}

impl Request {
    /// A verify request with default options.
    pub fn verify(protocol: ProtocolSource) -> Request {
        Request {
            action: Action::Verify,
            protocol,
            options: RequestOptions::default(),
            stream: false,
        }
    }

    /// An enumerate request at cache count `n`.
    pub fn enumerate(protocol: ProtocolSource, n: usize) -> Request {
        Request {
            action: Action::Enumerate,
            protocol,
            options: RequestOptions {
                n,
                ..RequestOptions::default()
            },
            stream: false,
        }
    }

    /// A crosscheck request at cache count `n`.
    pub fn crosscheck(protocol: ProtocolSource, n: usize) -> Request {
        Request {
            action: Action::Crosscheck,
            protocol,
            options: RequestOptions {
                n,
                ..RequestOptions::default()
            },
            stream: false,
        }
    }

    /// Replaces the options wholesale (chainable).
    pub fn options(mut self, options: RequestOptions) -> Request {
        self.options = options;
        self
    }

    /// Serializes as a `ccv-request-v1` object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::str(REQUEST_SCHEMA)),
            ("action".into(), Json::str(self.action.name())),
            ("protocol".into(), self.protocol.to_json()),
            ("options".into(), self.options.to_json()),
        ];
        if self.stream {
            fields.push(("stream".into(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    /// Deserializes a `ccv-request-v1` object, rejecting unknown
    /// fields, wrong types and schema mismatches with `bad_request`.
    pub fn from_json(j: &Json) -> Result<Request, ApiError> {
        let fields = match j {
            Json::Obj(fields) => fields,
            _ => return Err(ApiError::bad_request("request must be a JSON object")),
        };
        let mut action = None;
        let mut protocol = None;
        let mut options = None;
        let mut schema = None;
        let mut stream = false;
        for (key, value) in fields {
            match key.as_str() {
                "schema" => schema = value.as_str(),
                "stream" => stream = expect_bool("stream", value)?,
                "action" => {
                    action = Some(value.as_str().and_then(Action::from_name).ok_or_else(|| {
                        ApiError::bad_request(
                            "'action' must be 'verify', 'enumerate' or 'crosscheck'",
                        )
                    })?)
                }
                "protocol" => protocol = Some(ProtocolSource::from_json(value)?),
                "options" => options = Some(RequestOptions::from_json(value)?),
                other => {
                    return Err(ApiError::bad_request(format!(
                        "unknown request field '{other}'"
                    )));
                }
            }
        }
        match schema {
            Some(REQUEST_SCHEMA) => {}
            Some(other) => {
                return Err(ApiError::bad_request(format!(
                    "unsupported schema '{other}' (expected '{REQUEST_SCHEMA}')"
                )));
            }
            None => return Err(ApiError::bad_request("missing 'schema' field")),
        }
        Ok(Request {
            action: action.ok_or_else(|| ApiError::bad_request("missing 'action' field"))?,
            protocol: protocol.ok_or_else(|| ApiError::bad_request("missing 'protocol' field"))?,
            options: options.unwrap_or_default(),
            stream,
        })
    }

    /// Parses request text (one JSON object) into a request.
    pub fn parse(text: &str) -> Result<Request, ApiError> {
        let j = Json::parse(text).map_err(ApiError::bad_request)?;
        Request::from_json(&j)
    }

    /// A deterministic fingerprint of everything that can influence
    /// the response body: the action, the semantically relevant
    /// options and the protocol's canonical DSL rendering. Two
    /// requests with equal fingerprints produce interchangeable
    /// responses — the identity the `ccv serve` verdict cache hashes.
    pub fn semantic_key(&self, spec: &ProtocolSpec) -> String {
        let o = &self.options;
        format!(
            "{}|pr={:?}|tr={}|sf={}|bu={:?}|dl={:?}|mb={:?}|n={}|ex={}|th={}|ms={:?}|ip={:?}|sd={:?}|st={:?}|fp={:?}\n{}",
            self.action.name(),
            o.pruning,
            o.record_trace,
            o.stop_at_first_error,
            o.budget,
            o.deadline,
            o.max_bytes,
            o.n,
            o.exact,
            o.threads,
            o.max_states,
            o.inject_panic,
            o.spill_dir,
            o.spill_threshold,
            o.fault_plan,
            ccv_model::dsl::to_dsl(spec)
        )
    }
}

/// Runtime companions to a [`Request`] that must not travel over a
/// wire: the cancellation token the caller may trip and the
/// observability sink progress events flow into.
#[derive(Clone, Debug, Default)]
pub struct RunContext {
    /// Cooperative cancellation for this run.
    pub cancel: CancelToken,
    /// Event sink (metrics, NDJSON progress, traces…).
    pub sink: SinkHandle,
}

impl RunContext {
    /// A context with the given token and sink.
    pub fn new(cancel: CancelToken, sink: SinkHandle) -> RunContext {
        RunContext { cancel, sink }
    }
}

/// Stable machine-readable classification of a request failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Malformed request: bad JSON, schema violation, unknown field.
    BadRequest,
    /// The protocol could not be resolved (unknown name, DSL error).
    BadProtocol,
    /// The request is valid but this endpoint cannot serve it
    /// (no enumeration backend, file options over a wire…).
    Unsupported,
    /// The server's admission queue is full; retry later.
    Busy,
    /// An internal failure (checkpoint I/O, worker loss…).
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadProtocol => "bad_protocol",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name back into a code.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "bad_request" => ErrorCode::BadRequest,
            "bad_protocol" => ErrorCode::BadProtocol,
            "unsupported" => ErrorCode::Unsupported,
            "busy" => ErrorCode::Busy,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A well-formed request failure: code plus human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// For `busy` errors: how long the client should wait before
    /// retrying, in milliseconds. Travels as the `retry_after_ms`
    /// field of the error object and as the HTTP `retry-after`
    /// header.
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BadRequest, message)
    }

    /// A `bad_protocol` error.
    pub fn bad_protocol(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BadProtocol, message)
    }

    /// An `unsupported` error.
    pub fn unsupported(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Unsupported, message)
    }

    /// A `busy` error.
    pub fn busy(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Busy, message)
    }

    /// An `internal` error.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Internal, message)
    }

    /// Attaches a retry-after hint (chainable).
    pub fn with_retry_after(mut self, millis: u64) -> ApiError {
        self.retry_after_ms = Some(millis);
        self
    }

    /// Serializes as the `error` object of a response.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code".into(), Json::str(self.code.name())),
            ("message".into(), Json::str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms".into(), Json::int(ms)));
        }
        Json::Obj(fields)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

/// The payload of a successful verify request: the resolved spec
/// (needed to render states), the pruning in effect and the full
/// report.
#[derive(Clone, Debug)]
pub struct VerifyResponse {
    /// The resolved protocol.
    pub spec: ProtocolSpec,
    /// The pruning discipline the run used.
    pub pruning: Pruning,
    /// The complete verification report.
    pub report: VerificationReport,
}

/// What an enumeration resumed from, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Checkpoint file path.
    pub path: String,
    /// Distinct states already visited at the checkpoint.
    pub visited: usize,
    /// Frontier states pending at the checkpoint.
    pub frontier: usize,
    /// Visits already performed at the checkpoint.
    pub visits: usize,
}

/// Whether (and where) a checkpoint was written after the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// Requested checkpoint path.
    pub path: String,
    /// True if a checkpoint was written (the run stopped early);
    /// false if the run completed and none was needed.
    pub written: bool,
}

/// One enumeration violation, pre-rendered for transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumErrorInfo {
    /// The violating concrete state, rendered.
    pub state: String,
    /// Violation descriptions.
    pub descriptions: Vec<String>,
}

/// The payload of a successful enumerate request.
#[derive(Clone, Debug)]
pub struct EnumerateResponse {
    /// Protocol name.
    pub protocol: String,
    /// Cache count enumerated.
    pub n: usize,
    /// Exact-duplicate pruning (vs counting equivalence).
    pub exact: bool,
    /// Resolved worker count.
    pub threads: usize,
    /// True if the worker count was auto-selected (`threads: 0`).
    pub auto_threads: bool,
    /// Distinct states reached.
    pub distinct: usize,
    /// States dequeued and expanded.
    pub visits: usize,
    /// True if the search was cut short.
    pub truncated: bool,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopInfo>,
    /// Violations found (possibly truncated by stop-at-first-error).
    pub errors: Vec<EnumErrorInfo>,
    /// Set when the run resumed from a checkpoint.
    pub resumed: Option<ResumeInfo>,
    /// Set when the request asked for a checkpoint.
    pub checkpoint: Option<CheckpointOutcome>,
    /// Advisory notes about how the request was executed — e.g. a
    /// spill directory forcing an auto-threaded run sequential. Never
    /// affects the verdict; clients may surface them verbatim.
    pub warnings: Vec<String>,
}

impl EnumerateResponse {
    /// The pruning discipline, rendered exactly as the CLI's
    /// `dedup={:?}` always has.
    pub fn dedup_name(&self) -> &'static str {
        if self.exact {
            "Exact"
        } else {
            "Counting"
        }
    }
}

/// The payload of a successful crosscheck request.
#[derive(Clone, Debug)]
pub struct CrosscheckResponse {
    /// Protocol name.
    pub protocol: String,
    /// Cache count enumerated.
    pub n: usize,
    /// Essential states from the symbolic leg.
    pub essential: usize,
    /// Distinct concrete states reached by enumeration.
    pub total_concrete: usize,
    /// Concrete states covered by some essential state.
    pub covered: usize,
    /// True iff every concrete state is covered (Theorem 1 holds).
    pub complete: bool,
    /// Example uncovered states (rendered), when incomplete.
    pub uncovered_examples: Vec<String>,
    /// Why the coverage scan was skipped, when it was.
    pub aborted: Option<String>,
}

/// A successful response's action-specific payload.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Verify result.
    Verify(Box<VerifyResponse>),
    /// Enumerate result.
    Enumerate(EnumerateResponse),
    /// Crosscheck result.
    Crosscheck(CrosscheckResponse),
}

/// The unified result of running a [`Request`].
#[derive(Clone, Debug)]
pub struct Response {
    /// The action this responds to.
    pub action: Action,
    /// The payload, or a well-formed error.
    pub result: Result<Payload, ApiError>,
}

impl Response {
    /// An error response for `action`.
    pub fn error(action: Action, error: ApiError) -> Response {
        Response {
            action,
            result: Err(error),
        }
    }

    /// True if the run reached a definite result — verified or
    /// erroneous, complete or incomplete — as opposed to stopping
    /// early or failing. Only conclusive responses are safe to serve
    /// from a verdict cache: an inconclusive one depends on budgets
    /// and wall-clock luck, not just the protocol.
    pub fn is_conclusive(&self) -> bool {
        match &self.result {
            Err(_) => false,
            Ok(Payload::Verify(v)) => v.report.verdict != Verdict::Inconclusive,
            Ok(Payload::Enumerate(e)) => e.stopped.is_none(),
            Ok(Payload::Crosscheck(c)) => c.aborted.is_none(),
        }
    }

    /// Serializes as a `ccv-response-v1` object.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("schema".into(), Json::str(RESPONSE_SCHEMA)),
            ("action".into(), Json::str(self.action.name())),
        ];
        match &self.result {
            Err(e) => fields.push(("error".into(), e.to_json())),
            Ok(Payload::Verify(v)) => {
                let report = &v.report;
                fields.push(("protocol".into(), Json::str(report.protocol.clone())));
                fields.push(("verdict".into(), Json::str(report.verdict.to_string())));
                fields.push(("visits".into(), Json::int(report.visits() as u64)));
                fields.push((
                    "expansions".into(),
                    Json::int(report.expansion.expanded as u64),
                ));
                fields.push((
                    "essential_states".into(),
                    Json::int(report.num_essential() as u64),
                ));
                if let Outcome::Inconclusive {
                    reason,
                    frontier_size,
                    visits,
                    elapsed,
                } = &report.outcome
                {
                    fields.push((
                        "stop".into(),
                        Json::Obj(vec![
                            ("reason".into(), Json::str(reason.clone())),
                            ("frontier".into(), Json::int(*frontier_size as u64)),
                            ("visits".into(), Json::int(*visits as u64)),
                            (
                                "elapsed_ms".into(),
                                Json::Num(elapsed.as_secs_f64() * 1000.0),
                            ),
                        ]),
                    ));
                }
                if !report.reports.is_empty() {
                    let errors: Vec<Json> = report
                        .reports
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                (
                                    "descriptions".into(),
                                    Json::Arr(
                                        r.descriptions
                                            .iter()
                                            .map(|d| Json::str(d.clone()))
                                            .collect(),
                                    ),
                                ),
                                ("state".into(), Json::str(r.state.clone())),
                                ("path".into(), Json::str(r.path.clone())),
                            ])
                        })
                        .collect();
                    fields.push(("errors".into(), Json::Arr(errors)));
                }
                fields.push((
                    "essential".into(),
                    Json::Arr(essential_entries(&v.spec, report)),
                ));
            }
            Ok(Payload::Enumerate(e)) => {
                fields.push(("protocol".into(), Json::str(e.protocol.clone())));
                fields.push(("n".into(), Json::int(e.n as u64)));
                fields.push((
                    "dedup".into(),
                    Json::str(if e.exact { "exact" } else { "counting" }),
                ));
                fields.push(("threads".into(), Json::int(e.threads as u64)));
                fields.push(("distinct_states".into(), Json::int(e.distinct as u64)));
                fields.push(("visits".into(), Json::int(e.visits as u64)));
                fields.push(("truncated".into(), Json::Bool(e.truncated)));
                if !e.warnings.is_empty() {
                    fields.push((
                        "warnings".into(),
                        Json::Arr(e.warnings.iter().map(|w| Json::str(w.clone())).collect()),
                    ));
                }
                if let Some(info) = &e.stopped {
                    fields.push(("stop".into(), stop_info_json(info)));
                }
                if !e.errors.is_empty() {
                    let errors: Vec<Json> = e
                        .errors
                        .iter()
                        .map(|err| {
                            Json::Obj(vec![
                                ("state".into(), Json::str(err.state.clone())),
                                (
                                    "descriptions".into(),
                                    Json::Arr(
                                        err.descriptions
                                            .iter()
                                            .map(|d| Json::str(d.clone()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect();
                    fields.push(("errors".into(), Json::Arr(errors)));
                }
                if let Some(r) = &e.resumed {
                    fields.push((
                        "resumed".into(),
                        Json::Obj(vec![
                            ("path".into(), Json::str(r.path.clone())),
                            ("visited".into(), Json::int(r.visited as u64)),
                            ("frontier".into(), Json::int(r.frontier as u64)),
                            ("visits".into(), Json::int(r.visits as u64)),
                        ]),
                    ));
                }
                if let Some(c) = &e.checkpoint {
                    fields.push((
                        "checkpoint".into(),
                        Json::Obj(vec![
                            ("path".into(), Json::str(c.path.clone())),
                            ("written".into(), Json::Bool(c.written)),
                        ]),
                    ));
                }
            }
            Ok(Payload::Crosscheck(c)) => {
                fields.push(("protocol".into(), Json::str(c.protocol.clone())));
                fields.push(("n".into(), Json::int(c.n as u64)));
                fields.push(("essential_states".into(), Json::int(c.essential as u64)));
                fields.push(("total_concrete".into(), Json::int(c.total_concrete as u64)));
                fields.push(("covered".into(), Json::int(c.covered as u64)));
                fields.push(("complete".into(), Json::Bool(c.complete)));
                if !c.uncovered_examples.is_empty() {
                    fields.push((
                        "uncovered".into(),
                        Json::Arr(
                            c.uncovered_examples
                                .iter()
                                .map(|s| Json::str(s.clone()))
                                .collect(),
                        ),
                    ));
                }
                if let Some(why) = &c.aborted {
                    fields.push(("aborted".into(), Json::str(why.clone())));
                }
            }
        }
        Json::Obj(fields)
    }
}

fn stop_info_json(info: &StopInfo) -> Json {
    let mut fields = vec![("cause".into(), Json::str(info.cause.name()))];
    if let Some(d) = &info.detail {
        fields.push(("detail".into(), Json::str(d.clone())));
    }
    fields.push(("frontier".into(), Json::int(info.frontier as u64)));
    fields.push((
        "elapsed_ms".into(),
        Json::Num(info.elapsed.as_secs_f64() * 1000.0),
    ));
    Json::Obj(fields)
}

/// One progress record of the NDJSON event stream — the classified
/// view clients use. Servers forward sink events verbatim; this type
/// names the vocabulary both ends agree on.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// Free-form progress message.
    Progress {
        /// The message.
        message: String,
    },
    /// Engine phase boundary.
    Phase {
        /// Phase name (`expand`, `enumerate`, …).
        phase: String,
        /// True on entry, false on exit.
        enter: bool,
    },
    /// BFS frontier size at a level.
    Frontier {
        /// The level.
        level: u64,
        /// Frontier size at that level.
        size: u64,
    },
    /// Gauge update.
    Gauge {
        /// Gauge name.
        gauge: String,
        /// New value.
        value: u64,
    },
    /// A coherence violation was recorded.
    Violation {
        /// Description.
        desc: String,
    },
    /// The governor stopped the run early.
    Stopped {
        /// Stable cause name (see `StopCause::name`).
        cause: String,
        /// Extra context, when present.
        detail: Option<String>,
    },
    /// The terminal record of a served request: the response body,
    /// with the cache disposition carried on the envelope so cached
    /// and fresh bodies stay byte-identical.
    Response {
        /// True if served from the verdict cache.
        cached: bool,
        /// The `ccv-response-v1` body.
        body: Json,
    },
    /// Any other event in the stream, kept verbatim.
    Other {
        /// The `ev` discriminator.
        ev: String,
        /// The full record.
        raw: Json,
    },
}

impl ProgressEvent {
    /// Classifies one NDJSON record. Returns `None` when the record
    /// has no `ev` discriminator (it is not an event).
    pub fn from_json(j: &Json) -> Option<ProgressEvent> {
        let ev = j.get("ev")?.as_str()?;
        let str_field = |key: &str| j.get(key).and_then(Json::as_str).map(str::to_string);
        let int_field = |key: &str| j.get(key).and_then(Json::as_u64);
        Some(match ev {
            "progress" => ProgressEvent::Progress {
                message: str_field("message")?,
            },
            "phase_enter" | "phase_exit" => ProgressEvent::Phase {
                phase: str_field("phase")?,
                enter: ev == "phase_enter",
            },
            "frontier" => ProgressEvent::Frontier {
                level: int_field("level")?,
                size: int_field("size")?,
            },
            "gauge" => ProgressEvent::Gauge {
                gauge: str_field("gauge")?,
                value: int_field("value")?,
            },
            "violation" => ProgressEvent::Violation {
                desc: str_field("desc")?,
            },
            "stopped" => ProgressEvent::Stopped {
                cause: str_field("cause")?,
                detail: str_field("detail"),
            },
            "response" => ProgressEvent::Response {
                cached: matches!(j.get("cached"), Some(Json::Bool(true))),
                body: j.get("body")?.clone(),
            },
            other => ProgressEvent::Other {
                ev: other.to_string(),
                raw: j.clone(),
            },
        })
    }
}

/// The essential states of a report as canonical JSON entries, sorted
/// by their paper-notation rendering — byte-stable across runs and
/// engine-internal reorderings. The array inside
/// [`essential_states_json`] and the `essential` field of a verify
/// response.
pub fn essential_entries(spec: &ProtocolSpec, report: &VerificationReport) -> Vec<Json> {
    let mut states = report.expansion.essential_states();
    states.sort_by_key(|c| c.render(spec));
    states
        .iter()
        .map(|c| {
            let classes: Vec<Json> = c
                .classes()
                .iter()
                .map(|&(k, r)| {
                    Json::Obj(vec![
                        ("state".into(), Json::str(spec.state(k.state).short.clone())),
                        (
                            "cdata".into(),
                            Json::str(match k.cdata {
                                ccv_model::CData::NoData => "none",
                                ccv_model::CData::Fresh => "fresh",
                                ccv_model::CData::Obsolete => "obsolete",
                            }),
                        ),
                        (
                            "rep".into(),
                            Json::str(match r {
                                crate::Rep::Zero => "0",
                                crate::Rep::One => "1",
                                crate::Rep::Plus => "+",
                                crate::Rep::Star => "*",
                            }),
                        ),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("rendered".into(), Json::str(c.render(spec))),
                ("classes".into(), Json::Arr(classes)),
                ("f".into(), Json::str(c.f.to_string())),
                ("mdata".into(), Json::str(c.mdata.to_string())),
            ])
        })
        .collect()
}

/// Canonical JSON export of a report's essential states (the
/// `ccv-essential-states-v1` document behind `--essential-out`).
pub fn essential_states_json(
    spec: &ProtocolSpec,
    report: &VerificationReport,
    pruning: Pruning,
) -> Json {
    let entries = essential_entries(spec, report);
    Json::Obj(vec![
        ("schema".into(), Json::str("ccv-essential-states-v1")),
        ("protocol".into(), Json::str(report.protocol.clone())),
        (
            "pruning".into(),
            Json::str(match pruning {
                Pruning::Containment => "containment",
                Pruning::Equality => "equality",
            }),
        ),
        ("count".into(), Json::int(entries.len() as u64)),
        ("essential".into(), Json::Arr(entries)),
    ])
}

/// The explicit-state engines, seen from below.
///
/// `ccv-enum` depends on this crate, so the unified runner reaches
/// enumeration through this trait instead of a direct call. The
/// methods mirror the engines' entry points but speak in the neutral
/// request/response types: implementations resolve thread counts,
/// load and save checkpoints, and pre-render states.
pub trait EnumBackend: Send + Sync {
    /// Runs an explicit-state enumeration for `req`.
    fn enumerate(
        &self,
        spec: &ProtocolSpec,
        req: &Request,
        ctx: &RunContext,
    ) -> Result<EnumerateResponse, ApiError>;

    /// Attaches a Theorem 1 crosscheck to a fresh verification
    /// `report` of `spec`.
    fn crosscheck(
        &self,
        spec: &ProtocolSpec,
        report: &mut VerificationReport,
        req: &Request,
        ctx: &RunContext,
    ) -> Result<CrosscheckResponse, ApiError>;

    /// True if this backend's engines understand transient states and
    /// multi-phase transitions. Defaults to `false`: a backend that
    /// predates the non-atomic model is never handed a split protocol
    /// — the session answers `unsupported` instead of risking a panic
    /// or a silently wrong enumeration.
    fn supports_non_atomic(&self) -> bool {
        false
    }
}

static ENUM_BACKEND: OnceLock<Arc<dyn EnumBackend>> = OnceLock::new();

/// Installs the process-wide enumeration backend. The first install
/// wins; later calls are ignored (idempotent by design, so tests and
/// long-lived processes may call it freely).
pub fn install_enum_backend(backend: Arc<dyn EnumBackend>) {
    let _ = ENUM_BACKEND.set(backend);
}

/// The installed enumeration backend, if any.
pub fn enum_backend() -> Option<Arc<dyn EnumBackend>> {
    ENUM_BACKEND.get().cloned()
}

/// The unified runner: owns an [`EngineScratch`] recycled across
/// requests (a long-lived server worker keeps one) and an optional
/// explicit [`EnumBackend`] (defaults to the installed one).
#[derive(Default)]
pub struct SessionRunner {
    scratch: EngineScratch,
    backend: Option<Arc<dyn EnumBackend>>,
}

impl std::fmt::Debug for SessionRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRunner")
            .field("backend", &self.backend.is_some())
            .finish_non_exhaustive()
    }
}

impl SessionRunner {
    /// A runner using the globally installed backend (if any).
    pub fn new() -> SessionRunner {
        SessionRunner::default()
    }

    /// A runner with an explicit enumeration backend.
    pub fn with_backend(backend: Arc<dyn EnumBackend>) -> SessionRunner {
        SessionRunner {
            scratch: EngineScratch::new(),
            backend: Some(backend),
        }
    }

    fn backend(&self) -> Option<Arc<dyn EnumBackend>> {
        self.backend.clone().or_else(enum_backend)
    }

    /// Runs one request to completion and returns the response.
    /// Engine scratch is recycled across calls; results are observably
    /// identical to fresh runs.
    pub fn run(&mut self, req: &Request, ctx: &RunContext) -> Response {
        let spec = match req.protocol.resolve() {
            Ok(spec) => spec,
            Err(e) => return Response::error(req.action, e),
        };
        let result = match req.action {
            Action::Verify => Ok(Payload::Verify(Box::new(self.run_verify(spec, req, ctx)))),
            Action::Enumerate => match self.backend() {
                Some(backend) if !backend_supports(&*backend, &spec) => {
                    Err(non_atomic_unsupported(&spec))
                }
                Some(backend) => backend.enumerate(&spec, req, ctx).map(Payload::Enumerate),
                None => Err(no_backend()),
            },
            Action::Crosscheck => match self.backend() {
                Some(backend) if !backend_supports(&*backend, &spec) => {
                    Err(non_atomic_unsupported(&spec))
                }
                Some(backend) => {
                    let opts = Options::default()
                        .threads(req.options.threads)
                        .sink(ctx.sink.clone())
                        .cancel(ctx.cancel.clone());
                    let mut report = verify_with_scratch(&spec, &opts, &mut self.scratch);
                    backend
                        .crosscheck(&spec, &mut report, req, ctx)
                        .map(Payload::Crosscheck)
                }
                None => Err(no_backend()),
            },
        };
        Response {
            action: req.action,
            result,
        }
    }

    fn run_verify(
        &mut self,
        spec: ProtocolSpec,
        req: &Request,
        ctx: &RunContext,
    ) -> VerifyResponse {
        let o = &req.options;
        let mut opts = Options::default()
            .pruning(o.pruning)
            .record_trace(o.record_trace)
            .rule_stats(o.rule_stats)
            .stop_at_first_error(o.stop_at_first_error)
            .threads(o.threads)
            .cancel(ctx.cancel.clone());
        if let Some(budget) = o.budget {
            opts = opts.max_visits(budget);
        }
        if let Some(deadline) = o.deadline {
            opts = opts.deadline(deadline);
        }
        if let Some(max_bytes) = o.max_bytes {
            opts = opts.max_bytes(max_bytes);
        }
        if ctx.sink.is_enabled() {
            opts = opts.sink(ctx.sink.clone());
        }
        let report = verify_with_scratch(&spec, &opts, &mut self.scratch);
        VerifyResponse {
            spec,
            pruning: o.pruning,
            report,
        }
    }
}

fn no_backend() -> ApiError {
    ApiError::unsupported(
        "no enumeration backend installed (call ccv_enum::install_api_backend() first)",
    )
}

/// An atomic-only backend is never handed a split protocol.
fn backend_supports(backend: &dyn EnumBackend, spec: &ProtocolSpec) -> bool {
    !spec.has_transients() || backend.supports_non_atomic()
}

fn non_atomic_unsupported(spec: &ProtocolSpec) -> ApiError {
    ApiError::unsupported(format!(
        "protocol '{}' has transient states; the installed enumeration \
         backend only supports atomic protocols",
        spec.name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use ccv_model::protocols::illinois;

    /// A backend stuck in the atomic era: it keeps the default
    /// `supports_non_atomic` and must never see a split protocol.
    struct AtomicOnlyBackend;

    impl EnumBackend for AtomicOnlyBackend {
        fn enumerate(
            &self,
            spec: &ProtocolSpec,
            _req: &Request,
            _ctx: &RunContext,
        ) -> Result<EnumerateResponse, ApiError> {
            assert!(
                !spec.has_transients(),
                "an atomic-only backend was handed a split protocol"
            );
            Err(ApiError::internal("stub"))
        }

        fn crosscheck(
            &self,
            spec: &ProtocolSpec,
            _report: &mut VerificationReport,
            _req: &Request,
            _ctx: &RunContext,
        ) -> Result<CrosscheckResponse, ApiError> {
            assert!(
                !spec.has_transients(),
                "an atomic-only backend was handed a split protocol"
            );
            Err(ApiError::internal("stub"))
        }
    }

    #[test]
    fn atomic_only_backends_never_see_split_protocols() {
        let split = ccv_model::protocols::split_msi();
        let mut runner = SessionRunner::with_backend(Arc::new(AtomicOnlyBackend));
        for req in [
            Request::enumerate(ProtocolSource::Spec(split.clone()), 2),
            Request::crosscheck(ProtocolSource::Spec(split.clone()), 2),
        ] {
            let resp = runner.run(&req, &RunContext::default());
            match resp.result {
                Err(e) => {
                    assert_eq!(e.code, ErrorCode::Unsupported, "{:?}", req.action);
                    assert!(e.message.contains("transient"), "{}", e.message);
                }
                Ok(_) => panic!("{:?} must be refused", req.action),
            }
        }
        // Verification is in-crate and fully non-atomic-aware; the
        // backend gate must not block it.
        let resp = runner.run(
            &Request::verify(ProtocolSource::Spec(split)),
            &RunContext::default(),
        );
        assert!(resp.result.is_ok(), "verify is backend-independent");
    }

    #[test]
    fn request_json_round_trips() {
        let req = Request {
            action: Action::Enumerate,
            protocol: ProtocolSource::Name("illinois".into()),
            options: RequestOptions {
                n: 5,
                exact: true,
                threads: 2,
                max_states: Some(10_000),
                deadline: Some(Duration::from_millis(1500)),
                ..RequestOptions::default()
            },
            stream: true,
        };
        let json = req.to_json();
        let back = Request::from_json(&json).expect("round trip");
        assert_eq!(back.to_json(), json);
        let reparsed = Request::parse(&json.render()).expect("parse rendered text");
        assert_eq!(reparsed.to_json(), json);
    }

    #[test]
    fn default_options_serialize_empty() {
        let req = Request::verify(ProtocolSource::Name("msi".into()));
        assert_eq!(req.options.to_json(), Json::Obj(vec![]));
    }

    #[test]
    fn malformed_requests_get_bad_request() {
        for text in [
            "not json",
            "[1, 2]",
            "{\"schema\": \"ccv-request-v9\", \"action\": \"verify\", \"protocol\": {\"name\": \"msi\"}}",
            "{\"action\": \"verify\", \"protocol\": {\"name\": \"msi\"}}",
            "{\"schema\": \"ccv-request-v1\", \"action\": \"dance\", \"protocol\": {\"name\": \"msi\"}}",
            "{\"schema\": \"ccv-request-v1\", \"action\": \"verify\", \"protocol\": {}}",
            "{\"schema\": \"ccv-request-v1\", \"action\": \"verify\", \"protocol\": {\"name\": \"msi\"}, \"options\": {\"bogus\": 1}}",
            "{\"schema\": \"ccv-request-v1\", \"action\": \"verify\", \"protocol\": {\"name\": \"msi\"}, \"surprise\": 1}",
        ] {
            let err = Request::parse(text).expect_err(text);
            assert_eq!(err.code, ErrorCode::BadRequest, "{text}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn unknown_protocol_is_bad_protocol() {
        let req = Request::verify(ProtocolSource::Name("nonesuch".into()));
        let resp = Session::run(&req);
        match resp.result {
            Err(e) => {
                assert_eq!(e.code, ErrorCode::BadProtocol);
                assert!(e.message.contains("nonesuch"));
            }
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn run_verify_matches_session_verify() {
        let req = Request::verify(ProtocolSource::Spec(illinois()));
        let resp = Session::run(&req);
        let direct = Session::new(illinois()).verify();
        match resp.result {
            Ok(Payload::Verify(v)) => {
                assert_eq!(v.report.verdict, direct.verdict);
                assert_eq!(v.report.visits(), direct.visits());
                assert_eq!(v.report.num_essential(), direct.num_essential());
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(Session::run(&req).is_conclusive());
    }

    #[test]
    fn dsl_source_resolves_like_the_library() {
        let dsl = ccv_model::dsl::to_dsl(&illinois());
        let spec = ProtocolSource::Dsl(dsl).resolve().expect("parses");
        assert_eq!(spec.name(), illinois().name());
        let err = ProtocolSource::Dsl("protocol {".into())
            .resolve()
            .expect_err("rejects");
        assert_eq!(err.code, ErrorCode::BadProtocol);
    }

    #[test]
    fn semantic_key_separates_options_and_protocols() {
        let spec = illinois();
        let a = Request::verify(ProtocolSource::Spec(spec.clone()));
        let mut b = a.clone();
        b.options.budget = Some(10);
        assert_ne!(a.semantic_key(&spec), b.semantic_key(&spec));
        let c = Request::enumerate(ProtocolSource::Spec(spec.clone()), 4);
        assert_ne!(a.semantic_key(&spec), c.semantic_key(&spec));
    }

    #[test]
    fn inconclusive_verify_is_not_conclusive_and_renders_stop() {
        let req = Request::verify(ProtocolSource::Spec(illinois())).options(RequestOptions {
            budget: Some(3),
            ..RequestOptions::default()
        });
        let resp = Session::run(&req);
        assert!(!resp.is_conclusive());
        let body = resp.to_json();
        assert_eq!(
            body.get("verdict").and_then(Json::as_str),
            Some("INCONCLUSIVE")
        );
        assert!(body.get("stop").is_some());
    }

    #[test]
    fn error_response_renders_code_and_message() {
        let resp = Response::error(Action::Verify, ApiError::busy("queue full"));
        let body = resp.to_json();
        let err = body.get("error").expect("error field");
        assert_eq!(err.get("code").and_then(Json::as_str), Some("busy"));
        assert_eq!(
            err.get("message").and_then(Json::as_str),
            Some("queue full")
        );
        assert!(!resp.is_conclusive());
    }

    #[test]
    fn progress_event_classifies_the_vocabulary() {
        let line = Json::parse(r#"{"ev":"frontier","t_ms":0.3,"level":3,"size":9}"#).unwrap();
        match ProgressEvent::from_json(&line) {
            Some(ProgressEvent::Frontier { level: 3, size: 9 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let resp = Json::parse(r#"{"ev":"response","cached":true,"body":{"x":1}}"#).unwrap();
        match ProgressEvent::from_json(&resp) {
            Some(ProgressEvent::Response { cached: true, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(ProgressEvent::from_json(&Json::Null).is_none());
    }
}
