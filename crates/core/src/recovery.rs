//! Recovery analysis: which global configurations can a protocol
//! tolerate?
//!
//! The paper verifies reachability from the pristine initial state
//! `(Invalid⁺)`. A designer also wants to know how *brittle* the
//! protocol is: if the system ever found itself in some other
//! configuration — after a partial reset, a dropped message modelled
//! abstractly, or a state-retention bug — would the protocol recover,
//! or grind the configuration into a data-consistency violation?
//!
//! [`analyze_recovery`] enumerates every canonical composite state
//! over the protocol's alphabet (fresh-data classes, both memory
//! freshness values, all repetition operators and feasible `F`
//! categories), keeps the *structurally permissible* ones, and runs
//! the expansion from each:
//!
//! * **safe** — no violation is reachable: the configuration is inside
//!   the protocol's tolerated region (this always includes the
//!   reachable essential states);
//! * **unsafe** — some erroneous state is reachable: the configuration
//!   silently violates an invariant the protocol relies on (e.g. clean
//!   copies with stale memory, which dies at the next replacement).
//!
//! The unsafe-but-permissible set is exactly the gap between the
//! §2.1 structural checks and the protocol's true inductive invariant.

use crate::check::check;
use crate::composite::{ClassKey, Composite};
use crate::engine::{expand_from, Options};
use crate::fval::FVal;
use crate::istate::internalize;
use crate::rep::Rep;
use ccv_model::{MData, ProtocolSpec};

/// Classification of one starting configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tolerance {
    /// No violation reachable from here.
    Safe,
    /// A violation is reachable.
    Unsafe,
    /// The expansion hit its visit budget (not observed on the shipped
    /// protocols; kept for totality).
    Unknown,
}

/// One analysed configuration.
#[derive(Clone, Debug)]
pub struct RecoveryCase {
    /// The starting composite state.
    pub start: Composite,
    /// Its classification.
    pub tolerance: Tolerance,
    /// Whether the configuration is reachable from `(Invalid⁺)` —
    /// i.e. contained in a reachable essential state.
    pub reachable: bool,
}

/// The full recovery report of a protocol.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Protocol name.
    pub protocol: String,
    /// Every structurally permissible canonical configuration.
    pub cases: Vec<RecoveryCase>,
}

impl RecoveryReport {
    /// Count of cases with the given tolerance.
    pub fn count(&self, t: Tolerance) -> usize {
        self.cases.iter().filter(|c| c.tolerance == t).count()
    }

    /// The permissible-but-unsafe configurations (the invariant gap).
    pub fn invariant_gap(&self) -> impl Iterator<Item = &RecoveryCase> {
        self.cases
            .iter()
            .filter(|c| c.tolerance == Tolerance::Unsafe)
    }

    /// Safe configurations that are *not* reachable from the initial
    /// state — slack the protocol tolerates but never uses.
    pub fn tolerated_slack(&self) -> impl Iterator<Item = &RecoveryCase> {
        self.cases
            .iter()
            .filter(|c| c.tolerance == Tolerance::Safe && !c.reachable)
    }
}

/// Enumerates every canonical fresh-data composite over the protocol's
/// states: each valid class gets an operator in `{0, 1, +}` (a `*`
/// class is the union of its `0` and `+` refinements, so only the
/// sharper forms are enumerated), the invalid class gets `*`, and
/// every feasible `F` category and memory freshness is attached.
fn enumerate_starts(spec: &ProtocolSpec) -> Vec<Composite> {
    let valid: Vec<_> = spec.valid_states().collect();
    let reps = [Rep::Zero, Rep::One, Rep::Plus];
    let mut out = Vec::new();
    let combos = reps.len().pow(valid.len() as u32);
    for combo in 0..combos {
        let mut classes = vec![(ClassKey::invalid(), Rep::Star)];
        let mut idx = combo;
        for &v in &valid {
            let r = reps[idx % reps.len()];
            idx /= reps.len();
            if r != Rep::Zero {
                classes.push((ClassKey::fresh(v), r));
            }
        }
        let fvals: Vec<FVal> = if spec.uses_sharing_detection() {
            FVal::CATEGORIES.to_vec()
        } else {
            vec![FVal::Null]
        };
        for f in fvals {
            for mdata in [MData::Fresh, MData::Obsolete] {
                let c = Composite::new(classes.clone(), mdata, f);
                // Keep only configurations whose family is nonempty.
                if internalize(spec, &c).is_empty() {
                    continue;
                }
                out.push(c);
            }
        }
    }
    out
}

/// Runs the recovery analysis for `spec`.
pub fn analyze_recovery(spec: &ProtocolSpec, max_visits: usize) -> RecoveryReport {
    let opts = Options::default()
        .max_visits(max_visits)
        .stop_at_first_error(true);
    // Reachable essential states, for the `reachable` flag.
    let baseline = crate::engine::expand(spec, &Options::default());
    let essential: Vec<Composite> = baseline.essential_states().into_iter().cloned().collect();

    let mut cases = Vec::new();
    for start in enumerate_starts(spec) {
        // Skip structurally impermissible starts: they are already
        // erroneous, not "configurations the system might be in".
        if !check(spec, &start).is_empty() {
            continue;
        }
        let reachable = essential.iter().any(|e| start.contained_in(e));
        let exp = expand_from(spec, start.clone(), &opts);
        let tolerance = if exp.truncated && exp.errors.is_empty() {
            Tolerance::Unknown
        } else if exp.errors.is_empty() {
            Tolerance::Safe
        } else {
            Tolerance::Unsafe
        };
        cases.push(RecoveryCase {
            start,
            tolerance,
            reachable,
        });
    }
    RecoveryReport {
        protocol: spec.name().to_string(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols;

    #[test]
    fn reachable_configurations_are_always_safe() {
        for spec in [protocols::illinois(), protocols::msi(), protocols::dragon()] {
            let report = analyze_recovery(&spec, 100_000);
            for c in &report.cases {
                if c.reachable {
                    assert_eq!(
                        c.tolerance,
                        Tolerance::Safe,
                        "{}: reachable state {} classified unsafe",
                        spec.name(),
                        c.start.render(&spec)
                    );
                }
            }
            assert_eq!(report.count(Tolerance::Unknown), 0, "{}", spec.name());
        }
    }

    #[test]
    fn stale_memory_with_only_clean_copies_is_an_invariant_gap() {
        // (Shared, Inv*) with obsolete memory is structurally
        // permissible (the copy itself is fresh) but unsafe: the clean
        // copy is replaced silently and the stale memory then serves a
        // fill.
        let spec = protocols::illinois();
        let report = analyze_recovery(&spec, 100_000);
        let sh = spec.state_by_name("Shared").unwrap();
        let gap: Vec<String> = report
            .invariant_gap()
            .map(|c| c.start.render(&spec))
            .collect();
        assert!(
            report.invariant_gap().any(|c| {
                c.start.mdata == MData::Obsolete && c.start.rep_of(ClassKey::fresh(sh)) != Rep::Zero
            }),
            "expected a stale-memory Shared configuration in the gap: {gap:?}"
        );
    }

    #[test]
    fn berkeley_tolerates_owner_with_stale_memory_everywhere() {
        // Berkeley's whole design: an owner with stale memory is a
        // normal configuration, so every owner-present permissible
        // start should be safe.
        let spec = protocols::berkeley();
        let report = analyze_recovery(&spec, 100_000);
        let sd = spec.state_by_name("Shared-Dirty").unwrap();
        for c in &report.cases {
            if c.start.rep_of(ClassKey::fresh(sd)) == Rep::One && c.start.mdata == MData::Obsolete {
                assert_eq!(
                    c.tolerance,
                    Tolerance::Safe,
                    "{} should recover",
                    c.start.render(&spec)
                );
            }
        }
    }

    #[test]
    fn enumeration_is_canonical_and_feasible() {
        let spec = protocols::illinois();
        let starts = enumerate_starts(&spec);
        assert!(!starts.is_empty());
        for s in &starts {
            assert!(!internalize(&spec, s).is_empty());
        }
        // No duplicates.
        for (i, a) in starts.iter().enumerate() {
            for b in &starts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
