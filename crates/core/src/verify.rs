//! Top-level verification entry points.
//!
//! Bundles the worklist expansion, the permissibility checks and the
//! global-graph construction into a single report: run
//! [`verify`] on a [`ProtocolSpec`] and inspect the [`Verdict`].

use crate::check::Violation;
use crate::composite::Composite;
use crate::engine::{expand_with, EngineScratch, Expansion, Options};
use crate::expand::StepError;
use crate::graph::{global_graph, GlobalGraph};
use ccv_model::ProtocolSpec;
use ccv_observe::Phase;
use core::fmt;
use std::time::Duration;

/// Outcome of a verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable composite state is permissible and every load
    /// returns the latest value: the protocol preserves data
    /// consistency for any number of caches.
    Verified,
    /// At least one erroneous state or stale access is reachable.
    Erroneous,
    /// The expansion hit its visit cap before reaching a fixpoint
    /// (never observed on the shipped protocols; a backstop for
    /// pathological inputs).
    Inconclusive,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => f.write_str("VERIFIED"),
            Verdict::Erroneous => f.write_str("ERRONEOUS"),
            Verdict::Inconclusive => f.write_str("INCONCLUSIVE"),
        }
    }
}

/// Detailed outcome of a verification run: the [`Verdict`] plus, for
/// runs that stopped early, *why* and how far the run got. An
/// inconclusive outcome is never conflated with "verified" — it
/// renders its reason and is mapped to a distinct CLI exit code.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The expansion reached its fixpoint with no violations.
    Verified,
    /// At least one erroneous state or stale access is reachable.
    Erroneous,
    /// The run stopped early (budget, deadline, memory cap,
    /// cancellation or a worker panic) before reaching a fixpoint.
    Inconclusive {
        /// Human-readable stop reason (cause plus any detail, e.g. a
        /// panic message).
        reason: String,
        /// States still awaiting expansion when the run stopped.
        frontier_size: usize,
        /// Visits performed before the stop.
        visits: usize,
        /// Wall-clock time from engine start to the stop.
        elapsed: Duration,
    },
}

impl Outcome {
    /// The coarse verdict this outcome maps to.
    pub fn verdict(&self) -> Verdict {
        match self {
            Outcome::Verified => Verdict::Verified,
            Outcome::Erroneous => Verdict::Erroneous,
            Outcome::Inconclusive { .. } => Verdict::Inconclusive,
        }
    }

    /// Builds the outcome for `expansion`: early-stopped runs are
    /// inconclusive (whatever partial findings they carry), otherwise
    /// the error list decides.
    pub fn of_expansion(expansion: &Expansion) -> Outcome {
        match &expansion.stopped {
            Some(info) => Outcome::Inconclusive {
                reason: info.describe(),
                frontier_size: info.frontier,
                visits: expansion.visits,
                elapsed: info.elapsed,
            },
            None if expansion.truncated => Outcome::Inconclusive {
                // Defensive: every truncated run should carry stop
                // info, but render honestly if one does not.
                reason: "stopped early".to_string(),
                frontier_size: 0,
                visits: expansion.visits,
                elapsed: Duration::ZERO,
            },
            None if expansion.errors.is_empty() => Outcome::Verified,
            None => Outcome::Erroneous,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Inconclusive {
                reason,
                frontier_size,
                visits,
                elapsed,
            } => write!(
                f,
                "INCONCLUSIVE: {reason} after {visits} visits ({frontier_size} states still pending, {:.3}s elapsed)",
                elapsed.as_secs_f64()
            ),
            other => other.verdict().fmt(f),
        }
    }
}

/// A rendered error finding: what went wrong and a concrete symbolic
/// path from the initial state.
#[derive(Clone, Debug)]
pub struct ErrorReport {
    /// Human-readable violation descriptions.
    pub descriptions: Vec<String>,
    /// The erroneous state, rendered.
    pub state: String,
    /// The counterexample path, rendered.
    pub path: String,
}

/// Summary of a Theorem 1 crosscheck against the explicit enumeration
/// at a fixed cache count `n`.
///
/// Plain data: the check itself runs in `ccv-enum` (which depends on
/// this crate), and its helper attaches the summary to a
/// [`VerificationReport`].
#[derive(Clone, Debug)]
pub struct CrosscheckSummary {
    /// Number of caches enumerated.
    pub n: usize,
    /// Distinct concrete states reached by explicit enumeration.
    pub total_concrete: usize,
    /// How many of those are covered by some essential state.
    pub covered: usize,
    /// True iff every concrete state is covered (Theorem 1 holds).
    pub complete: bool,
}

/// A complete verification report — the single result type shared by
/// `verify`, the crosscheck and the CLI's report rendering.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Name of the verified protocol.
    pub protocol: String,
    /// The raw expansion (arena, essential states, visit counts).
    pub expansion: Expansion,
    /// The global transition diagram over essential states.
    pub graph: GlobalGraph,
    /// The verdict.
    pub verdict: Verdict,
    /// The detailed outcome behind the verdict; for inconclusive runs
    /// this carries the stop reason, frontier size and elapsed time.
    pub outcome: Outcome,
    /// Rendered error findings (empty iff `verdict == Verified`).
    pub reports: Vec<ErrorReport>,
    /// Theorem 1 crosscheck result, when one was run and attached.
    pub crosscheck: Option<CrosscheckSummary>,
}

/// Former name of [`VerificationReport`], kept for compatibility.
pub type Verification = VerificationReport;

impl VerificationReport {
    /// Number of essential states.
    pub fn num_essential(&self) -> usize {
        self.expansion.essential.len()
    }

    /// Total state visits during expansion.
    pub fn visits(&self) -> usize {
        self.expansion.visits
    }

    /// One-line summary suitable for tables. Inconclusive runs render
    /// their stop reason so a partial result is never mistaken for a
    /// completed one.
    pub fn summary(&self) -> String {
        let base = format!(
            "{}: {} ({} essential states, {} visits)",
            self.protocol,
            self.verdict,
            self.num_essential(),
            self.visits()
        );
        match &self.outcome {
            Outcome::Inconclusive { reason, .. } => format!("{base} [{reason}]"),
            _ => base,
        }
    }
}

/// Verifies `spec` with default options.
pub fn verify(spec: &ProtocolSpec) -> VerificationReport {
    verify_with(spec, &Options::default())
}

/// Verifies `spec` with explicit engine options.
pub fn verify_with(spec: &ProtocolSpec, opts: &Options) -> VerificationReport {
    verify_with_scratch(spec, opts, &mut EngineScratch::new())
}

/// Verifies `spec` through caller-owned [`EngineScratch`] — the batch
/// entry point used by [`crate::session::Batch`].
pub fn verify_with_scratch(
    spec: &ProtocolSpec,
    opts: &Options,
    scratch: &mut EngineScratch,
) -> VerificationReport {
    let sink = &opts.common.sink;
    let expansion = expand_with(spec, Composite::initial(spec), opts, scratch);
    sink.phase_enter(Phase::Graph);
    let graph = global_graph(spec, &expansion);
    sink.phase_exit(Phase::Graph);
    sink.phase_enter(Phase::Check);
    let outcome = Outcome::of_expansion(&expansion);
    let verdict = outcome.verdict();
    let reports = expansion
        .errors
        .iter()
        .map(|f| {
            let mut descriptions: Vec<String> = f
                .violations
                .iter()
                .map(|v: &Violation| v.describe(spec))
                .collect();
            descriptions.extend(f.step_errors.iter().map(|e: &StepError| e.to_string()));
            ErrorReport {
                descriptions,
                state: expansion.composite(f.node).render(spec),
                path: expansion.render_path(spec, f.node),
            }
        })
        .collect();
    sink.phase_exit(Phase::Check);
    VerificationReport {
        protocol: spec.name().to_string(),
        expansion,
        graph,
        verdict,
        outcome,
        reports,
        crosscheck: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::{all_buggy, all_correct};

    #[test]
    fn every_correct_protocol_verifies() {
        for spec in all_correct() {
            let v = verify(&spec);
            assert_eq!(
                v.verdict,
                Verdict::Verified,
                "{} failed: {:?}",
                spec.name(),
                v.reports.first().map(|r| (&r.descriptions, &r.path))
            );
            assert!(v.num_essential() >= 2, "{}", spec.name());
        }
    }

    #[test]
    fn every_buggy_mutant_is_rejected() {
        for (spec, why) in all_buggy() {
            let v = verify(&spec);
            assert_eq!(
                v.verdict,
                Verdict::Erroneous,
                "{} should be rejected ({why})",
                spec.name()
            );
            assert!(!v.reports.is_empty());
            let r = &v.reports[0];
            assert!(!r.descriptions.is_empty(), "{}", spec.name());
            assert!(r.path.contains("-->"), "{}: {}", spec.name(), r.path);
        }
    }

    #[test]
    fn summary_mentions_protocol_and_verdict() {
        let spec = ccv_model::protocols::illinois();
        let v = verify(&spec);
        let s = v.summary();
        assert!(s.contains("Illinois"));
        assert!(s.contains("VERIFIED"));
        assert!(s.contains("5 essential states"));
        assert_eq!(v.outcome, Outcome::Verified);
    }

    #[test]
    fn budget_stopped_run_reports_inconclusive_outcome() {
        let spec = ccv_model::protocols::illinois();
        let v = verify_with(&spec, &Options::default().max_visits(3));
        assert_eq!(v.verdict, Verdict::Inconclusive);
        match &v.outcome {
            Outcome::Inconclusive { reason, visits, .. } => {
                assert!(reason.contains("budget"), "reason: {reason}");
                assert_eq!(*visits, v.visits());
            }
            other => panic!("expected inconclusive outcome, got {other:?}"),
        }
        let s = v.summary();
        assert!(s.contains("INCONCLUSIVE"));
        assert!(s.contains("budget"), "summary renders the reason: {s}");
        assert_eq!(v.outcome.verdict(), Verdict::Inconclusive);
    }
}
