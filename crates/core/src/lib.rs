//! # ccv-core — symbolic verification of cache coherence protocols
//!
//! An implementation of the verification methodology of
//!
//! > F. Pong and M. Dubois, *"The Verification of Cache Coherence
//! > Protocols"*, Proc. 5th ACM SPAA, 1993.
//!
//! The global state of a system with an **arbitrary number of caches**
//! is represented symbolically: caches in the same state form a class
//! adorned with a repetition operator (`1`, `+`, `*`), and the set of
//! classes — a [`Composite`] state — is expanded by a worklist
//! algorithm with **containment pruning** until the *essential states*
//! remain. Verification then amounts to checking that no reachable
//! composite state is erroneous, either structurally (contradictory
//! state interpretations, §2.1 of the paper) or in its data aspects
//! (a load that can return a stale value, Definitions 3–4).
//!
//! ## Quick start
//!
//! ```
//! use ccv_core::{verify, Verdict};
//! use ccv_model::protocols;
//!
//! // The paper's §4.0 result: the Illinois protocol is correct for any
//! // number of caches, with exactly five essential states.
//! let report = verify(&protocols::illinois());
//! assert_eq!(report.verdict, Verdict::Verified);
//! assert_eq!(report.num_essential(), 5);
//!
//! // ...and a protocol with a seeded bug is rejected with a
//! // counterexample path.
//! let buggy = verify(&protocols::illinois_missing_invalidation());
//! assert_eq!(buggy.verdict, Verdict::Erroneous);
//! assert!(buggy.reports[0].path.contains("-->"));
//! ```
//!
//! ## Module map
//!
//! | module | paper concept |
//! |--------|---------------|
//! | [`rep`] | repetition operators & their interval semantics (Def. 6, §3.2.2) |
//! | [`fval`] | characteristic-function values `v1/v2/v3` (App. A.1) |
//! | [`composite`] | composite states, covering, containment (Defs. 7–9) |
//! | [`small`] | inline small vectors backing class lists |
//! | [`intern`] | hash-consed composite arena with copyable ids |
//! | [`istate`] | internalisation/emission between operators and exact intervals |
//! | [`expand`] | one-step expansion rules (§3.2.3) with data tracking (§2.4) |
//! | [`check`] | erroneous-state predicates (§2.1, Def. 3) |
//! | [`index`] | signature-bucketed containment index over live nodes |
//! | [`engine`] | essential-states worklist (Fig. 3, Def. 10) |
//! | [`reference`](mod@reference) | retained naive engine — differential-test oracle |
//! | [`graph`] | global transition diagram (Fig. 4) + DOT export |
//! | [`verify`](mod@verify) | bundled verification reports |
//! | [`session`] | builder façade + batch verification sessions |
//!
//! ## Observability
//!
//! Every engine entry point accepts an [`ccv_observe::EventSink`]
//! through its options (see [`CommonOptions`]); attach a
//! [`ccv_observe::Metrics`] collector to get visit/prune counters,
//! per-phase wall time and an exportable JSON snapshot:
//!
//! ```
//! use std::sync::Arc;
//! use ccv_core::Session;
//! use ccv_model::protocols;
//! use ccv_observe::{Counter, Metrics};
//!
//! let metrics = Arc::new(Metrics::new());
//! let report = Session::new(protocols::illinois())
//!     .sink(metrics.clone())
//!     .verify();
//! assert_eq!(metrics.snapshot().counter(Counter::Visits), 22);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod check;
pub mod compare;
pub mod composite;
pub mod engine;
pub mod expand;
pub mod fval;
pub mod graph;
pub mod index;
pub mod intern;
pub mod istate;
pub mod recovery;
pub mod reference;
pub mod rep;
pub mod session;
pub mod small;
pub mod verify;

pub use api::{
    essential_states_json, install_enum_backend, Action, ApiError, CheckpointOutcome,
    CrosscheckResponse, EnumBackend, EnumErrorInfo, EnumerateResponse, ErrorCode, Payload,
    ProgressEvent, ProtocolSource, Request, RequestOptions, Response, ResumeInfo, RunContext,
    SessionRunner, VerifyResponse, REQUEST_SCHEMA, RESPONSE_SCHEMA,
};
pub use check::{check as check_state, Violation};
pub use compare::{compare_protocols, DiffReport, Role};
pub use composite::{ClassKey, ClassSig, Composite, MAX_INLINE_CLASSES};
pub use engine::{
    expand as run_expansion, expand_from, expand_with, EngineScratch, Expansion, NodeId, Options,
    Pruning,
};
pub use expand::{
    successors, successors_into, ExpandScratch, Label, StepError, StepErrors, Transition,
};
pub use fval::FVal;
pub use graph::{global_graph, GlobalGraph, GraphEdge};
pub use index::ContainmentIndex;
pub use intern::{CompositeArena, CompositeId};
pub use recovery::{analyze_recovery, RecoveryCase, RecoveryReport, Tolerance};
pub use reference::{reference_expand, reference_expand_from};
pub use rep::{Interval, Rep};
pub use session::{Batch, RunSummary, Session, Verifier};
pub use verify::{
    verify, verify_with, verify_with_scratch, CrosscheckSummary, ErrorReport, Outcome, Verdict,
    Verification, VerificationReport,
};

// Re-exported so downstream users configure observability without a
// direct ccv-observe dependency.
pub use ccv_observe::{
    CancelToken, CommonOptions, EventSink, Metrics, SinkHandle, StopCause, StopInfo,
};
