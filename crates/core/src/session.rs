//! The library façade: one builder for a whole verification run.
//!
//! A [`Session`] owns a protocol spec and the engine options, and
//! produces a [`VerificationReport`] — the
//! same result type the CLI renders and the crosscheck annotates.
//!
//! ```
//! use ccv_core::Session;
//! use ccv_model::protocols::illinois;
//!
//! let report = Session::new(illinois()).verify();
//! assert_eq!(report.num_essential(), 5);
//! ```

use std::sync::Arc;

use crate::engine::Options;
use crate::verify::{verify_with, VerificationReport};
use ccv_model::ProtocolSpec;
use ccv_observe::{EventSink, SinkHandle};

/// A configured verification run over one protocol.
#[derive(Clone, Debug)]
pub struct Session {
    spec: ProtocolSpec,
    opts: Options,
}

impl Session {
    /// A session over `spec` with default options.
    pub fn new(spec: ProtocolSpec) -> Session {
        Session {
            spec,
            opts: Options::default(),
        }
    }

    /// Replaces the engine options wholesale.
    pub fn options(mut self, opts: Options) -> Session {
        self.opts = opts;
        self
    }

    /// Attaches an observability sink (e.g. a
    /// [`Metrics`](ccv_observe::Metrics) collector) to the run.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Session {
        self.opts.common.sink = SinkHandle::new(sink);
        self
    }

    /// The protocol under verification.
    pub fn spec(&self) -> &ProtocolSpec {
        &self.spec
    }

    /// The effective engine options.
    pub fn effective_options(&self) -> &Options {
        &self.opts
    }

    /// Runs the symbolic verification and returns the report.
    pub fn verify(&self) -> VerificationReport {
        verify_with(&self.spec, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verdict;
    use ccv_model::protocols::{illinois, illinois_missing_invalidation};
    use ccv_observe::{Counter, Gauge, Metrics, Phase};

    #[test]
    fn session_defaults_match_verify() {
        let report = Session::new(illinois()).verify();
        assert_eq!(report.verdict, Verdict::Verified);
        assert_eq!(report.num_essential(), 5);
        assert_eq!(report.visits(), 22);
        assert!(report.crosscheck.is_none());
    }

    #[test]
    fn session_threads_sink_through_the_run() {
        let metrics = Arc::new(Metrics::new());
        let report = Session::new(illinois()).sink(metrics.clone()).verify();
        assert_eq!(report.verdict, Verdict::Verified);

        let snap = metrics.snapshot();
        assert_eq!(snap.counter(Counter::Visits), 22);
        assert_eq!(snap.gauge(Gauge::EssentialStates), Some(5));
        assert!(snap.counter(Counter::Expansions) > 0);
        assert!(snap.counter(Counter::ContainmentChecks) > 0);
        // Every verification phase was timed (>= 0 is trivially true,
        // so assert the enter/exit pairs actually closed: the phase
        // list in the export is driven by non-zero wall time, which a
        // sub-microsecond phase may round to — check Expand at least).
        assert!(snap.phase_nanos(Phase::Expand) > 0);
    }

    #[test]
    fn session_reports_errors_with_options() {
        let report = Session::new(illinois_missing_invalidation())
            .options(Options::default().stop_at_first_error(true))
            .verify();
        assert_eq!(report.verdict, Verdict::Erroneous);
        assert_eq!(report.reports.len(), 1);
    }
}
